#!/usr/bin/env python
"""False sharing under both protocols.

Several cores repeatedly *read a neighbour's word and write their own word
of the same cache line* (think adjacent per-thread counters that threads
occasionally inspect). Under Baseline MESI the line ping-pongs — every
store steals it, so the next neighbour read is a coherence miss across the
mesh. Under WiDir the line turns wireless: stores are word-granular
broadcast updates and the neighbour reads stay local — the fine-grained
WirUpd is a natural cure for false sharing, a side benefit of the paper's
word-level update design.

Usage::

    python examples/false_sharing.py [writers] [iterations_per_writer]
"""

import sys

from repro import Manycore, baseline_config, widir_config

LINE_ADDRESS = 0x0500_0000


def run_false_sharing(config, writers: int, stores: int):
    machine = Manycore(config)
    # Warm the line into wide read-sharing so WiDir can take it wireless.
    for core in range(min(machine.config.num_cores, writers + 4)):
        machine.caches[core].load(LINE_ADDRESS, lambda v: None)
        machine.run(max_events=5_000_000)

    remaining = {core: stores for core in range(writers)}

    THINK = 25  # cycles of real work between iterations

    def iterate(core: int) -> None:
        if remaining[core] == 0:
            return
        remaining[core] -= 1
        own_word = LINE_ADDRESS + 8 * core
        neighbour_word = LINE_ADDRESS + 8 * ((core + 1) % writers)
        # Read the neighbour's counter, then bump our own (same line!),
        # then compute for a while before the next round.
        machine.caches[core].load(
            neighbour_word,
            lambda _v, c=core: machine.caches[c].store(
                own_word,
                remaining[c],
                lambda c2=c: machine.sim.schedule(THINK, lambda: iterate(c2)),
            ),
        )

    for core in range(writers):
        iterate(core)
    machine.run(max_events=500_000_000)
    assert all(v == 0 for v in remaining.values())
    machine.check_coherence()
    return machine


def main() -> None:
    writers = int(sys.argv[1]) if len(sys.argv) > 1 else 6
    stores = int(sys.argv[2]) if len(sys.argv) > 2 else 50
    print(f"{writers} writers x {stores} stores to distinct words, one line\n")

    cycles = {}
    for name, config in (
        ("baseline", baseline_config(num_cores=16)),
        ("widir", widir_config(num_cores=16)),
    ):
        machine = run_false_sharing(config, writers, stores)
        cycles[name] = machine.sim.now
        misses = machine.stats.get_counter("l1.total.write_misses")
        print(f"--- {name} ---")
        print(f"  total cycles : {machine.sim.now:>9,}")
        print(f"  write misses : {misses:>9,}   "
              f"({'line ping-pong' if name == 'baseline' else 'word updates'})")
        if name == "widir":
            print(f"  wireless writes: "
                  f"{machine.stats.get_counter('l1.total.wireless_writes'):>7,}")
        print()

    print(f"WiDir speedup on false sharing: "
          f"{cycles['baseline'] / cycles['widir']:.2f}x")


if __name__ == "__main__":
    main()
