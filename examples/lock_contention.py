#!/usr/bin/env python
"""Lock contention under both protocols — the paper's motivating pattern.

A group of cores spin-reads a lock word (test-and-test-and-set) and
acquires it with an atomic fetch-and-increment. Under the Baseline MESI
protocol every acquisition invalidates all spinners, who then re-miss over
the wired mesh; under WiDir the lock line turns Wireless after three
sharers, acquisitions become single broadcast frames, and spinning is
local. The example builds the scenario directly on the public Manycore
API (no workload generator) so the protocol mechanics are easy to see.

Usage::

    python examples/lock_contention.py [cores] [acquisitions_per_core]
"""

import sys

from repro import Manycore, baseline_config, widir_config

LOCK_ADDRESS = 0x7000_0000


#: Cycles of critical-section work and of think time between acquisitions.
CRITICAL_WORK = 40
THINK_TIME = 160


def run_lock_benchmark(config, cores: int, acquisitions: int):
    machine = Manycore(config)
    remaining = {core: acquisitions for core in range(cores)}

    def next_round(core: int) -> None:
        # Think, then come back for the lock (real lock users do work
        # between acquisitions; back-to-back atomics are a pathology).
        machine.sim.schedule(THINK_TIME, lambda: spin_then_acquire(core))

    def critical_section(core: int) -> None:
        machine.sim.schedule(CRITICAL_WORK, lambda: next_round(core))

    def spin_then_acquire(core: int) -> None:
        if remaining[core] == 0:
            return
        remaining[core] -= 1
        # Test-and-test-and-set: two spin reads, then the atomic.
        machine.caches[core].load(
            LOCK_ADDRESS,
            lambda _v, c=core: machine.caches[c].load(
                LOCK_ADDRESS,
                lambda _v2, c2=c: machine.caches[c2].rmw(
                    LOCK_ADDRESS, lambda _old, c3=c2: critical_section(c3)
                ),
            ),
        )

    for core in range(cores):
        spin_then_acquire(core)
    machine.run(max_events=500_000_000)
    assert all(v == 0 for v in remaining.values()), "lock storm did not drain"

    # Verify atomicity: the counter must equal total acquisitions.
    result = []
    machine.caches[0].load(LOCK_ADDRESS, result.append)
    machine.run(max_events=1_000_000)
    assert result[0] == cores * acquisitions, "atomicity violated!"
    machine.check_coherence()
    return machine


def main() -> None:
    cores = int(sys.argv[1]) if len(sys.argv) > 1 else 16
    acquisitions = int(sys.argv[2]) if len(sys.argv) > 2 else 40

    print(f"{cores} cores x {acquisitions} lock acquisitions each\n")
    results = {}
    for name, config in (
        ("baseline", baseline_config(num_cores=cores)),
        ("widir", widir_config(num_cores=cores)),
    ):
        machine = run_lock_benchmark(config, cores, acquisitions)
        results[name] = machine
        stats = machine.stats
        print(f"--- {name} ---")
        print(f"  total cycles        : {machine.sim.now:>10,}")
        print(f"  cycles/acquisition  : "
              f"{machine.sim.now / (cores * acquisitions):>10.1f}")
        print(f"  invalidations sent  : "
              f"{stats.get_counter('dir.total.invalidations_sent'):>10,}")
        if name == "widir":
            print(f"  wireless writes     : "
                  f"{stats.get_counter('l1.total.wireless_writes'):>10,}")
            print(f"  S->W transitions    : "
                  f"{stats.get_counter('dir.total.s_to_w'):>10,}")
            print(f"  collision prob.     : "
                  f"{machine.wireless.collision_probability:>10.2%}")
        print()

    speedup = results["baseline"].sim.now / results["widir"].sim.now
    print(f"WiDir speedup on contended locking: {speedup:.2f}x")


if __name__ == "__main__":
    main()
