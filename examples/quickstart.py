#!/usr/bin/env python
"""Quickstart: run one application on Baseline and WiDir and compare.

This is the smallest end-to-end use of the library: pick a paper
application, run it on both machines (identical reference streams), and
print the headline metrics the paper reports.

Usage::

    python examples/quickstart.py [app] [cores] [memops]

Defaults: radiosity, 16 cores, 800 memory references per core (a few
seconds). Any application from ``repro.ALL_APPS`` works.
"""

import sys

from repro import ALL_APPS, api


def main() -> None:
    app = sys.argv[1] if len(sys.argv) > 1 else "radiosity"
    cores = int(sys.argv[2]) if len(sys.argv) > 2 else 16
    memops = int(sys.argv[3]) if len(sys.argv) > 3 else 800
    if app not in ALL_APPS:
        raise SystemExit(f"unknown app {app!r}; choose from: {', '.join(ALL_APPS)}")

    print(f"Running {app} on {cores} cores ({memops} refs/core) ...")
    diff = api.compare(app, cores=cores, memops=memops)
    baseline, widir = diff.baseline, diff.widir

    speedup = diff.speedup
    print(f"\n=== {app} @ {cores} cores ===")
    print(f"  Baseline execution time : {baseline.cycles:>10,} cycles")
    print(f"  WiDir execution time    : {widir.cycles:>10,} cycles")
    print(f"  WiDir speedup           : {speedup:>10.3f}x")
    print(f"  Baseline L1 MPKI        : {baseline.mpki:>10.2f}")
    print(f"  WiDir L1 MPKI           : {widir.mpki:>10.2f}")
    print(f"  Baseline memory stall   : {baseline.memory_stall_fraction:>10.1%}")
    print(f"  Wireless writes         : {widir.wireless_writes:>10,}")
    print(f"  Collision probability   : {widir.collision_probability:>10.2%}")
    print(f"  S->W transitions        : "
          f"{widir.stats_counters.get('dir.total.s_to_w', 0):>10,}")
    print(f"  Sharers-per-update bins : {widir.sharer_histogram}")
    print(f"  WiDir energy vs Baseline: "
          f"{widir.energy.total / max(1.0, baseline.energy.total):>10.3f}x")


if __name__ == "__main__":
    main()
