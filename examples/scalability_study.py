#!/usr/bin/env python
"""Scalability study: WiDir vs Baseline from 4 to 64 cores (Figure 10).

Runs one sharing-heavy application at increasing core counts and prints
the speedup of each protocol over the 4-core Baseline — the paper's
Figure 10 series. The expected shape: the two protocols track each other
up to ~16 cores, then diverge as wired-mesh traversal costs grow and more
lines qualify for wireless mode.

Usage::

    python examples/scalability_study.py [app] [memops_per_core]
"""

import sys
import time

from repro import baseline_config, run_app, widir_config


def main() -> None:
    app = sys.argv[1] if len(sys.argv) > 1 else "radiosity"
    memops = int(sys.argv[2]) if len(sys.argv) > 2 else 800
    core_counts = (4, 8, 16, 32, 64)

    print(f"Scalability of {app} ({memops} refs/core)\n")
    print(f"{'cores':>6} {'Baseline cyc':>14} {'WiDir cyc':>12} "
          f"{'Base speedup':>13} {'WiDir speedup':>14}")

    reference = None
    for cores in core_counts:
        t0 = time.time()
        base = run_app(app, baseline_config(num_cores=cores), memops)
        widir = run_app(app, widir_config(num_cores=cores), memops)
        if reference is None:
            reference = base.cycles
        print(
            f"{cores:>6} {base.cycles:>14,} {widir.cycles:>12,} "
            f"{reference / base.cycles:>13.2f} {reference / widir.cycles:>14.2f}"
            f"   [{time.time() - t0:.0f}s]"
        )

    print("\nSpeedups are relative to the 4-core Baseline (paper Figure 10).")


if __name__ == "__main__":
    main()
