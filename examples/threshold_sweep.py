#!/usr/bin/env python
"""MaxWiredSharers sensitivity on one application (Table VI in miniature).

Sweeps the threshold at which a line transitions to the Wireless state and
prints execution time, collision probability, and transition counts — the
paper's Table VI trade-off: lower thresholds put more lines in wireless
mode (more collisions), higher thresholds miss wireless opportunities.

Usage::

    python examples/threshold_sweep.py [app] [cores] [memops]
"""

import sys
import time

from repro import ALL_APPS, baseline_config, run_app, widir_config
from repro.harness.sweeps import sweep_thresholds


def main() -> None:
    app = sys.argv[1] if len(sys.argv) > 1 else "radiosity"
    cores = int(sys.argv[2]) if len(sys.argv) > 2 else 16
    memops = int(sys.argv[3]) if len(sys.argv) > 3 else 800
    if app not in ALL_APPS:
        raise SystemExit(f"unknown app {app!r}")

    print(f"MaxWiredSharers sweep: {app} @ {cores} cores\n")
    baseline = run_app(app, baseline_config(num_cores=cores), memops)
    print(f"Baseline: {baseline.cycles:,} cycles\n")
    print(f"{'threshold':>9} {'cycles':>10} {'speedup':>8} "
          f"{'collisions':>11} {'S->W':>6} {'W->S':>6}")

    t0 = time.time()
    results = sweep_thresholds(app, (2, 3, 4, 5), num_cores=cores, memops=memops)
    for label in sorted(results):
        result = results[label]
        threshold = result.config.directory.max_wired_sharers
        print(
            f"{threshold:>9} {result.cycles:>10,} "
            f"{baseline.cycles / result.cycles:>8.3f} "
            f"{result.collision_probability:>10.2%} "
            f"{result.stats_counters.get('dir.total.s_to_w', 0):>6} "
            f"{result.stats_counters.get('dir.total.w_to_s', 0):>6}"
        )
    print(f"\n(paper Table VI: threshold 3 is the sweet spot; "
          f"collisions fall as the threshold rises)  [{time.time()-t0:.0f}s]")


if __name__ == "__main__":
    main()
