#!/usr/bin/env python
"""Producer/consumer sharing: one writer, many readers.

One core periodically publishes values into a set of shared words while a
group of consumer cores repeatedly reads them — the "frequent read-write
sharing within a group of cores" pattern the paper's introduction motivates.
Under Baseline MESI every publication invalidates every consumer, so each
consumer's next read is a coherence miss that crosses the mesh. Under WiDir
the lines turn Wireless, publications become single broadcast frames, and
consumer reads stay local.

The example prints the average consumer read latency under both protocols,
which is exactly where WiDir's benefit shows up.

Usage::

    python examples/producer_consumer.py [consumers] [rounds]
"""

import sys

from repro import Manycore, baseline_config, widir_config

SHARED_BASE = 0x4000_0000
NUM_WORDS = 4


def run_producer_consumer(config, consumers: int, rounds: int):
    machine = Manycore(config)
    producer = 0
    consumer_cores = list(range(1, consumers + 1))
    state = {
        "round": 0,
        "pending_reads": 0,
        "read_cycles": 0,
        "reads": 0,
    }

    def publish_round() -> None:
        if state["round"] >= rounds:
            return
        state["round"] += 1
        value = state["round"] * 1000

        def after_publish() -> None:
            state["pending_reads"] = len(consumer_cores) * NUM_WORDS
            for core in consumer_cores:
                for word in range(NUM_WORDS):
                    issue_read(core, word, value + word)

        machine.caches[producer].store(
            SHARED_BASE + 0, value + 0, lambda: publish_rest(1, after_publish, value)
        )

    def publish_rest(word: int, then, value: int) -> None:
        if word >= NUM_WORDS:
            then()
            return
        machine.caches[producer].store(
            SHARED_BASE + 8 * word,
            value + word,
            lambda: publish_rest(word + 1, then, value),
        )

    def issue_read(core: int, word: int, expected: int) -> None:
        started = machine.sim.now

        def on_value(value: int) -> None:
            # Consumers may read a publication mid-round; staleness within
            # a round is fine, torn words are not (value mod 1000 == word).
            assert value % 1000 == word or value == 0, "torn publication!"
            state["read_cycles"] += machine.sim.now - started
            state["reads"] += 1
            state["pending_reads"] -= 1
            if state["pending_reads"] == 0:
                publish_round()

        machine.caches[core].load(SHARED_BASE + 8 * word, on_value)

    publish_round()
    machine.run(max_events=500_000_000)
    machine.check_coherence()
    return machine, state


def main() -> None:
    consumers = int(sys.argv[1]) if len(sys.argv) > 1 else 12
    rounds = int(sys.argv[2]) if len(sys.argv) > 2 else 50
    cores = consumers + 1

    print(f"1 producer, {consumers} consumers, {rounds} publication rounds\n")
    outcomes = {}
    for name, config in (
        ("baseline", baseline_config(num_cores=max(4, cores))),
        ("widir", widir_config(num_cores=max(4, cores))),
    ):
        machine, state = run_producer_consumer(config, consumers, rounds)
        avg_read = state["read_cycles"] / max(1, state["reads"])
        outcomes[name] = (machine.sim.now, avg_read)
        print(f"--- {name} ---")
        print(f"  total cycles        : {machine.sim.now:>10,}")
        print(f"  avg consumer read   : {avg_read:>10.1f} cycles")
        print(f"  L1 misses           : "
              f"{machine.stats.get_counter('l1.total.read_misses'):>10,}")
        if name == "widir":
            print(f"  wireless writes     : "
                  f"{machine.stats.get_counter('l1.total.wireless_writes'):>10,}")
        print()

    base_cycles, base_read = outcomes["baseline"]
    widir_cycles, widir_read = outcomes["widir"]
    print(f"WiDir total speedup       : {base_cycles / widir_cycles:.2f}x")
    print(f"Consumer read latency gain: {base_read / max(1.0, widir_read):.2f}x")


if __name__ == "__main__":
    main()
