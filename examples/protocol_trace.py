#!/usr/bin/env python
"""Watch the WiDir protocol transition a line through S -> W -> S.

Drives a single line through the full lifecycle on a small machine and
narrates every step with the directory's view: the limited sharer pointers,
the S->W transition (BrWirUpgr + ToneAck + jamming), wireless updates, a
wireless join, UpdateCount self-invalidations, and the W->S downgrade
(WirDwgr + acks). Useful both as documentation and as a protocol sanity
walkthrough.

Usage::

    python examples/protocol_trace.py
"""

from repro import Manycore, widir_config

ADDRESS = 0x0005_0000


def describe(machine, label: str) -> None:
    line = machine.amap.line_of(ADDRESS)
    home = machine.amap.home_of(line)
    entry = machine.directories[home].array.lookup(line, touch=False)
    holders = {
        core: cached.state
        for core in range(machine.config.num_cores)
        if (cached := machine.caches[core].array.lookup(line, touch=False))
    }
    if entry is None:
        print(f"[{machine.sim.now:>6}] {label:<42} dir=<absent> caches={holders}")
        return
    dir_view = (
        f"W count={entry.sharer_count}"
        if entry.state == "W"
        else f"{entry.state} sharers={sorted(entry.sharers)}"
    )
    print(f"[{machine.sim.now:>6}] {label:<42} dir[{home}]={dir_view} caches={holders}")


def load(machine, core):
    out = []
    machine.caches[core].load(ADDRESS, out.append)
    machine.run(max_events=5_000_000)
    return out[0]


def store(machine, core, value):
    machine.caches[core].store(ADDRESS, value, lambda: None)
    machine.run(max_events=5_000_000)


def main() -> None:
    machine = Manycore(widir_config(num_cores=8))
    print("WiDir line lifecycle (MaxWiredSharers = 3)\n")

    load(machine, 0)
    describe(machine, "core 0 reads: cold miss, Exclusive")
    load(machine, 1)
    describe(machine, "core 1 reads: owner downgrades, Shared")
    load(machine, 2)
    describe(machine, "core 2 reads: third sharer (pointers full)")
    load(machine, 3)
    describe(machine, "core 3 reads: 4 > 3 -> S->W transition!")

    store(machine, 1, 111)
    describe(machine, "core 1 writes 111: wireless WirUpd broadcast")
    assert load(machine, 3) == 111
    describe(machine, "core 3 reads 111 locally (no miss)")

    load(machine, 5)
    describe(machine, "core 5 joins wirelessly (WirUpgr, count+1)")

    # Cores 0 and 2 stop touching the line; updates age them out once the
    # UpdateCount threshold worth of updates pass them by.
    threshold = machine.config.directory.update_count_threshold
    for i in range(threshold + 2):
        store(machine, 1, 200 + i)
        load(machine, 3)
        load(machine, 5)
    describe(machine, "cores 0,2 self-invalidated (UpdateCount)")

    # Count fell to MaxWiredSharers: the directory downgraded W->S.
    describe(machine, "line returned to wired Shared state")
    store(machine, 3, 999)
    describe(machine, "core 3 writes 999: back to invalidation")
    assert load(machine, 5) == 999
    machine.check_coherence()
    print("\nFinal value propagated correctly; coherence checked. Done.")


if __name__ == "__main__":
    main()
