"""Cold-cache executor benchmark.

The session-wide ``executor`` section of BENCH_harness.json runs against
the developer's persistent ``~/.cache/repro`` — after the first ever
session it reports ``cache_hit_rate: 1.0, executed: 0``, which measures
the memo-cache lookup path and nothing else. This bench closes that
telemetry blind spot with a private, guaranteed-cold cache directory:

* **cold round** — every run executes; records real simulation dispatch
  cost (``executed == requested`` after dedup);
* **warm round** — the same plan replayed against the now-populated
  cache; records pure lookup cost and asserts a 100% hit rate.

Results land under ``"executor_cold"`` in BENCH_harness.json. The shape
assertions are intentionally loose (cold must execute, warm must not, and
warm must be faster) — absolute seconds are machine-local color.
"""

import time

from bench_config import BENCH_CORES

from repro.config.presets import baseline_config, widir_config
from repro.harness.executor import Executor, ExperimentPlan

_COLD_APPS = ("radiosity", "water-spa", "blackscholes")
_COLD_MEMOPS = 600


def _plan(cores):
    plan = ExperimentPlan()
    for app in _COLD_APPS:
        for make in (baseline_config, widir_config):
            plan.add(app, make(num_cores=cores), _COLD_MEMOPS)
    return plan


def test_bench_executor_cold_cache_round(tmp_path, executor_cold_metrics):
    cores = min(BENCH_CORES, 16)  # keep the cold round under ~10s
    executor = Executor(
        workers=1, cache_dir=tmp_path / "cache", use_cache=True
    )

    started = time.perf_counter()
    cold_results = executor.map_runs(_plan(cores))
    cold_seconds = time.perf_counter() - started
    cold = executor.stats.as_dict()
    assert cold["executed"] > 0, "cold round executed nothing (stale cache?)"
    assert cold["cache_hits"] == 0

    started = time.perf_counter()
    warm_results = executor.map_runs(_plan(cores))
    warm_seconds = time.perf_counter() - started
    warm = executor.stats.as_dict()
    assert warm["executed"] == cold["executed"], "warm round re-executed"
    assert warm["cache_hits"] > 0
    assert [r.to_dict() for r in warm_results] == [
        r.to_dict() for r in cold_results
    ]
    assert warm_seconds < cold_seconds

    print(
        f"\ncold cache: {cold['executed']} runs executed in "
        f"{cold_seconds:.2f}s; warm replay {warm_seconds:.3f}s "
        f"({cold_seconds / max(warm_seconds, 1e-9):.0f}x)"
    )
    executor_cold_metrics.update(
        {
            "apps": len(_COLD_APPS),
            "cores": cores,
            "memops": _COLD_MEMOPS,
            "runs": len(_COLD_APPS) * 2,
            "executed": cold["executed"],
            "cold_wall_seconds": round(cold_seconds, 3),
            "warm_wall_seconds": round(warm_seconds, 3),
            "warm_speedup": round(cold_seconds / max(warm_seconds, 1e-9), 1),
        }
    )
