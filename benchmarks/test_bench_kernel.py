"""Simulation-kernel microbenchmarks: seed inner loop vs. the fast path.

The other benchmarks in this directory regenerate paper figures; this module
measures the *simulator inner loop* itself. It replays an identical
fig10-style stream of protocol messages (64-core mesh, Table V-shaped kind
mix) through two in-file kernels that reproduce, hop for hop, the per-message
``send -> schedule -> deliver -> dispatch -> install`` chain:

* ``_seed_kernel`` uses the seed implementation's idioms, faithful to the
  pre-optimization sources: ``topology.hops``/``topology.route`` recomputed
  per message, histogram ``record`` re-scanning the hop bins, bound-method
  ``Counter.add`` calls, ``Event.__init__`` reached through a
  ``schedule_at -> EventQueue.schedule`` call chain, a fresh message object
  per send, ``if/elif`` string-compare dispatch on ``msg.kind``,
  ``OrderedDict.move_to_end`` LRU touches, and a defensive ``dict(words)``
  copy of the 16-word line at every data hop (payload build *and* install —
  the seed's double copy).

* ``_fast_kernel`` uses the current fast-path primitives from the real
  modules: the ``(hops, route, bin)`` route cache, direct
  ``Counter.value +=`` bumps, inline ``Event.__new__`` + heappush,
  ``Message.acquire``/``release`` freelist recycling, dispatch tables
  indexed by the interned ``kind_id``, plain-dict del+reinsert LRU touches,
  and O(1) ``LineData.snapshot()`` views instead of copies.

Both kernels consume the same pre-generated stream and must produce the same
checksum (hops, arrival cycles, dispatch values, installed words), so the
comparison cannot silently diverge. The measured ratio is asserted to be at
least the PR's 1.5x acceptance bar and recorded in ``BENCH_harness.json``
under ``kernel``, alongside the wall seconds of a real end-to-end 64-core
fig10-style Baseline-vs-WiDir pair.

Timing methodology: the two kernels run in strictly alternating rounds and
each side keeps its best round, so background machine noise hits both sides
equally instead of biasing whichever ran last.
"""

import gc
import heapq
import random
import time
from collections import OrderedDict

from bench_config import BENCH_CORES, KERNEL_PAIR_MEMOPS

from repro.coherence import messages as mk
from repro.engine.events import Event
from repro.mem.line_data import LineData
from repro.noc.mesh import HOP_BINS
from repro.noc.message import DATA_BEARING_KINDS, Message
from repro.noc.topology import MeshTopology
from repro.stats.collectors import StatsRegistry

# ------------------------------------------------------------ op stream

#: Fig10-style kind mix for a 64-core sharing-heavy run: read misses and
#: their data replies dominate, with a healthy tail of upgrades,
#: invalidations, forwards, and writebacks (Table V's coherence legs).
_KIND_MIX = (
    (mk.GETS, 24),
    (mk.DATA, 18),
    (mk.DATA_E, 6),
    (mk.GETX, 8),
    (mk.GRANT_X, 4),
    (mk.INV, 7),
    (mk.INV_ACK, 7),
    (mk.FWD_GETS, 4),
    (mk.FWD_DATA, 4),
    (mk.WB_DATA, 4),
    (mk.PUTS, 3),
    (mk.PUTM, 3),
    (mk.PUT_ACK, 3),
    (mk.WIR_UPGR, 2),
    (mk.WIR_UPGR_ACK, 2),
    (mk.NACK, 1),
)

_NUM_CORES = 64
_MESH_WIDTH = 8
_WORDS_PER_LINE = 16
_CYCLES_PER_HOP = 2
_ROUTER_OVERHEAD = 3
_SERIALIZATION = 8  # 64B line over a 64-bit link
_LRU_WAYS = 8

_NUM_OPS = 20_000
_ROUNDS = 5


def _make_stream(num_ops, seed=42):
    """A deterministic list of (kind, src, dst, line) protocol ops."""
    rng = random.Random(seed)
    kinds = [k for k, weight in _KIND_MIX for _ in range(weight)]
    return [
        (
            rng.choice(kinds),
            rng.randrange(_NUM_CORES),
            rng.randrange(_NUM_CORES),
            rng.randrange(1 << 20),
        )
        for _ in range(num_ops)
    ]


_DISPATCH_ORDER = (
    mk.GETS, mk.GETX, mk.PUTS, mk.PUTM, mk.INV, mk.INV_ACK, mk.WB_DATA,
    mk.FWD_GETS, mk.FWD_DATA, mk.DATA, mk.DATA_E, mk.GRANT_X,
    mk.PUT_ACK, mk.WIR_UPGR, mk.WIR_UPGR_ACK, mk.NACK,
)

_WORDS = {w: 0x5151AA00 + w for w in range(_WORDS_PER_LINE)}


# ----------------------------------------------------------- seed kernel


class _SeedMessage:
    """The seed's message object: string kind, fresh allocation per send."""

    __slots__ = ("kind", "src", "dst", "line", "payload", "sent_at", "carries_data")

    def __init__(self, kind, src, dst, line, payload=None):
        self.kind = kind
        self.src = src
        self.dst = dst
        self.line = line
        self.payload = payload if payload is not None else {}
        self.sent_at = None
        self.carries_data = kind in DATA_BEARING_KINDS


class _SeedQueue:
    """The seed's EventQueue.schedule: Event.__init__ plus heappush."""

    def __init__(self):
        self._heap = []
        self._seq = 0
        self._live = 0

    def schedule(self, when, callback):
        seq = self._seq
        self._seq = seq + 1
        event = Event(when, seq, callback)
        self._live += 1
        heapq.heappush(self._heap, (when, seq, event))
        return event


class _SeedConfig:
    """Attribute-bag standing in for the frozen NocConfig dataclass."""

    def __init__(self):
        self.router_overhead_cycles = _ROUTER_OVERHEAD
        self.cycles_per_hop = _CYCLES_PER_HOP
        self.model_contention = True


class _SeedSim:
    """Just enough Simulator surface for the seed send path (``.now``)."""

    def __init__(self):
        self.now = 0


class _SeedMesh:
    """The seed ``MeshNetwork.send``/``_traverse`` structure, verbatim shape.

    Everything goes through ``self.`` attribute chains exactly as the seed
    sources did — ``self.sim.now`` re-read three times per send,
    ``self.config.cycles_per_hop`` re-resolved per link,
    ``self.topology.route(...)`` rebuilt per message, bound ``Counter.add``
    calls — because those walks are precisely what the fast path hoisted.
    """

    def __init__(self, topology):
        self.topology = topology
        self.config = _SeedConfig()
        self.sim = _SeedSim()
        self.data_serialization_cycles = _SERIALIZATION
        stats = StatsRegistry()
        self._messages = stats.counter("noc.messages")
        self._total_hops = stats.counter("noc.total_hops")
        self._data_messages = stats.counter("noc.data_messages")
        self._hop_histogram = stats.histogram("noc.hops_per_leg", HOP_BINS)
        self._link_busy_until = {}
        self._pair_order = {}
        self.queue = _SeedQueue()

    def send(self, message):
        message.sent_at = self.sim.now
        hops = self.topology.hops(message.src, message.dst)
        self._messages.add()
        self._total_hops.add(hops)
        self._hop_histogram.record(hops)  # re-scans HOP_BINS per message
        if message.carries_data:
            self._data_messages.add()
        serialization = (
            self.data_serialization_cycles if message.carries_data else 1
        )
        depart = self.sim.now + self.config.router_overhead_cycles
        if self.config.model_contention and message.src != message.dst:
            arrival = self._traverse(message, depart, serialization)
        else:
            arrival = depart + hops * self.config.cycles_per_hop
            if message.carries_data:
                arrival += self.data_serialization_cycles
        pair = (message.src, message.dst)
        arrival = max(arrival, self.sim.now, self._pair_order.get(pair, 0) + 1)
        self._pair_order[pair] = arrival
        return hops, arrival

    def _traverse(self, message, depart, serialization):
        time = depart
        for link in self.topology.route(message.src, message.dst):
            ready = self._link_busy_until.get(link, 0)
            if ready > time:
                time = ready
            self._link_busy_until[link] = time + serialization
            time += self.config.cycles_per_hop  # attr chain per link (seed)
        if serialization > 1:
            time += serialization - 1
        return time

    def schedule_at(self, when, callback):
        """The seed Simulator.schedule_at frame sitting above the queue."""
        return self.queue.schedule(when, callback)


def _seed_kernel(stream, topology, now=0):
    """Per-message cost model of the seed inner loop (module docstring)."""
    mesh = _SeedMesh(topology)
    sim = mesh.sim
    lru_set = OrderedDict((way, way) for way in range(_LRU_WAYS))
    checksum = 0
    callback = int  # cheap no-op callable, identical on both sides

    for kind, src, dst, line in stream:
        # --- send(): per-message route/hop recomputation ---
        sim.now = now
        payload = {"data": dict(_WORDS)} if kind in DATA_BEARING_KINDS else {}
        msg = _SeedMessage(kind, src, dst, line, payload)
        hops, arrival = mesh.send(msg)
        mesh.schedule_at(arrival, callback)

        # --- deliver + controller dispatch: string if/elif chain ---
        k = msg.kind
        if k == mk.GETS:
            checksum += 1
        elif k == mk.GETX:
            checksum += 2
        elif k == mk.PUTS:
            checksum += 3
        elif k == mk.PUTM:
            checksum += 4
        elif k == mk.INV:
            checksum += 5
        elif k == mk.INV_ACK:
            checksum += 6
        elif k == mk.WB_DATA:
            checksum += 7
        elif k == mk.FWD_GETS:
            checksum += 8
        elif k == mk.FWD_DATA:
            checksum += 9
        elif k == mk.DATA:
            checksum += 10
        elif k == mk.DATA_E:
            checksum += 11
        elif k == mk.GRANT_X:
            checksum += 12
        elif k == mk.PUT_ACK:
            checksum += 13
        elif k == mk.WIR_UPGR:
            checksum += 14
        elif k == mk.WIR_UPGR_ACK:
            checksum += 15
        elif k == mk.NACK:
            checksum += 16

        # --- directory array touch: OrderedDict LRU ---
        way = line & (_LRU_WAYS - 1)
        lru_set.move_to_end(way)

        # --- install: the seed's second defensive copy of the payload ---
        if msg.carries_data:
            installed = dict(msg.payload["data"])
            checksum += len(installed)
        checksum += hops + arrival
        now += 1
    return checksum


# ----------------------------------------------------------- fast kernel


def _fast_kernel(stream_ids, topology, now=0):
    """The same work through the current fast-path primitives."""
    stats = StatsRegistry()
    messages = stats.counter("noc.messages")
    total_hops = stats.counter("noc.total_hops")
    data_messages = stats.counter("noc.data_messages")
    histogram = stats.histogram("noc.hops_per_leg", HOP_BINS)
    hop_counts = histogram.counts
    heap = []
    seq = 0
    link_busy = {}
    pair_order = {}
    route_cache = {}
    lru_set = {way: way for way in range(_LRU_WAYS)}
    cow_words = LineData(_WORDS)
    snapshot = cow_words.snapshot
    dispatch = mk.kind_table()
    for value, name in enumerate(_DISPATCH_ORDER, start=1):
        dispatch[mk.kind_id(name)] = value
    acquire = Message.acquire
    release = Message.release
    heappush = heapq.heappush
    checksum = 0
    callback = int

    for kid, src, dst, line, data_bearing in stream_ids:
        # --- send(): cached (hops, route, bin) + direct counter bumps ---
        pair = (src, dst)
        info = route_cache.get(pair)
        if info is None:
            route = topology.route(src, dst)
            hops = topology.hops(src, dst)
            bin_idx = -1
            for i, (low, high) in enumerate(HOP_BINS):
                if hops >= low and (high is None or hops <= high):
                    bin_idx = i
                    break
            info = (hops, route, bin_idx)
            route_cache[pair] = info
        hops, route, bin_idx = info
        messages.value += 1
        total_hops.value += hops
        hop_counts[bin_idx] += 1
        payload = {"data": snapshot()} if data_bearing else {}
        msg = acquire(kid, src, dst, line, payload)
        if data_bearing:
            data_messages.value += 1
        serialization = _SERIALIZATION if data_bearing else 1
        if src != dst:
            arrival = now + _ROUTER_OVERHEAD
            for link in route:
                ready = link_busy.get(link, 0)
                if ready > arrival:
                    arrival = ready
                link_busy[link] = arrival + serialization
                arrival += _CYCLES_PER_HOP
            if serialization > 1:
                arrival += serialization - 1
        else:
            arrival = now + _ROUTER_OVERHEAD + hops * _CYCLES_PER_HOP
            if data_bearing:
                arrival += _SERIALIZATION
        arrival = max(arrival, now, pair_order.get(pair, 0) + 1)
        pair_order[pair] = arrival
        # Inline Event creation (the simulator.schedule_at fast path).
        event = Event.__new__(Event)
        event.time = arrival
        event.seq = seq
        event.callback = callback
        event.cancelled = False
        heappush(heap, (arrival, seq, event))
        seq += 1

        # --- deliver + controller dispatch: table indexed by kind id ---
        checksum += dispatch[msg.kind_id]

        # --- directory array touch: plain-dict del + reinsert LRU ---
        way = line & (_LRU_WAYS - 1)
        entry = lru_set[way]
        del lru_set[way]
        lru_set[way] = entry

        # --- install: O(1) copy-on-write view of the payload ---
        if msg.carries_data:
            installed = msg.payload["data"].snapshot()
            checksum += len(installed)
        checksum += hops + arrival
        now += 1
        release(msg)
    return checksum


def _intern_stream(stream):
    return [
        (mk.kind_id(kind), src, dst, line, kind in DATA_BEARING_KINDS)
        for kind, src, dst, line in stream
    ]


# -------------------------------------------------------- batched kernel

def _topology_planes(topology):
    """Static per-pair routing planes: the SoA form of the route cache.

    The live mesh keeps a persistent ``(hops, route, bin)`` cache keyed by
    pair; the batched kernel's equivalent is three dense planes indexed by
    ``pair_id = src * num_nodes + dst`` — hops and histogram bin as numpy
    vectors (for one-shot gathers over the whole stream) and the XY routes
    as tuples of flat link ids (for the sequential contention scan). Built
    once per topology, exactly like the real cache warms once per run.
    """
    import numpy as np

    n = topology.num_nodes
    hops_by_pid = np.zeros(n * n, dtype=np.int64)
    bin_by_pid = np.zeros(n * n, dtype=np.int64)
    routes_by_pid = [()] * (n * n)
    for src in range(n):
        for dst in range(n):
            pid = src * n + dst
            hops = topology.hops(src, dst)
            hops_by_pid[pid] = hops
            for i, (low, high) in enumerate(HOP_BINS):
                if hops >= low and (high is None or hops <= high):
                    bin_by_pid[pid] = i
                    break
            routes_by_pid[pid] = tuple(
                a * n + b for a, b in topology.route(src, dst)
            )
    return hops_by_pid, bin_by_pid, routes_by_pid


def _batch_stream(stream):
    """The op stream as struct-of-arrays columns (the batched front end's
    native format, mirroring :class:`repro.cpu.trace.TraceChunk`)."""
    import numpy as np

    n = len(stream)
    code_of = {name: i for i, name in enumerate(_DISPATCH_ORDER)}
    kinds = np.fromiter((code_of[k] for k, _, _, _ in stream), np.int64, n)
    pair_np = np.fromiter(
        (src * _NUM_CORES + dst for _, src, dst, _ in stream), np.int64, n
    )
    lines = np.fromiter((line for _, _, _, line in stream), np.int64, n)
    data = np.fromiter(
        (k in DATA_BEARING_KINDS for k, _, _, _ in stream), np.bool_, n
    )
    return {
        "n": n,
        "kinds": kinds,
        "pair_np": pair_np,
        "pair_ids": pair_np.tolist(),
        "lines": lines,
        "data": data,
        "serials": [(_SERIALIZATION if d else 1) for d in data.tolist()],
    }


def _batched_kernel(cols, planes, now=0):
    """The same work as the other kernels, batched-epoch style.

    Order-free bookkeeping — dispatch accumulation, hop totals, histogram
    bins, data-install word counts, LRU stamp touches — is computed with
    one vectorized pass per column over the whole stream (SoA metadata,
    ``np.take``/``np.bincount``/last-write-wins fancy assignment). Only the
    inherently sequential part survives as a Python loop: the per-link
    busy-until contention scan and the per-pair FIFO clamp, walking
    precomputed flat link ids, with deliveries appended to calendar-queue
    buckets instead of heap-pushed (the CohortQueue schedule path). The
    checksum is identical to ``_seed_kernel``/``_fast_kernel`` by
    construction, so the comparison cannot silently diverge.
    """
    import numpy as np

    stats = StatsRegistry()
    messages = stats.counter("noc.messages")
    total_hops = stats.counter("noc.total_hops")
    data_messages = stats.counter("noc.data_messages")
    histogram = stats.histogram("noc.hops_per_leg", HOP_BINS)
    hops_by_pid, bin_by_pid, routes_by_pid = planes
    n = cols["n"]
    pair_np = cols["pair_np"]

    # --- send-side bookkeeping: whole-stream vectorized passes ---
    hops_stream = hops_by_pid[pair_np]
    hops_total = int(hops_stream.sum())
    messages.value += n
    total_hops.value += hops_total
    data_count = int(cols["data"].sum())
    data_messages.value += data_count
    bin_counts = np.bincount(bin_by_pid[pair_np], minlength=len(HOP_BINS))
    counts = histogram.counts
    for i in range(len(HOP_BINS)):
        counts[i] += int(bin_counts[i])

    # --- dispatch + install: one gather-sum replaces 20k table lookups;
    # installs count words from metadata, no per-message payload dicts ---
    checksum = int(cols["kinds"].sum()) + n + _WORDS_PER_LINE * data_count

    # --- directory LRU touch: last-write-wins stamp assignment gives the
    # same final recency order as per-message move_to_end ---
    stamps = np.zeros(_LRU_WAYS, dtype=np.int64)
    stamps[cols["lines"] & (_LRU_WAYS - 1)] = np.arange(n, dtype=np.int64)

    # --- the irreducibly sequential leg: link reservations + pair FIFO.
    # Arrival times are collected and the calendar-queue cohorts (which
    # bucket each delivery lands in) are formed afterwards with one
    # bincount — cohort formation is order-free, so it does not belong in
    # the sequential scan. ---
    link_busy = [0] * (_NUM_CORES * _NUM_CORES)
    pair_last = [0] * (_NUM_CORES * _NUM_CORES)
    arrivals = []
    arr_append = arrivals.append
    t_base = now + _ROUTER_OVERHEAD
    cycles_per_hop = _CYCLES_PER_HOP
    tail_cycles = _SERIALIZATION
    for pid, serialization, route in zip(
        cols["pair_ids"],
        cols["serials"],
        map(routes_by_pid.__getitem__, cols["pair_ids"]),
    ):
        t = t_base
        t_base += 1
        if route:
            for link in route:
                ready = link_busy[link]
                if ready > t:
                    t = ready
                link_busy[link] = t + serialization
                t += cycles_per_hop
            if serialization > 1:
                t += serialization - 1
        elif serialization > 1:  # src == dst, data-bearing: no links
            t += tail_cycles
        last = pair_last[pid]
        if t <= last:
            t = last + 1
        pair_last[pid] = t
        arr_append(t)
    arr = np.fromiter(arrivals, np.int64, n)
    cohorts = np.bincount(arr & 4095, minlength=4096)  # the ring fill
    return checksum + hops_total + int(arr.sum()) + (int(cohorts.sum()) - n)


# ------------------------------------------------------------ benchmarks


def test_bench_kernel_inner_loop_speedup(kernel_metrics):
    stream = _make_stream(_NUM_OPS)
    stream_ids = _intern_stream(stream)
    topology = MeshTopology(_NUM_CORES, _MESH_WIDTH)

    # Equivalence first: the two kernels must agree before we time them.
    assert _seed_kernel(stream, topology) == _fast_kernel(stream_ids, topology)

    seed_best = fast_best = float("inf")
    gc_was_enabled = gc.isenabled()
    gc.collect()
    gc.disable()  # collector pauses would hit one side at random
    try:
        for _ in range(_ROUNDS):  # interleaved so noise hits both sides
            start = time.perf_counter()
            _seed_kernel(stream, topology)
            seed_best = min(seed_best, time.perf_counter() - start)

            start = time.perf_counter()
            _fast_kernel(stream_ids, topology)
            fast_best = min(fast_best, time.perf_counter() - start)
    finally:
        if gc_was_enabled:
            gc.enable()

    speedup = seed_best / fast_best
    kernel_metrics["inner_loop_seed_seconds"] = round(seed_best, 4)
    kernel_metrics["inner_loop_fast_seconds"] = round(fast_best, 4)
    kernel_metrics["inner_loop_speedup"] = round(speedup, 2)
    print(
        f"\nkernel inner loop ({_NUM_OPS} msgs @ {_NUM_CORES} cores): "
        f"seed {seed_best:.4f}s, fast {fast_best:.4f}s -> {speedup:.2f}x"
    )
    # PR acceptance bar; the measured ratio typically clears it with
    # headroom, which absorbs scheduling noise on loaded CI machines.
    assert speedup >= 1.5, (
        f"fast path only {speedup:.2f}x over the seed inner loop "
        f"(seed {seed_best:.4f}s, fast {fast_best:.4f}s)"
    )


def test_bench_kernel_batched_speedup(kernel_batched_metrics):
    """Batched-epoch kernel vs the PR 2 fast path vs the seed (A/B/C).

    All three kernels replay the identical message stream and must agree
    on the checksum before any timing happens. Each consumes its native
    pre-built stream format (string ops for the seed, interned-id tuples
    for the fast path, SoA numpy columns plus static routing planes for
    the batched kernel — the formats the respective front ends emit), and
    the rounds strictly interleave so machine noise hits all sides.

    Gates are set below the typically measured ratios (~6-7x over fast,
    ~11x over seed on the reference box) to absorb loaded-CI noise; the
    measured numbers land in BENCH_harness.json under ``kernel_batched``.
    """
    stream = _make_stream(_NUM_OPS)
    stream_ids = _intern_stream(stream)
    topology = MeshTopology(_NUM_CORES, _MESH_WIDTH)
    planes = _topology_planes(topology)
    cols = _batch_stream(stream)

    expected = _seed_kernel(stream, topology)
    assert _fast_kernel(stream_ids, topology) == expected
    assert _batched_kernel(cols, planes) == expected

    seed_best = fast_best = batched_best = float("inf")
    gc_was_enabled = gc.isenabled()
    gc.collect()
    gc.disable()
    try:
        for _ in range(_ROUNDS):
            start = time.perf_counter()
            _seed_kernel(stream, topology)
            seed_best = min(seed_best, time.perf_counter() - start)

            start = time.perf_counter()
            _fast_kernel(stream_ids, topology)
            fast_best = min(fast_best, time.perf_counter() - start)

            start = time.perf_counter()
            _batched_kernel(cols, planes)
            batched_best = min(batched_best, time.perf_counter() - start)
    finally:
        if gc_was_enabled:
            gc.enable()

    vs_fast = fast_best / batched_best
    vs_seed = seed_best / batched_best
    kernel_batched_metrics["batched_seconds"] = round(batched_best, 4)
    kernel_batched_metrics["fast_seconds"] = round(fast_best, 4)
    kernel_batched_metrics["seed_seconds"] = round(seed_best, 4)
    kernel_batched_metrics["batched_vs_fast"] = round(vs_fast, 2)
    kernel_batched_metrics["batched_vs_seed"] = round(vs_seed, 2)
    print(
        f"\nbatched kernel ({_NUM_OPS} msgs @ {_NUM_CORES} cores): "
        f"seed {seed_best:.4f}s, fast {fast_best:.4f}s, "
        f"batched {batched_best:.4f}s -> {vs_fast:.2f}x vs fast, "
        f"{vs_seed:.2f}x vs seed"
    )
    # The PR acceptance bar is >=5x over the PR 2 fast path; the vs-seed
    # floor is set at 8x (typically ~11x) purely for CI-noise headroom.
    assert vs_fast >= 5.0, (
        f"batched kernel only {vs_fast:.2f}x over the fast path "
        f"(fast {fast_best:.4f}s, batched {batched_best:.4f}s)"
    )
    assert vs_seed >= 8.0, (
        f"batched kernel only {vs_seed:.2f}x over the seed "
        f"(seed {seed_best:.4f}s, batched {batched_best:.4f}s)"
    )


def test_bench_kernel_cow_snapshot_scaling(kernel_metrics):
    """``LineData.snapshot()`` is O(1) in line size; ``dict`` copy is O(n).

    At the protocol's 16-word lines the two are comparable per call (the
    fast path wins because it *chains*: one snapshot replaces the seed's
    copy-at-build + copy-at-install pair, measured by the inner-loop test
    above). This test pins the asymptotic claim directly with a large line.
    """
    big_words = {w: w * 7 for w in range(4096)}
    big_cow = LineData(big_words)
    n = 2_000

    copy_best = snap_best = float("inf")
    for _ in range(_ROUNDS):
        start = time.perf_counter()
        for _i in range(n):
            dict(big_words)
        copy_best = min(copy_best, time.perf_counter() - start)

        start = time.perf_counter()
        snapshot = big_cow.snapshot
        for _i in range(n):
            snapshot()
        snap_best = min(snap_best, time.perf_counter() - start)

    speedup = copy_best / snap_best
    kernel_metrics["cow_snapshot_speedup_4096w"] = round(speedup, 2)
    print(f"\nCOW snapshot vs dict copy (4096-word line): {speedup:.2f}x")
    assert speedup > 2.0  # conservatively below the measured ~2 orders

    # Semantics: a snapshot never observes writes through the original.
    cow = LineData({0: 0, 1: 1})
    view = cow.snapshot()
    cow[0] = 999
    assert view[0] == 0 and cow[0] == 999


def test_bench_kernel_end_to_end_fig10(kernel_metrics):
    """One real fig10-style point: 64-core radiosity, Baseline vs WiDir.

    Runs in-process through :func:`repro.harness.runner.run_app` (no
    executor, no result cache) so the wall seconds recorded here track the
    raw simulation kernel across PRs. Also locks determinism: repeating the
    WiDir run must reproduce the cycle count bit-for-bit despite all the
    message/frame pooling.
    """
    from repro.config.presets import baseline_config, widir_config
    from repro.harness.runner import run_app

    # The tracked fig10 point (bench_config: 64-core radiosity pair).
    cores, memops = BENCH_CORES, KERNEL_PAIR_MEMOPS

    # Warm the trace-synthesis memo so the timing below is pure simulation.
    run_app("radiosity", widir_config(num_cores=cores), memops, trace_seed=7)

    start = time.perf_counter()
    base = run_app("radiosity", baseline_config(num_cores=cores), memops, trace_seed=7)
    widir = run_app("radiosity", widir_config(num_cores=cores), memops, trace_seed=7)
    pair_seconds = time.perf_counter() - start

    again = run_app("radiosity", widir_config(num_cores=cores), memops, trace_seed=7)
    assert again.cycles == widir.cycles  # determinism under all the pooling
    assert widir.cycles < base.cycles  # radiosity is a WiDir winner (fig10)

    kernel_metrics["fig10_pair_seconds"] = round(pair_seconds, 3)
    kernel_metrics["fig10_widir_cycles"] = widir.cycles
    kernel_metrics["fig10_baseline_cycles"] = base.cycles
    print(
        f"\nfig10 64-core pair: {pair_seconds:.3f}s wall, "
        f"baseline {base.cycles:,} cy vs widir {widir.cycles:,} cy"
    )
