"""Micro-benchmarks of the substrates under the paper's Table III settings.

Not paper artifacts — these characterize the building blocks so regressions
in the protocol benches can be attributed: wireless channel throughput and
collision behaviour under swept load, ToneAck latency vs node count, and
wired-mesh latency under contention.
"""

from repro.config.system import NocConfig, WirelessConfig
from repro.engine.rng import DeterministicRng
from repro.engine.simulator import Simulator
from repro.noc.mesh import MeshNetwork
from repro.noc.message import Message
from repro.noc.topology import MeshTopology
from repro.stats.collectors import StatsRegistry
from repro.stats.report import format_table
from repro.wireless.channel import WirelessDataChannel
from repro.wireless.frames import WirelessFrame
from repro.wireless.tone import ToneChannel


def test_bench_wireless_channel_load_sweep(benchmark):
    """Throughput and collisions across offered loads (BRS behaviour)."""

    def sweep():
        rows = []
        for interarrival in (48, 24, 12, 6, 3):
            sim = Simulator(3)
            stats = StatsRegistry()
            channel = WirelessDataChannel(
                sim, WirelessConfig(), 16, stats, DeterministicRng(1)
            )
            channel.register_receiver(0, lambda f: None)
            jitter = DeterministicRng(2)
            frames = 400
            for i in range(frames):
                at = i * interarrival + jitter.randint(0, interarrival)
                sim.schedule(
                    at,
                    lambda i=i: channel.transmit(
                        WirelessFrame("WirUpd", i % 16, 0x100 + (i % 8), 0, i)
                    ),
                )
            final = sim.run(max_events=10_000_000)
            delivered = stats.get_counter("wnoc.frames")
            rows.append(
                [
                    f"1/{interarrival}",
                    delivered,
                    round(delivered / max(1, final), 4),
                    round(channel.collision_probability, 3),
                ]
            )
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print()
    print(
        format_table(
            ["offered (frames/cyc)", "delivered", "throughput", "collision p"],
            rows,
            title="Wireless channel load sweep (capacity = 1/6 per cycle)",
        )
    )
    # Every offered frame is eventually delivered (liveness), and collisions
    # grow monotonically with load.
    assert all(row[1] == 400 for row in rows)
    collisions = [row[3] for row in rows]
    assert collisions[-1] >= collisions[0]


def test_bench_tone_ack_scales_flat(benchmark):
    """ToneAck latency is independent of node count (paper III-C2)."""

    def sweep():
        rows = []
        for nodes in (4, 16, 64, 256):
            sim = Simulator()
            tone = ToneChannel(sim, 1, StatsRegistry())
            done = []
            tone.begin(0x40, set(range(nodes)), lambda: done.append(sim.now))
            # Every node completes its local check after 3 cycles.
            for node in range(nodes):
                sim.schedule(3, lambda n=node: tone.drop(0x40, n))
            sim.run()
            rows.append([nodes, done[0]])
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print()
    print(
        format_table(
            ["nodes", "ToneAck completion (cycles)"],
            rows,
            title="ToneAck latency vs node count",
        )
    )
    latencies = {row[1] for row in rows}
    assert len(latencies) == 1, f"ToneAck must be node-count independent: {rows}"


def test_bench_mesh_latency_under_contention(benchmark):
    """Wired mesh: latency of a victim flow while a hotspot is hammered."""

    def sweep():
        rows = []
        for hammer_messages in (0, 50, 200):
            sim = Simulator()
            topology = MeshTopology(64, 8)
            stats = StatsRegistry()
            mesh = MeshNetwork(sim, topology, NocConfig(), stats)
            arrivals = []
            for node in range(64):
                mesh.register_handler(
                    node, lambda m, n=node: arrivals.append((n, sim.now))
                )
            # Hotspot: many data messages crossing the middle links.
            for i in range(hammer_messages):
                mesh.send(Message("Data", 0, 63, 0x40 + i, {"data": {}}))
            # Victim: one control message along the same diagonal.
            mesh.send(Message("GetS", 0, 63, 0x9999))
            sim.run()
            victim_arrival = max(t for n, t in arrivals if n == 63)
            rows.append(
                [hammer_messages, victim_arrival,
                 stats.get_counter("noc.queueing_cycles")]
            )
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print()
    print(
        format_table(
            ["hotspot msgs", "last arrival (cyc)", "queueing cycles"],
            rows,
            title="Mesh contention: hotspot traffic delays co-routed flows",
        )
    )
    assert rows[-1][1] > rows[0][1], "contention must add latency"
    assert rows[-1][2] > 0
