"""Table VI: MaxWiredSharers sensitivity (64 cores).

Paper: threshold 3 is best (1.43x speedup, 3.14% collisions). Lowering to
2 puts more lines in wireless mode, raising collisions (6.93%) and hurting
speedup (1.22x); raising to 4/5 lowers collisions (2.24%/1.70%) but misses
wireless opportunities (1.38x/1.31x).
"""

import os

from bench_config import SMOKE_CORES, SMOKE_MEMOPS

from repro.harness.figures import table6_sensitivity

PAPER = {2: (1.22, 0.0693), 3: (1.43, 0.0314), 4: (1.38, 0.0224), 5: (1.31, 0.0170)}


def test_bench_table6_sensitivity(benchmark, bench_apps, bench_memops, bench_cores):
    thresholds = tuple(
        int(x) for x in os.environ.get("REPRO_TABLE6", "2,3,4,5").split(",")
    )
    figure = benchmark.pedantic(
        table6_sensitivity,
        kwargs=dict(
            apps=bench_apps,
            thresholds=thresholds,
            num_cores=bench_cores,
            memops=bench_memops,
        ),
        rounds=1,
        iterations=1,
    )
    print()
    print(figure.text)
    print(f"\npaper: {PAPER}")
    rows = {row[0]: (row[1], row[2]) for row in figure.rows}
    # Shape: collision probability decreases monotonically as the threshold
    # rises (fewer lines go wireless) — the paper's central trade-off.
    collisions = [rows[t][1] for t in sorted(rows)]
    assert all(a >= b - 0.02 for a, b in zip(collisions, collisions[1:])), (
        f"collisions should fall with higher thresholds: {collisions}"
    )


def test_bench_table6_smoke(benchmark):
    """Tracked-per-session smoke point for table6 (the second-slowest
    figure): two thresholds at smoke scale, so BENCH_harness.json records
    a table6 trend line every session without paying the full sweep."""
    figure = benchmark.pedantic(
        table6_sensitivity,
        kwargs=dict(
            apps=("radiosity", "ocean-nc"),
            thresholds=(2, 3),
            num_cores=SMOKE_CORES,
            memops=SMOKE_MEMOPS,
        ),
        rounds=1,
        iterations=1,
    )
    rows = {row[0]: (row[1], row[2]) for row in figure.rows}
    assert set(rows) == {2, 3}
    # Same central trade-off as the full sweep, at smoke scale.
    assert rows[2][1] >= rows[3][1] - 0.02, (
        f"collisions should not rise with a higher threshold: {rows}"
    )
