"""Figure 8: execution time normalized to Baseline at 64/32/16 cores.

Paper: at 64 cores WiDir reduces average execution time by ~22%; at 32
cores by ~11%; at 16 cores by ~4% — the benefit grows with core count.
Bars split into memory-stall and rest; ~65% of Baseline cycles at 64 cores
are memory stall.
"""

import os

import pytest

from repro.harness.figures import figure8_execution_time

PAPER_REDUCTION = {64: 0.22, 32: 0.11, 16: 0.04}


def core_counts():
    raw = os.environ.get("REPRO_FIG8_CORES", "64,32,16")
    return tuple(int(x) for x in raw.split(","))


def test_bench_fig8_execution_time(benchmark, bench_apps, bench_memops):
    counts = core_counts()
    results = benchmark.pedantic(
        figure8_execution_time,
        kwargs=dict(apps=bench_apps, core_counts=counts, memops=bench_memops),
        rounds=1,
        iterations=1,
    )
    print()
    geomeans = {}
    for cores, figure in results.items():
        print(figure.text)
        print(f"paper: ~{PAPER_REDUCTION.get(cores, 0):.0%} average reduction "
              f"at {cores} cores\n")
        geomeans[cores] = figure.rows[-1][-1]
    # Shape: the WiDir advantage does not shrink as cores grow — the
    # paper's central scalability claim.
    ordered = sorted(geomeans)  # ascending core counts
    if len(ordered) >= 2:
        assert geomeans[ordered[-1]] <= geomeans[ordered[0]] + 0.05, (
            f"WiDir benefit should grow with core count: {geomeans}"
        )
    if 64 in geomeans:
        assert geomeans[64] < 1.0, (
            f"WiDir must win on average at 64 cores, got {geomeans[64]}"
        )
