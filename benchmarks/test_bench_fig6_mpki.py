"""Figure 6: L1 MPKI of WiDir vs Baseline (normalized, read/write split).

Paper (64 cores): WiDir reduces average MPKI by ~15% by updating wireless
sharers instead of invalidating them; radiosity sees the largest reduction.
"""

from repro.harness.figures import figure6_mpki


def test_bench_fig6_mpki(benchmark, bench_apps, bench_memops, bench_cores):
    figure = benchmark.pedantic(
        figure6_mpki,
        kwargs=dict(apps=bench_apps, num_cores=bench_cores, memops=bench_memops),
        rounds=1,
        iterations=1,
    )
    print()
    print(figure.text)
    print("\npaper: WiDir/Baseline MPKI geomean ~0.85")
    geomean = figure.rows[-1][-1]
    ratios = {row[0]: row[-1] for row in figure.rows[:-1]}
    # Shape: MPKI never grows under WiDir (updates replace invalidations),
    # and the sharing-heavy apps see a real reduction.
    assert geomean <= 1.02, f"WiDir must not inflate MPKI (geomean {geomean})"
    if "radiosity" in ratios and bench_cores >= 32:
        assert ratios["radiosity"] < 0.9, (
            f"radiosity should see a large MPKI reduction, got {ratios['radiosity']}"
        )
    if "blackscholes" in ratios:
        assert ratios["blackscholes"] > 0.95, (
            "no-sharing apps should be unaffected"
        )
