"""Figure 10: average speedup over the 4-core Baseline, 4 -> 64 cores.

Paper: the protocols track each other up to ~16 cores, then diverge —
WiDir keeps scaling while Baseline's wired-mesh costs flatten it.
"""

import os

from repro.harness.figures import figure10_scalability


def core_counts():
    raw = os.environ.get("REPRO_FIG10_CORES", "4,8,16,32,64")
    return tuple(int(x) for x in raw.split(","))


def test_bench_fig10_scalability(benchmark, bench_apps, bench_memops):
    counts = core_counts()
    figure = benchmark.pedantic(
        figure10_scalability,
        kwargs=dict(apps=bench_apps, core_counts=counts, memops=bench_memops),
        rounds=1,
        iterations=1,
    )
    print()
    print(figure.text)
    print("\npaper shape: curves overlap to ~16 cores, then WiDir pulls ahead")
    rows = {row[0]: (row[1], row[2]) for row in figure.rows}
    # Shape 1: both protocols speed up with more cores overall.
    smallest, largest = counts[0], counts[-1]
    assert rows[largest][0] > rows[smallest][0]
    assert rows[largest][1] > rows[smallest][1]
    # Shape 2: at the largest machine, WiDir is at least as fast as Baseline.
    assert rows[largest][1] >= rows[largest][0] * 0.98, (
        f"WiDir should match/beat Baseline at {largest} cores: {rows[largest]}"
    )
    # Shape 3: the relative WiDir advantage does not vanish at scale (the
    # paper's curves diverge; synthetic contention keeps ours parallel).
    small_gap = rows[smallest][1] / rows[smallest][0]
    large_gap = rows[largest][1] / rows[largest][0]
    assert large_gap >= small_gap * 0.9
