"""Figure 7: total memory-operation latency, normalized to Baseline.

Paper (64 cores): WiDir reduces total memory latency by ~35% on average,
with similar reductions for loads and stores.
"""

from repro.harness.figures import figure7_memory_latency


def test_bench_fig7_memory_latency(benchmark, bench_apps, bench_memops, bench_cores):
    figure = benchmark.pedantic(
        figure7_memory_latency,
        kwargs=dict(apps=bench_apps, num_cores=bench_cores, memops=bench_memops),
        rounds=1,
        iterations=1,
    )
    print()
    print(figure.text)
    print("\npaper: WiDir/Baseline total memory latency geomean ~0.65")
    ratios = {row[0]: row[-1] for row in figure.rows[:-1]}
    # Shape: the headline WiDir winners cut their memory latency; the
    # no-sharing apps are unchanged.
    if "radiosity" in ratios and bench_cores >= 32:
        assert ratios["radiosity"] < 1.0
    if "blackscholes" in ratios:
        assert 0.9 < ratios["blackscholes"] < 1.1
