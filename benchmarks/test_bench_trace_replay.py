"""Streaming trace-replay benchmark (ISSUE 9 acceptance gate).

Records one large canonical trace (``REPRO_TRACE_REFS`` total records,
default 10M — the acceptance floor), then measures the three trace-path
throughputs and the memory contract:

* **record** — generator → chunked/compressed file, refs/s;
* **scan** — full-file streaming decompress + CRC walk, refs/s;
* **replay** — the big trace driven end-to-end through the machine,
  refs/s (the headline ``trace_replay`` lane in BENCH_harness.json).

Memory boundedness is asserted two ways, both machine-portable:

* the big file's streaming scan runs under ``tracemalloc`` and its peak
  must stay within a few chunks' worth of bytes — O(chunk), not O(trace);
* replay peak is compared against a live ``run_app`` of the *identical*
  workload: the machine's own footprint (caches, directory, touched
  memory image) is common to both sides, so replay may only add O(chunk)
  of reader state on top — never a resident copy of the trace.

The drift-gated ratio is ``replay_vs_live``: continuous replay wall
seconds vs a live ``run_app`` of the identical workload, measured in the
same session on the same box (the replay digest is asserted equal to the
live digest first, so the ratio always compares identical work). CI
fails on >20% drift against the committed BENCH_harness.json.
"""

import os
import time
import tracemalloc

from repro.config.presets import protocol_config
from repro.harness.runner import run_app
from repro.traces import (
    TraceReader,
    record_app_trace,
    replay_trace,
    result_digest,
    validate_trace,
)

#: Total records in the big trace; the committed baseline uses the 10M
#: acceptance floor, CI's bench lane shrinks it to fit the job budget.
TRACE_REFS = int(os.environ.get("REPRO_TRACE_REFS", "10000000"))

_APP = "radiosity"
_CORES = 16
_SEED = 42
#: The generator emits ~1.85 records (thinks/barriers included) per
#: memory reference for radiosity; sized so total records >= TRACE_REFS.
_RECORDS_PER_MEMOP = 1.8


def _memops_for(records_target: int) -> int:
    return max(200, int(records_target / _CORES / _RECORDS_PER_MEMOP) + 1)


def _scan(path) -> int:
    records = 0
    with TraceReader(path) as reader:
        for core in range(reader.num_cores):
            for chunk in reader.iter_core(core):
                records += len(chunk.kinds)
    return records


def _peak_bytes(fn) -> int:
    tracemalloc.start()
    tracemalloc.reset_peak()
    fn()
    _, peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()
    return peak


def test_bench_trace_replay(tmp_path, trace_replay_metrics):
    config = protocol_config("widir", num_cores=_CORES, seed=_SEED)

    # ---------------------------------------------------- the big trace
    big = tmp_path / "big.wtr"
    t0 = time.perf_counter()
    info = record_app_trace(
        big, _APP, _CORES, _memops_for(TRACE_REFS), trace_seed=1
    )
    record_seconds = time.perf_counter() - t0
    assert info["records"] >= TRACE_REFS, (
        f"trace has {info['records']:,} records, floor is {TRACE_REFS:,}"
    )

    # Streaming scan of every chunk under tracemalloc: O(chunk) reading.
    chunk_bytes = info["chunk_records"] * 26  # RECORD_BYTES
    tracemalloc.start()
    tracemalloc.reset_peak()
    t0 = time.perf_counter()
    scanned = _scan(big)
    scan_seconds = time.perf_counter() - t0
    _, scan_peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()
    assert scanned == info["records"]
    # A chunk decompresses through numpy record arrays and python-list
    # columns (~10x the raw record bytes); 64 chunks of slack is still
    # five orders of magnitude below O(trace) at the 10M floor.
    scan_cap = 64 * 10 * chunk_bytes
    assert scan_peak < scan_cap, (
        f"streaming scan peaked at {scan_peak / 1e6:.1f} MB "
        f"(cap {scan_cap / 1e6:.1f} MB) — reading is not O(chunk)"
    )

    # Full replay of the big trace through the machine (no tracemalloc:
    # the probe itself would dominate the refs/s measurement).
    t0 = time.perf_counter()
    big_result = replay_trace(big, config)
    replay_seconds = time.perf_counter() - t0
    assert big_result.cycles > 0
    replay_refs_per_s = info["records"] / replay_seconds

    # ------------------------- replay vs live (wall gated, memory cap)
    live_trace = tmp_path / "live.wtr"
    live_memops = _memops_for(max(100_000, TRACE_REFS // 16))
    record_app_trace(live_trace, _APP, _CORES, live_memops, trace_seed=3)
    t0 = time.perf_counter()
    live = run_app(_APP, config, live_memops, 3)
    live_seconds = time.perf_counter() - t0
    t0 = time.perf_counter()
    replayed = replay_trace(live_trace, config)
    replay_small_seconds = time.perf_counter() - t0
    assert result_digest(replayed) == result_digest(live), (
        "replay_vs_live compared different work: digests diverge"
    )
    replay_vs_live = live_seconds / replay_small_seconds

    # Identical workload, identical machine footprint on both sides: the
    # replay side may only add O(chunk) of reader state, so its peak must
    # track the live peak — a resident trace copy would blow straight
    # past this.
    peak_live = _peak_bytes(lambda: run_app(_APP, config, live_memops, 3))
    peak_replay = _peak_bytes(lambda: replay_trace(live_trace, config))
    assert peak_replay < 1.3 * peak_live + scan_cap, (
        f"replay peaked at {peak_replay / 1e6:.1f} MB vs live "
        f"{peak_live / 1e6:.1f} MB — replay memory is not O(machine + chunk)"
    )

    assert validate_trace(big)["ok"] is True

    print(
        f"\ntrace replay ({info['records']:,} records, "
        f"{info['file_bytes'] / 1e6:.1f} MB on disk, "
        f"{info['compression_ratio']:.1f}x compression):"
    )
    print(
        f"  record : {record_seconds:7.2f}s "
        f"({info['records'] / record_seconds:>12,.0f} refs/s)"
    )
    print(
        f"  scan   : {scan_seconds:7.2f}s "
        f"({scanned / scan_seconds:>12,.0f} refs/s, "
        f"peak {scan_peak / 1e6:.1f} MB)"
    )
    print(
        f"  replay : {replay_seconds:7.2f}s "
        f"({replay_refs_per_s:>12,.0f} refs/s)"
    )
    print(
        f"  memory : live {peak_live / 1e6:.1f} MB, "
        f"replay {peak_replay / 1e6:.1f} MB; "
        f"replay_vs_live {replay_vs_live:.2f}x "
        f"(live {live_seconds:.2f}s, replay {replay_small_seconds:.2f}s)"
    )

    trace_replay_metrics.update(
        {
            "records": info["records"],
            "file_bytes": info["file_bytes"],
            "compression_ratio": info["compression_ratio"],
            "record_refs_per_s": round(info["records"] / record_seconds),
            "scan_refs_per_s": round(scanned / scan_seconds),
            "replay_refs_per_s": round(replay_refs_per_s),
            "replay_wall_seconds": round(replay_seconds, 3),
            "scan_peak_mb": round(scan_peak / 1e6, 2),
            "live_peak_mb": round(peak_live / 1e6, 2),
            "replay_peak_mb": round(peak_replay / 1e6, 2),
            "replay_vs_live": round(replay_vs_live, 3),
            "live_digest_identical": True,
            "cores": _CORES,
        }
    )
