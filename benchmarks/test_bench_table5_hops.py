"""Table V: distribution of wired hops per coherence leg (64-core Baseline).

Paper: 0-2 hops 17%, 3-5 hops 22%, 6-8 hops 31%, 9-11 hops 21%, 12-16 hops
9% — i.e., more than half of all wired messages travel 6+ hops.
"""

from repro.harness.figures import table5_hop_distribution

PAPER = {"0-2": 0.17, "3-5": 0.22, "6-8": 0.31, "9-11": 0.21, "12+": 0.09}


def test_bench_table5_hop_distribution(benchmark, bench_apps, bench_memops):
    figure = benchmark.pedantic(
        table5_hop_distribution,
        kwargs=dict(apps=bench_apps, num_cores=64, memops=bench_memops),
        rounds=1,
        iterations=1,
    )
    print()
    print(figure.text)
    print(f"\npaper distribution: {PAPER}")
    measured = {row[0]: row[1] for row in figure.rows}
    assert abs(sum(measured.values()) - 1.0) < 1e-9
    # Shape: a large share of messages needs many hops on an 8x8 mesh —
    # the cost WiDir's single-hop broadcast avoids.
    assert measured["6-8"] + measured["9-11"] + measured["12+"] > 0.25
    # The middle bins dominate the extremes, as in the paper.
    assert measured["3-5"] + measured["6-8"] > measured["12+"]
