"""Shared configuration for the benchmark suite.

Every benchmark regenerates one table or figure of the paper's evaluation
section via the harness functions in :mod:`repro.harness.figures` and prints
the same rows/series the paper reports. Scale knobs:

* ``REPRO_MEMOPS``   — memory references per core per run (default 2500;
  shorter runs dilute coherence effects with cold-start misses).
* ``REPRO_APPS``     — comma-separated app subset (default: a representative
  six-app set; pass ``all`` for the full 20-application suite).
* ``REPRO_CORES``    — core count for single-machine benches (default 64).

The benchmarks assert only *shape* properties (who wins, monotonicity),
never absolute cycle counts — matching the reproduction contract in
DESIGN.md.
"""

import os

import pytest

#: Representative subset spanning the paper's behaviour classes: two big
#: WiDir winners, two mid apps, two no-sharing PARSEC apps.
DEFAULT_APPS = (
    "radiosity",
    "ocean-nc",
    "barnes",
    "water-spa",
    "blackscholes",
    "ferret",
)


def selected_apps():
    raw = os.environ.get("REPRO_APPS", "")
    if not raw:
        return DEFAULT_APPS
    if raw.strip().lower() == "all":
        from repro.workloads.profiles import ALL_APPS

        return ALL_APPS
    return tuple(name.strip() for name in raw.split(",") if name.strip())


def memops():
    return int(os.environ.get("REPRO_MEMOPS", "2500"))


def cores():
    return int(os.environ.get("REPRO_CORES", "64"))


@pytest.fixture(scope="session")
def bench_apps():
    return selected_apps()


@pytest.fixture(scope="session")
def bench_memops():
    return memops()


@pytest.fixture(scope="session")
def bench_cores():
    return cores()
