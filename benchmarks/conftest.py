"""Shared configuration for the benchmark suite.

Every benchmark regenerates one table or figure of the paper's evaluation
section via the harness functions in :mod:`repro.harness.figures` and prints
the same rows/series the paper reports. Scale knobs:

* ``REPRO_MEMOPS``   — memory references per core per run (default 2500;
  shorter runs dilute coherence effects with cold-start misses).
* ``REPRO_APPS``     — comma-separated app subset (default: a representative
  six-app set; pass ``all`` for the full 20-application suite).
* ``REPRO_CORES``    — core count for single-machine benches (default 64).
* ``REPRO_WORKERS``  — simulation worker processes for the session's
  executor (default: ``max(2, cpu count)`` so benchmark sessions always
  exercise the parallel dispatch path; set ``1`` to force the serial
  path).

The benchmarks assert only *shape* properties (who wins, monotonicity),
never absolute cycle counts — matching the reproduction contract in
DESIGN.md.

Perf telemetry: the session emits ``BENCH_harness.json`` (override the path
with ``REPRO_BENCH_PATH``; set it empty to disable) recording wall-clock per
benchmark, the executor's serial-equivalent simulation seconds vs. its
actual wall seconds, worker count, and the memo-cache hit rate — the
numbers that track the harness's perf trajectory across PRs.
"""

import json
import os
import time
from pathlib import Path

import pytest

from bench_config import BENCH_CORES, BENCH_MEMOPS

#: Representative subset spanning the paper's behaviour classes: two big
#: WiDir winners, two mid apps, two no-sharing PARSEC apps.
DEFAULT_APPS = (
    "radiosity",
    "ocean-nc",
    "barnes",
    "water-spa",
    "blackscholes",
    "ferret",
)


def selected_apps():
    raw = os.environ.get("REPRO_APPS", "")
    if not raw:
        return DEFAULT_APPS
    if raw.strip().lower() == "all":
        from repro.workloads.profiles import ALL_APPS

        return ALL_APPS
    return tuple(name.strip() for name in raw.split(",") if name.strip())


def memops():
    return int(os.environ.get("REPRO_MEMOPS", str(BENCH_MEMOPS)))


def cores():
    return int(os.environ.get("REPRO_CORES", str(BENCH_CORES)))


def bench_workers():
    """Worker count for the benchmark session's process-wide executor.

    Unlike the library default (``REPRO_WORKERS`` else CPU count, which can
    legitimately resolve to 1 on a single-core box), benchmark sessions
    default to *at least two* workers so BENCH_harness.json always records
    the parallel fan-out path unless the user explicitly pins
    ``REPRO_WORKERS=1``.
    """
    raw = os.environ.get("REPRO_WORKERS", "")
    if raw.strip():
        return max(1, int(raw))
    return max(2, os.cpu_count() or 1)


def pytest_configure(config):
    """Install a session-wide executor honouring :func:`bench_workers`."""
    from repro.harness.executor import Executor, set_default_executor

    set_default_executor(Executor(workers=bench_workers()))


@pytest.fixture(scope="session")
def bench_apps():
    return selected_apps()


@pytest.fixture(scope="session")
def bench_memops():
    return memops()


@pytest.fixture(scope="session")
def bench_cores():
    return cores()


# ------------------------------------------------- BENCH_harness.json emitter

#: Per-benchmark wall-clock, filled by pytest_runtest_logreport.
_BENCH_TIMINGS = {}
#: Free-form metrics from the kernel microbenchmarks (speedup ratios,
#: measured wall seconds); lands under ``"kernel"`` in BENCH_harness.json.
_KERNEL_METRICS = {}
#: Batched-kernel A/B metrics (batched vs PR2 fast path vs seed); lands
#: under ``"kernel_batched"``.
_KERNEL_BATCHED_METRICS = {}
#: Observability-overhead metrics (enabled/disabled wall ratios) from
#: benchmarks/test_bench_obs.py; lands under ``"obs"``.
_OBS_METRICS = {}
#: Distributed-campaign scaling metrics (worker-count wall-clock bars,
#: speedup, digest identity) from benchmarks/test_bench_distributed.py;
#: lands under ``"distributed"`` and is drift-gated in CI.
_DISTRIBUTED_METRICS = {}
#: Cold-cache executor metrics (cold vs warm wall seconds over a private
#: cache dir) from benchmarks/test_bench_executor.py; lands under
#: ``"executor_cold"``. The session-wide ``executor`` section above runs
#: hot against the developer's persistent cache (hit rate ~1.0, executed
#: 0), which told us nothing about execution cost — this section is the
#: cold round that fills that blind spot.
_EXECUTOR_COLD_METRICS = {}
#: Streaming trace-replay metrics (record/scan/replay refs/s, bounded-
#: memory peaks, replay-vs-live ratio) from
#: benchmarks/test_bench_trace_replay.py; lands under ``"trace_replay"``
#: and CI drift-gates ``replay_vs_live``.
_TRACE_REPLAY_METRICS = {}
#: Cross-MAC comparison metrics (per-MAC geomean cycle ratios vs brs)
#: from benchmarks/test_bench_macs.py; lands under ``"mac"`` and is
#: drift-gated in CI.
_MAC_METRICS = {}
_SESSION_STARTED = time.time()


@pytest.fixture(scope="session")
def kernel_metrics():
    """Mutable dict benchmarks fill; emitted as the ``kernel`` section."""
    return _KERNEL_METRICS


@pytest.fixture(scope="session")
def kernel_batched_metrics():
    """Mutable dict for the batched-kernel A/B gate; emitted as
    ``kernel_batched``."""
    return _KERNEL_BATCHED_METRICS


@pytest.fixture(scope="session")
def obs_metrics():
    """Mutable dict the obs-overhead benchmark fills; emitted as ``obs``."""
    return _OBS_METRICS


@pytest.fixture(scope="session")
def distributed_metrics():
    """Mutable dict the distributed-scaling benchmark fills; emitted as
    ``distributed`` (CI drift-gates ``speedup_4x``)."""
    return _DISTRIBUTED_METRICS


@pytest.fixture(scope="session")
def executor_cold_metrics():
    """Mutable dict the cold-cache executor benchmark fills; emitted as
    ``executor_cold``."""
    return _EXECUTOR_COLD_METRICS


@pytest.fixture(scope="session")
def trace_replay_metrics():
    """Mutable dict the trace-replay benchmark fills; emitted as
    ``trace_replay`` (CI drift-gates ``replay_vs_live``)."""
    return _TRACE_REPLAY_METRICS


@pytest.fixture(scope="session")
def mac_metrics():
    """Mutable dict the MAC-comparison benchmark fills; emitted as
    ``mac`` (CI drift-gates the per-MAC geomean ratios)."""
    return _MAC_METRICS


def _bench_output_path():
    raw = os.environ.get("REPRO_BENCH_PATH")
    if raw is not None:
        return Path(raw) if raw.strip() else None  # empty => disabled
    return Path(__file__).resolve().parent.parent / "BENCH_harness.json"


def pytest_runtest_logreport(report):
    if report.when == "call" and "test_bench" in report.nodeid:
        _BENCH_TIMINGS[report.nodeid] = {
            "seconds": round(report.duration, 4),
            "outcome": report.outcome,
        }


def pytest_sessionfinish(session, exitstatus):
    if not _BENCH_TIMINGS:
        return  # not a benchmark session; leave no artifact behind
    path = _bench_output_path()
    if path is None:
        return
    from repro.harness.executor import default_executor

    stats = default_executor().stats
    # sim_seconds is the summed cost of every simulation actually executed
    # (what a one-core serial harness would have paid for the *unique* runs);
    # wall_seconds is what the executor actually spent dispatching them.
    payload = {
        "schema": 1,
        "generated_unix": round(time.time(), 2),
        "session_wall_seconds": round(time.time() - _SESSION_STARTED, 2),
        "config": {
            "apps": list(selected_apps()),
            "memops": memops(),
            "cores": cores(),
            "workers": default_executor().workers,
            "cache_dir": str(default_executor().cache_dir),
            "cache_enabled": default_executor().use_cache,
        },
        "figures": dict(sorted(_BENCH_TIMINGS.items())),
        "executor": {
            **stats.as_dict(),
            "serial_equivalent_seconds": round(stats.sim_seconds, 3),
            "parallel_wall_seconds": round(stats.wall_seconds, 3),
        },
    }
    if _KERNEL_METRICS:
        payload["kernel"] = dict(sorted(_KERNEL_METRICS.items()))
    if _KERNEL_BATCHED_METRICS:
        payload["kernel_batched"] = dict(sorted(_KERNEL_BATCHED_METRICS.items()))
    if _OBS_METRICS:
        payload["obs"] = dict(sorted(_OBS_METRICS.items()))
    if _DISTRIBUTED_METRICS:
        payload["distributed"] = dict(sorted(_DISTRIBUTED_METRICS.items()))
    if _EXECUTOR_COLD_METRICS:
        payload["executor_cold"] = dict(sorted(_EXECUTOR_COLD_METRICS.items()))
    if _TRACE_REPLAY_METRICS:
        payload["trace_replay"] = dict(sorted(_TRACE_REPLAY_METRICS.items()))
    if _MAC_METRICS:
        payload["mac"] = dict(sorted(_MAC_METRICS.items()))
    try:
        path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    except OSError:  # pragma: no cover - read-only checkout
        pass
