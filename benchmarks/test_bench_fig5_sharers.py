"""Figure 5: number of sharers updated per wireless write.

Paper (64 cores): across applications, writes updating <=5 sharers are ~36%
and writes updating 50+ sharers are ~37% of all wireless writes; radiosity
has >90% of its updates reaching 50+ sharers (task queues / locks).
"""

from repro.harness.figures import figure5_sharer_histogram


def test_bench_fig5_sharer_histogram(benchmark, bench_apps, bench_memops, bench_cores):
    figure = benchmark.pedantic(
        figure5_sharer_histogram,
        kwargs=dict(apps=bench_apps, num_cores=bench_cores, memops=bench_memops),
        rounds=1,
        iterations=1,
    )
    print()
    print(figure.text)
    rows = {row[0]: row[1:] for row in figure.rows}
    if "radiosity" in rows and bench_cores >= 64:
        fractions = rows["radiosity"]
        # Shape: a visible share of radiosity's wireless writes reaches the
        # wide bins (paper: >90% reach 50+; sharer churn in the synthetic
        # model shifts mass down — see EXPERIMENTS.md).
        assert fractions[3] + fractions[4] > 0.08, (
            f"radiosity should reach the wide-sharing bins, got {fractions}"
        )
    if "ferret" in rows and "radiosity" in rows:
        # Narrow-sharing apps stay in the bottom bins; wide apps do not.
        wide = rows["radiosity"][3] + rows["radiosity"][4]
        narrow = rows["ferret"][3] + rows["ferret"][4]
        assert wide >= narrow
    if "blackscholes" in rows:
        # Almost no wireless writes at all for the no-sharing app.
        assert sum(rows["blackscholes"]) in (0.0, 1.0)
