"""Distributed campaign scaling benchmark (ISSUE 7 acceptance gate).

Measures the wall-clock of one fixed 16-run campaign driven through
:func:`repro.harness.distributed.run_distributed` at 1, 2, and 4 workers,
cold-cache, and asserts the 4-worker sweep beats the 1-worker sweep by at
least **3.5x**.

Workload choice: the scaling lanes run the ``sleep`` runner (every run is
a fixed ``time.sleep``), NOT real simulations. This is deliberate: the
quantity under test is the *orchestration layer* — shard scheduling, RPC
round-trips, work stealing, journal writes — and a sleep workload makes
per-run cost exactly known and machine-independent, so the measured
speedup isolates coordinator overhead instead of re-measuring how many
CPU cores the benchmark box happens to have (CI runners and the dev box
both have too few cores for a 4-way CPU-bound speedup; sims are
process-parallel and would serialize on the cores, hiding orchestration
regressions behind CPU contention). Sleep-mode payloads are a pure
function of the run key, so digest identity across worker counts is
asserted too — the merge order provably cannot leak into results.

Real simulations keep their own teeth here: a small sim-mode lane asserts
the distributed digest is byte-identical to a single-box
:func:`~repro.harness.campaign.run_campaign` of the same spec.

Results land under ``"distributed"`` in BENCH_harness.json; CI re-runs
this file and fails on >20% drift of ``speedup_4x`` against the committed
baseline (same contract as the ``kernel_batched`` gate).
"""

from repro.harness.campaign import CampaignSpec, run_campaign
from repro.harness.distributed import run_distributed
from repro.harness.executor import Executor
from repro.harness.supervisor import RetryPolicy, WorkerSupervisor

#: 8 apps x (Baseline, WiDir) = 16 runs — divides evenly across 4 workers.
_SCALING_APPS = (
    "radiosity",
    "ocean-nc",
    "barnes",
    "water-spa",
    "blackscholes",
    "ferret",
    "fft",
    "volrend",
)
_SLEEP_SECONDS = 0.25
_WORKER_COUNTS = (1, 2, 4)
_SPEEDUP_FLOOR = 3.5


def _spec(name, apps, memops):
    return CampaignSpec(
        name=name, kind="protocols", apps=apps, cores=(16,), memops=memops
    )


def test_bench_distributed_scaling(tmp_path, distributed_metrics):
    spec_apps = _SCALING_APPS
    digests = {}
    bars = {}
    stolen = {}
    for workers in _WORKER_COUNTS:
        report = run_distributed(
            tmp_path / f"w{workers}",
            _spec("bench-dist", spec_apps, 2500),
            workers=workers,
            executor=Executor(
                workers=1, cache_dir=tmp_path / f"cache{workers}",
                use_cache=True,
            ),
            runner="sleep",
            runner_seconds=_SLEEP_SECONDS,
            timeout=120,
        )
        assert report.ok, report.failed
        assert report.completed == len(spec_apps) * 2
        digests[workers] = report.digest
        bars[workers] = report.wall_seconds
        stolen[workers] = report.stolen

    # Merge order provably does not leak into results: every worker count
    # converges to the same digest.
    assert len(set(digests.values())) == 1

    speedup_4x = bars[1] / bars[4]
    print(
        "\ndistributed scaling (16 runs x "
        f"{_SLEEP_SECONDS}s, cold cache):"
    )
    for workers in _WORKER_COUNTS:
        print(
            f"  workers={workers}: {bars[workers]:6.2f}s  "
            f"({bars[1] / bars[workers]:4.2f}x, {stolen[workers]} stolen)"
        )
    assert speedup_4x >= _SPEEDUP_FLOOR, (
        f"4-worker sweep only {speedup_4x:.2f}x vs 1 worker "
        f"(floor {_SPEEDUP_FLOOR}x)"
    )

    distributed_metrics.update(
        {
            "mode": "sleep",
            "runs": len(spec_apps) * 2,
            "runner_seconds": _SLEEP_SECONDS,
            "workers_1_seconds": round(bars[1], 3),
            "workers_2_seconds": round(bars[2], 3),
            "workers_4_seconds": round(bars[4], 3),
            "speedup_2x": round(bars[1] / bars[2], 2),
            "speedup_4x": round(speedup_4x, 2),
            "stolen_4x": stolen[4],
            "digest_identical": True,
        }
    )


def test_bench_distributed_sim_digest_matches_single_box(
    tmp_path, distributed_metrics
):
    """Real simulations: 2-worker distributed == single box, byte for byte."""
    spec = _spec("bench-dist-sim", ("volrend",), 400)
    single = run_campaign(
        tmp_path / "single", spec,
        supervisor=WorkerSupervisor(
            workers=1, retry=RetryPolicy(max_attempts=2, unit=0.0)
        ),
        executor=Executor(
            workers=1, cache_dir=tmp_path / "cache-single", use_cache=True
        ),
    )
    report = run_distributed(
        tmp_path / "dist", spec,
        workers=2,
        executor=Executor(
            workers=1, cache_dir=tmp_path / "cache-dist", use_cache=True
        ),
        timeout=120,
    )
    assert report.ok
    assert report.digest == single.digest
    assert (tmp_path / "dist" / "results.json").read_bytes() == (
        tmp_path / "single" / "results.json"
    ).read_bytes()
    distributed_metrics["sim_digest_identical"] = True
