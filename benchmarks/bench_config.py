"""Single source of truth for benchmark-session scale knobs.

Historically ``conftest.py`` hardcoded its own ``memops=2500`` default while
the kernel microbenchmarks and the CI smoke jobs each carried their own
copies, so the numbers recorded in ``BENCH_harness.json`` could silently
diverge from what the figure benches actually ran. Every bench-session
default now lives here; the environment variables (``REPRO_MEMOPS``,
``REPRO_CORES``, ...) still override at session start.

Keep this module import-light (stdlib only): it is imported by conftest
before the package under test.
"""

#: Memory references per core per run for full benchmark sessions.
#: Shorter runs dilute coherence effects with cold-start misses.
BENCH_MEMOPS = 2500

#: Core count for single-machine benches (the paper's 64-core machine).
BENCH_CORES = 64

#: The fig10 point the kernel end-to-end bench tracks across PRs
#: (64-core radiosity pair; small enough to run every session).
KERNEL_PAIR_MEMOPS = 800

#: Scale knobs for sub-minute smoke benches (CI and the per-session
#: table6 tracker): 16 cores keeps the mesh real but cheap.
SMOKE_CORES = 16
SMOKE_MEMOPS = 400
