"""Section II-C motivation probe.

Paper (64 cores, update-mode model): a shared line accumulates ~21 sharers
on average before eviction, and ~56% of pre-write sharers re-read the line
after a write — the data that motivates update-style wireless sharing.
"""

from repro.harness.motivation import section2c_sharing_probe


def test_bench_motivation_probe(benchmark, bench_apps, bench_memops):
    result = benchmark.pedantic(
        section2c_sharing_probe,
        kwargs=dict(apps=list(bench_apps), num_cores=64, memops=bench_memops),
        rounds=1,
        iterations=1,
    )
    print()
    print(result.text)
    print(f"\npaper: ~21 sharers accumulated, ~0.56 re-read fraction")
    print(f"measured: {result.avg_sharers:.1f} sharers, "
          f"{result.avg_reread:.2f} re-read fraction")
    # Shape assertions: substantial multi-sharer accumulation and a
    # non-trivial re-read fraction (the motivation holds).
    assert result.avg_sharers > 4
    assert result.avg_reread > 0.15
