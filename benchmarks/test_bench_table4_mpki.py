"""Table IV: per-application Baseline L1 MPKI characterization.

The paper's values span 0.13 (blackscholes) to 23.21 (canneal). Synthetic
short runs carry warmup inflation (documented in EXPERIMENTS.md), so the
assertion is on *ordering*: the low-MPKI apps of the paper must also rank
low here.
"""

from repro.harness.figures import table4_mpki_characterization
from repro.workloads.profiles import APP_PROFILES


def test_bench_table4_mpki(benchmark, bench_apps, bench_memops, bench_cores):
    figure = benchmark.pedantic(
        table4_mpki_characterization,
        kwargs=dict(apps=bench_apps, num_cores=bench_cores, memops=bench_memops),
        rounds=1,
        iterations=1,
    )
    print()
    print(figure.text)
    print("\npaper values:", {a: APP_PROFILES[a].paper_mpki for a in bench_apps})
    measured = {row[0]: row[1] for row in figure.rows}
    if "blackscholes" in measured:
        others = [v for app, v in measured.items() if app != "blackscholes"]
        if others:
            assert measured["blackscholes"] <= min(others), (
                "blackscholes must remain the lowest-MPKI application"
            )
