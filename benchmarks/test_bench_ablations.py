"""Ablation benchmarks for the design choices DESIGN.md calls out.

Not paper artifacts — these quantify the implementation's own knobs:

* UpdateCount self-invalidation threshold (2-bit vs 3-bit counter);
* jamming address precision (exact vs partial-address false positives);
* wireless payload cycles (channel bandwidth);
* eviction-notification policy is exercised implicitly by the protocol
  tests (the paper notifies on every eviction "for simplicity").
"""

from dataclasses import replace

from repro.config.presets import widir_config
from repro.config.system import DirectoryConfig, WirelessConfig
from repro.harness.runner import run_app
from repro.stats.report import format_table

APP = "radiosity"
CORES = 32
MEMOPS = 800


def test_bench_ablation_update_threshold(benchmark):
    def sweep():
        rows = []
        for threshold in (1, 3, 7, 15):
            config = widir_config(num_cores=CORES)
            config = replace(
                config,
                directory=replace(config.directory, update_count_threshold=threshold),
            )
            result = run_app(APP, config, MEMOPS)
            rows.append(
                [
                    threshold,
                    result.cycles,
                    result.stats_counters.get("dir.total.w_joins", 0),
                    sum(
                        v
                        for k, v in result.stats_counters.items()
                        if "self_invalid" in k
                    ),
                ]
            )
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print()
    print(
        format_table(
            ["UpdateCount threshold", "cycles", "w_joins", "self-invalidations"],
            rows,
            title="Ablation: self-invalidation aggressiveness",
        )
    )
    by_threshold = {row[0]: row for row in rows}
    # A hair-trigger counter must self-invalidate far more than a lax one.
    assert by_threshold[1][3] >= by_threshold[15][3]


def test_bench_ablation_jamming_precision(benchmark):
    def sweep():
        rows = []
        for bits, label in ((None, "exact"), (8, "8-bit match"), (4, "4-bit match")):
            config = widir_config(num_cores=CORES)
            from repro.system import Manycore  # local to keep setup together
            from repro.cpu.core import Core
            from repro.cpu.sync import PhaseBarrier
            from repro.workloads.generator import build_traces
            from repro.workloads.profiles import APP_PROFILES

            machine = Manycore(config)
            if machine.wireless is not None:
                machine.wireless.jam_address_bits = bits
            barrier = PhaseBarrier(CORES)
            traces = build_traces(APP_PROFILES[APP], CORES, MEMOPS, 0)
            cores = [
                Core(machine.sim, n, machine.caches[n], config, machine.stats, barrier)
                for n in range(CORES)
            ]
            for n, core in enumerate(cores):
                core.run_trace(traces[n])
            machine.run(max_events=600_000_000)
            rows.append(
                [
                    label,
                    machine.sim.now,
                    machine.stats.get_counter("wnoc.jams"),
                ]
            )
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print()
    print(
        format_table(
            ["jam matching", "cycles", "jam NACKs"],
            rows,
            title="Ablation: selective-jamming address precision",
        )
    )
    by_label = {row[0]: row for row in rows}
    # Coarser matching can only produce as many or more jam NACKs.
    assert by_label["4-bit match"][2] >= by_label["exact"][2]


def test_bench_ablation_wireless_bandwidth(benchmark):
    def sweep():
        rows = []
        for payload in (2, 4, 8):
            config = widir_config(num_cores=CORES)
            config = replace(
                config,
                wireless=replace(config.wireless, data_transfer_cycles=payload),
            )
            result = run_app(APP, config, MEMOPS)
            rows.append([payload, result.cycles, result.collision_probability])
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print()
    print(
        format_table(
            ["payload cycles", "cycles", "collision prob"],
            rows,
            title="Ablation: wireless channel bandwidth (payload cycles)",
        )
    )
    # Slower frames cannot make the application faster.
    assert rows[-1][1] >= rows[0][1] * 0.95
