"""Cross-MAC comparison benchmark: every wireless MAC backend on WiDir.

Regenerates the MAC comparison figure (``repro figure render macs``) at
session scale and records each MAC's geomean execution-time ratio vs the
paper's BRS discipline under ``"mac"`` in BENCH_harness.json. CI re-runs
the bench at smoke scale and drift-gates the ratios against the committed
baseline — cycle counts are deterministic, so the ratios only move when a
MAC's semantics (or the channel seam they share) change.

Shape assertions follow the reproduction contract (who wins, not absolute
cycles): BRS is the reference (ratio exactly 1.0); every rival MAC must
land in a sane band around it — the disciplines trade latency for
collision-freedom or bandwidth partitioning, they do not melt down.
"""

import time

import pytest

from repro.harness.figures import figure_mac_comparison
from repro.wireless.mac import DEFAULT_MAC, mac_names


def test_bench_mac_comparison(bench_apps, bench_cores, bench_memops, mac_metrics):
    start = time.perf_counter()
    figure = figure_mac_comparison(
        apps=bench_apps, num_cores=bench_cores, memops=bench_memops
    )
    wall = time.perf_counter() - start
    print()
    print(figure.text)

    assert not figure.missing, figure.missing
    macs = figure.headers[1:]
    assert set(macs) == set(mac_names())
    assert macs[0] == DEFAULT_MAC  # cycles normalized to brs

    geomean = figure.rows[-1]
    assert geomean[0] == "geomean"
    ratios = dict(zip(macs, geomean[1:]))
    assert ratios[DEFAULT_MAC] == pytest.approx(1.0)
    for mac, ratio in ratios.items():
        # A discipline that halves or doubles execution time at these
        # parameters is a bug, not a trade-off.
        assert 0.5 < ratio < 2.0, (mac, ratio)

    mac_metrics.update(
        {f"geomean_{mac}": round(ratio, 4) for mac, ratio in ratios.items()}
    )
    mac_metrics["apps"] = len(bench_apps)
    mac_metrics["cores"] = bench_cores
    mac_metrics["memops"] = bench_memops
    mac_metrics["wall_seconds"] = round(wall, 3)
