"""Observability-layer overhead benchmark.

The tracing subsystem (:mod:`repro.obs`) promises two things:

* **disabled** (the default) it costs one attribute load + ``is None``
  test per hook site — indistinguishable from the pre-instrumentation
  simulator within measurement noise;
* **enabled** it stays cheap enough to leave on for debugging sessions:
  under 25% wall-clock overhead on a real coherence-heavy run (the bar
  is relative to the batched-kernel baseline; see MAX_ENABLED_OVERHEAD).

This module measures both on an identical in-process run (same app, same
seeds, same machine — tracing is digest-neutral so the simulated work is
bit-identical) and records the ratios under ``"obs"`` in
``BENCH_harness.json``.

Timing methodology (same as the kernel microbenchmarks): the enabled and
disabled variants run in strictly alternating rounds and each side keeps
its best round, so background machine noise hits both sides equally. The
"disabled overhead" bound is checked as an A/B split of *identical*
disabled runs — the hooks cannot be compiled out, so the honest claim is
that two disabled populations are statistically indistinguishable at the
3% level, which bounds whatever the dormant hooks cost from above.
"""

import gc
import time
from dataclasses import replace

from repro.config.presets import widir_config
from repro.config.system import ObsConfig
from repro.harness.runner import run_app

_APP = "radiosity"
_CORES = 16
#: Long enough that fixed per-run noise (timer granularity, allocator
#: jitter) stays well under the A/B noise bar now that the batched kernel
#: roughly halved the per-reference cost of the timed region.
_MEMOPS = 8000
_ROUNDS = 6

#: Acceptance bars (see docs/OBSERVABILITY.md). The enabled bar is a
#: *relative* bound, so it had to move when the batched epoch kernel
#: cut the untraced denominator: the absolute hook cost is unchanged
#: (~35 ms on this workload, heap or batched), but against the faster
#: batched run it reads ~x1.16 where the heap kernel reads ~x1.07.
MAX_ENABLED_OVERHEAD = 1.25
#: Standalone on bare metal this measures x1.00, but the two identical
#: disabled populations carry the box's floor jitter: accumulated
#: allocator/cache state inside a full session (~2%) plus, on shared-vCPU
#: virtualized runners, steal-time bursts measured at 4-6% even for
#: best-of-N minima. The bar carries 8% headroom for that floor. Real
#: dormant-hook growth (any added work per hook site) lands far above it —
#: the *enabled* path costs ~17% on this workload, so even a fractional
#: always-on hook cost clears 8% decisively.
MAX_DISABLED_NOISE = 1.08


def _timed_run(config):
    # Isolate each timed run from the previous one's garbage: a traced run
    # allocates span/event records whose collection would otherwise be paid
    # by whichever run happens to follow it in the interleave. The cyclic
    # collector is held off for the timed region so its pauses land in
    # neither population.
    gc.collect()
    gc.disable()
    try:
        start = time.perf_counter()
        result = run_app(_APP, config, _MEMOPS, trace_seed=5)
        return time.perf_counter() - start, result
    finally:
        gc.enable()


def test_obs_overhead(obs_metrics):
    base_cfg = widir_config(num_cores=_CORES, seed=42)
    off_cfg = replace(base_cfg, obs=ObsConfig(enabled=False))
    on_cfg = replace(base_cfg, obs=ObsConfig(enabled=True))

    # Warm-up: populate the trace-synthesis memo and import caches so the
    # first measured round is not paying one-time costs.
    _timed_run(off_cfg)

    best = {"off_a": float("inf"), "off_b": float("inf"), "on": float("inf")}
    reference_cycles = None
    # The order rotates every round so no variant owns a fixed position in
    # the interleave — a fixed order lets position-correlated machine noise
    # (turbo ramps, timer ticks) masquerade as a population difference.
    order = [("off_a", off_cfg), ("on", on_cfg), ("off_b", off_cfg)]
    for _ in range(_ROUNDS):
        for key, cfg in order:
            seconds, result = _timed_run(cfg)
            best[key] = min(best[key], seconds)
            if reference_cycles is None:
                reference_cycles = result.cycles
            # Tracing must not change the simulation (digest neutrality).
            assert result.cycles == reference_cycles
        order.append(order.pop(0))

    disabled = min(best["off_a"], best["off_b"])
    enabled_ratio = best["on"] / disabled
    noise_ratio = max(best["off_a"], best["off_b"]) / disabled

    obs_metrics.update(
        {
            "app": _APP,
            "cores": _CORES,
            "memops": _MEMOPS,
            "rounds": _ROUNDS,
            "disabled_seconds": round(disabled, 4),
            "enabled_seconds": round(best["on"], 4),
            "enabled_overhead_ratio": round(enabled_ratio, 4),
            "disabled_noise_ratio": round(noise_ratio, 4),
            "bars": {
                "enabled_max": MAX_ENABLED_OVERHEAD,
                "disabled_max": MAX_DISABLED_NOISE,
            },
        }
    )
    print(
        f"\nobs overhead: disabled {disabled:.3f}s, enabled {best['on']:.3f}s "
        f"(x{enabled_ratio:.3f}); disabled A/B noise x{noise_ratio:.3f}"
    )
    assert enabled_ratio < MAX_ENABLED_OVERHEAD, (
        f"tracing enabled costs x{enabled_ratio:.3f} "
        f"(bar: x{MAX_ENABLED_OVERHEAD})"
    )
    assert noise_ratio < MAX_DISABLED_NOISE, (
        f"disabled A/B populations differ by x{noise_ratio:.3f} "
        f"(bar: x{MAX_DISABLED_NOISE}); dormant hooks may have grown a cost"
    )
