"""Figure 9: energy by component, normalized to Baseline.

Paper (64 cores): Baseline spends ~60% of energy in cores, ~5% in L1s,
~20% in L2+directory, ~15% in the wired NoC. WiDir consumes ~21% less
energy on average, and the WNoC contributes only ~5.9% of WiDir's total.
"""

from repro.harness.figures import figure9_energy


def test_bench_fig9_energy(benchmark, bench_apps, bench_memops, bench_cores):
    figure = benchmark.pedantic(
        figure9_energy,
        kwargs=dict(apps=bench_apps, num_cores=bench_cores, memops=bench_memops),
        rounds=1,
        iterations=1,
    )
    print()
    print(figure.text)
    print(f"\npaper: WiDir/Baseline energy ~0.79; WNoC share ~5.9%")
    print(f"measured mean WNoC share of WiDir energy: {figure.mean_wnoc_share:.1%}")
    geomean = figure.rows[-1][-2]
    # Shape: WiDir energy tracks its execution time (dominated by static
    # power x runtime), and the WNoC share stays modest.
    assert geomean < 1.1
    assert figure.mean_wnoc_share < 0.25, (
        f"WNoC energy share should be modest, got {figure.mean_wnoc_share:.1%}"
    )
    # Baseline core energy dominates, as in the paper's breakdown.
    first_app_core_share = figure.rows[0][1]
    assert first_app_core_share > 0.35
