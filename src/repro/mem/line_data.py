"""Copy-on-write cache-line data.

A cache line's words travel a lot: directory fill -> DataE payload -> L1
install -> FwdData payload -> WBData payload -> LLC -> writeback. The seed
implementation defensively ``dict()``-copied at every hop, allocating a
fresh dict per message even though almost none of the copies are ever
written. :class:`LineData` replaces those copies with O(1) *snapshots*:

* ``snapshot()`` returns a new :class:`LineData` that shares the underlying
  word dict and marks **both** wrappers shared;
* the first mutation through a shared wrapper copies the dict privately
  (copy-on-write), so holders of other snapshots never observe the change;
* reads go straight to the shared dict with no indirection beyond one
  attribute load.

Value semantics are therefore identical to eager copying — which the
golden-digest tests lock in — while the common case (a data payload that is
installed, read, and dropped) allocates nothing per hop.

The wrapper intentionally supports the mapping protocol subset the
simulator and its tests use (``get``/``[]``/``in``/``len``/iteration/
``items``/``keys``/``values``/equality with plain dicts), so existing call
sites and assertions keep working; ``dict(line_data)`` still materializes
a plain dict when one is genuinely needed.
"""

from __future__ import annotations

from typing import Dict, Iterator, Mapping, Optional, Union

LineWords = Dict[int, int]


class LineData:
    """One cache line's words (word index -> value) with COW snapshots."""

    __slots__ = ("_words", "_shared")

    def __init__(self, words: Optional[Union[Mapping, "LineData"]] = None) -> None:
        if words is None:
            self._words: LineWords = {}
            self._shared = False
        elif isinstance(words, LineData):
            # Constructing from another LineData is a snapshot.
            words._shared = True
            self._words = words._words
            self._shared = True
        else:
            self._words = dict(words)
            self._shared = False

    # ---------------------------------------------------------- snapshots

    def snapshot(self) -> "LineData":
        """An O(1) immutable-until-written view sharing this line's words."""
        self._shared = True
        clone = LineData.__new__(LineData)
        clone._words = self._words
        clone._shared = True
        return clone

    def _own(self) -> None:
        """Ensure this wrapper exclusively owns its dict (COW trigger)."""
        if self._shared:
            self._words = dict(self._words)
            self._shared = False

    # ------------------------------------------------------------- writes

    def __setitem__(self, word: int, value: int) -> None:
        if self._shared:
            self._words = dict(self._words)
            self._shared = False
        self._words[word] = value

    def __delitem__(self, word: int) -> None:
        self._own()
        del self._words[word]

    def update(self, other: Union[Mapping, "LineData"]) -> None:
        self._own()
        if isinstance(other, LineData):
            self._words.update(other._words)
        else:
            self._words.update(other)

    def clear(self) -> None:
        self._own()
        self._words.clear()

    # -------------------------------------------------------------- reads

    def get(self, word: int, default: Optional[int] = None) -> Optional[int]:
        return self._words.get(word, default)

    def __getitem__(self, word: int) -> int:
        return self._words[word]

    def __contains__(self, word: int) -> bool:
        return word in self._words

    def __len__(self) -> int:
        return len(self._words)

    def __bool__(self) -> bool:
        return bool(self._words)

    def __iter__(self) -> Iterator[int]:
        return iter(self._words)

    def items(self):
        return self._words.items()

    def keys(self):
        return self._words.keys()

    def values(self):
        return self._words.values()

    def to_dict(self) -> LineWords:
        """A plain-dict copy (serialization boundaries only)."""
        return dict(self._words)

    # ----------------------------------------------------------- equality

    def __eq__(self, other: object) -> bool:
        if isinstance(other, LineData):
            return self._words == other._words
        if isinstance(other, dict):
            return self._words == other
        return NotImplemented

    def __ne__(self, other: object) -> bool:
        result = self.__eq__(other)
        if result is NotImplemented:
            return result
        return not result

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        flag = "~" if self._shared else ""
        return f"LineData{flag}({self._words!r})"


def line_data(words: Optional[Union[Mapping, LineData]] = None) -> LineData:
    """Coerce ``words`` into a :class:`LineData` without needless copying.

    ``LineData`` inputs become O(1) snapshots; mappings are copied once;
    ``None`` yields an empty line. This is the single conversion point the
    protocol uses when accepting externally supplied data (message payloads
    built by tests may still carry plain dicts).
    """
    if isinstance(words, LineData):
        return words.snapshot()
    return LineData(words)
