"""Miss Status Holding Registers.

One MSHR tracks one outstanding line-granularity transaction from a private
cache (GetS/GetX in flight). Secondary misses to the same line coalesce onto
the existing register instead of issuing duplicate requests.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional


class Mshr:
    """One outstanding miss: the line, the request kind, and waiters."""

    __slots__ = (
        "line",
        "is_write",
        "issued_at",
        "waiters",
        "tone_pending",
        "pinned_line",
        "request_serial",
    )

    def __init__(self, line: int, is_write: bool, issued_at: int) -> None:
        self.line = line
        self.is_write = is_write
        self.issued_at = issued_at
        #: Serial of the most recent GetS/GetX sent for this miss. Nacks
        #: echo it so a stale bounce (for a superseded request) is ignored
        #: instead of spawning a duplicate request.
        self.request_serial = 0
        #: Callbacks run when the miss completes (core wakeups).
        self.waiters: List[Callable[[], None]] = []
        #: Set when a BrWirUpgr was heard while this miss was outstanding:
        #: the node's ToneAck tone drops when the miss completes (or bounces).
        self.tone_pending = False
        #: Set when this is an upgrade of a resident line, which is pinned
        #: against local eviction until the transaction completes.
        self.pinned_line = False

    def add_waiter(self, callback: Callable[[], None]) -> None:
        self.waiters.append(callback)

    def complete(self) -> None:
        """Wake every coalesced waiter in arrival order."""
        waiters, self.waiters = self.waiters, []
        for callback in waiters:
            callback()


class MshrFile:
    """Fixed-capacity pool of :class:`Mshr` entries for one private cache."""

    def __init__(self, capacity: int) -> None:
        self.capacity = capacity
        self._entries: Dict[int, Mshr] = {}

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, line: int) -> bool:
        return line in self._entries

    @property
    def full(self) -> bool:
        return len(self._entries) >= self.capacity

    def get(self, line: int) -> Optional[Mshr]:
        return self._entries.get(line)

    def allocate(self, line: int, is_write: bool, now: int) -> Mshr:
        """Create a new entry; the caller must have checked :attr:`full`."""
        assert line not in self._entries, f"MSHR for 0x{line:x} already allocated"
        entry = Mshr(line, is_write, now)
        self._entries[line] = entry
        return entry

    def release(self, line: int) -> Mshr:
        """Remove and return the entry for a completed miss."""
        return self._entries.pop(line)

    def outstanding_lines(self) -> List[int]:
        return list(self._entries)
