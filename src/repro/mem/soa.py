"""Struct-of-arrays cache metadata: tags, states, LRU, pins as numpy planes.

The object-based :class:`~repro.mem.cache_array.CacheArray` stores one
:class:`~repro.mem.cache_array.CacheLine` per resident line; every tag
resolution walks Python objects. This module keeps the same *metadata* in
preallocated numpy arrays indexed ``(node, set, way)`` so whole-machine
queries (occupancy maps, state censuses, victim scans for the batched
kernel) are single vectorized expressions, while per-line semantics —
lookup, true-LRU touch, pinned-way victim selection, insert/remove —
mirror the object array operation for operation. The equivalence is
locked by hypothesis property tests (``tests/test_soa_equivalence.py``)
that drive both representations with identical mutation sequences.

Data words stay out of the SoA plane deliberately: they are sparse dicts
whose values only matter to functional checks, not to any vectorized
consumer. :class:`CacheLineView` is the thin object facade over one way
(the "existing object API kept as a view" half of the design), used by
the verify/obs subsystems and tests that want attribute access.

LRU is a monotonic stamp per way: a touch assigns the next stamp, so
ascending stamps reproduce exactly the insertion order of the dict-based
array (delete + re-insert moves a key to the end; here it takes the
newest stamp). The victim is the stamp-minimal unpinned way — the same
line the object array's "first unpinned in iteration order" picks.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.coherence.states import EXCLUSIVE, INVALID, MODIFIED, SHARED, WIRELESS
from repro.engine.errors import SimulationError

#: Stable state codes for the int8 state plane (shared with the directory
#: SoA; directory states reuse the same letters).
STATE_CODES = {INVALID: 0, SHARED: 1, EXCLUSIVE: 2, MODIFIED: 3, WIRELESS: 4}
STATE_NAMES = {code: name for name, code in STATE_CODES.items()}

#: Tag value marking an empty way.
NO_TAG = -1


class CacheLineView:
    """Attribute facade over one ``(node, set, way)`` slot of the SoA.

    Reads and writes go straight to the arrays — the view carries no
    state of its own, so any number of views of the same slot agree.
    """

    __slots__ = ("_soa", "_node", "_set", "_way")

    def __init__(self, soa: "CacheMetaSoA", node: int, set_index: int, way: int):
        self._soa = soa
        self._node = node
        self._set = set_index
        self._way = way

    @property
    def line(self) -> int:
        return int(self._soa.tags[self._node, self._set, self._way])

    @property
    def state(self) -> str:
        return STATE_NAMES[int(self._soa.states[self._node, self._set, self._way])]

    @state.setter
    def state(self, value: str) -> None:
        self._soa.states[self._node, self._set, self._way] = STATE_CODES[value]

    @property
    def dirty(self) -> bool:
        return bool(self._soa.dirty[self._node, self._set, self._way])

    @dirty.setter
    def dirty(self, value: bool) -> None:
        self._soa.dirty[self._node, self._set, self._way] = bool(value)

    @property
    def update_count(self) -> int:
        return int(self._soa.update_counts[self._node, self._set, self._way])

    @update_count.setter
    def update_count(self, value: int) -> None:
        self._soa.update_counts[self._node, self._set, self._way] = value

    @property
    def pinned(self) -> int:
        return int(self._soa.pins[self._node, self._set, self._way])

    @pinned.setter
    def pinned(self, value: int) -> None:
        self._soa.pins[self._node, self._set, self._way] = value

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        flag = "D" if self.dirty else "-"
        return f"CacheLineView(0x{self.line:x}, {self.state}{flag})"


class CacheMetaSoA:
    """Per-node set-associative cache metadata in ``(node, set, way)`` planes.

    Semantics mirror :class:`~repro.mem.cache_array.CacheArray`: true-LRU
    via stamps, pinned ways skipped during victim selection, explicit
    insert-after-evict discipline.
    """

    def __init__(self, num_nodes: int, num_sets: int, associativity: int) -> None:
        if num_sets <= 0 or num_sets & (num_sets - 1):
            raise SimulationError(f"num_sets must be a power of two, got {num_sets}")
        if associativity < 1:
            raise SimulationError("associativity must be >= 1")
        if num_nodes < 1:
            raise SimulationError("num_nodes must be >= 1")
        self.num_nodes = num_nodes
        self.num_sets = num_sets
        self.associativity = associativity
        self._mask = num_sets - 1
        shape = (num_nodes, num_sets, associativity)
        self.tags = np.full(shape, NO_TAG, dtype=np.int64)
        self.states = np.zeros(shape, dtype=np.int8)
        self.dirty = np.zeros(shape, dtype=np.bool_)
        self.update_counts = np.zeros(shape, dtype=np.int16)
        self.pins = np.zeros(shape, dtype=np.int16)
        #: LRU stamps; valid only where ``tags != NO_TAG``. Monotonic
        #: across the whole structure (one counter suffices: only relative
        #: order within a set matters).
        self.stamps = np.zeros(shape, dtype=np.int64)
        self._clock = 0
        self._resident = 0

    # ----------------------------------------------------------- primitives

    def __len__(self) -> int:
        return self._resident

    def set_index(self, line: int) -> int:
        return line & self._mask

    def _way_of(self, node: int, set_index: int, line: int) -> int:
        row = self.tags[node, set_index]
        hits = np.nonzero(row == line)[0]
        return int(hits[0]) if hits.size else -1

    def lookup(self, node: int, line: int, touch: bool = True) -> int:
        """Way index of ``line`` in its set at ``node``, or -1; LRU-touches
        the way unless ``touch=False`` (matching ``CacheArray.lookup``)."""
        set_index = line & self._mask
        way = self._way_of(node, set_index, line)
        if way >= 0 and touch:
            self._clock += 1
            self.stamps[node, set_index, way] = self._clock
        return way

    def contains(self, node: int, line: int) -> bool:
        """Resident and not in I — mirrors ``line in CacheArray``."""
        set_index = line & self._mask
        way = self._way_of(node, set_index, line)
        return way >= 0 and int(self.states[node, set_index, way]) != STATE_CODES[INVALID]

    def set_occupancy(self, node: int, line: int) -> int:
        return int((self.tags[node, line & self._mask] != NO_TAG).sum())

    def needs_victim(self, node: int, line: int) -> bool:
        set_index = line & self._mask
        row = self.tags[node, set_index]
        return not (row == line).any() and not (row == NO_TAG).any()

    def victim_for(self, node: int, line: int) -> Optional[int]:
        """Line address of the LRU unpinned way that must leave, or None.

        Raises when every way is pinned — the same contract as
        ``CacheArray.victim_for``.
        """
        if not self.needs_victim(node, line):
            return None
        set_index = line & self._mask
        pins = self.pins[node, set_index]
        stamps = self.stamps[node, set_index]
        unpinned = np.nonzero(pins == 0)[0]
        if not unpinned.size:
            raise SimulationError("all ways pinned; cannot pick an eviction victim")
        way = int(unpinned[np.argmin(stamps[unpinned])])
        return int(self.tags[node, set_index, way])

    def insert(self, node: int, line: int, state: str) -> int:
        """Install ``line``; returns its way. Caller evicts a victim first."""
        set_index = line & self._mask
        row = self.tags[node, set_index]
        if (row == line).any():
            raise SimulationError(f"line 0x{line:x} already resident")
        empty = np.nonzero(row == NO_TAG)[0]
        if not empty.size:
            raise SimulationError(
                f"set for line 0x{line:x} is full; evict a victim before insert"
            )
        way = int(empty[0])
        self._clock += 1
        self.tags[node, set_index, way] = line
        self.states[node, set_index, way] = STATE_CODES[state]
        self.dirty[node, set_index, way] = False
        self.update_counts[node, set_index, way] = 0
        self.pins[node, set_index, way] = 0
        self.stamps[node, set_index, way] = self._clock
        self._resident += 1
        return way

    def remove(self, node: int, line: int) -> None:
        set_index = line & self._mask
        way = self._way_of(node, set_index, line)
        if way < 0:
            raise SimulationError(f"line 0x{line:x} is not resident")
        self.tags[node, set_index, way] = NO_TAG
        self.states[node, set_index, way] = STATE_CODES[INVALID]
        self.dirty[node, set_index, way] = False
        self.update_counts[node, set_index, way] = 0
        self.pins[node, set_index, way] = 0
        self._resident -= 1

    # ---------------------------------------------------------------- views

    def view(self, node: int, line: int) -> Optional[CacheLineView]:
        """Object facade for a resident line (no LRU touch)."""
        set_index = line & self._mask
        way = self._way_of(node, set_index, line)
        if way < 0:
            return None
        return CacheLineView(self, node, set_index, way)

    def resident_lines(self, node: int) -> List[int]:
        """Tags resident at ``node``, ascending (a vectorized census)."""
        tags = self.tags[node]
        return sorted(int(t) for t in tags[tags != NO_TAG])

    # ----------------------------------------------------- vectorized bulk

    def state_census(self) -> dict:
        """Whole-machine {state name: resident count} in one pass."""
        occupied = self.tags != NO_TAG
        census = {}
        for name, code in STATE_CODES.items():
            count = int(((self.states == code) & occupied).sum())
            if count:
                census[name] = count
        return census

    def occupancy_by_node(self) -> np.ndarray:
        """Resident lines per node as an int64 vector."""
        return (self.tags != NO_TAG).sum(axis=(1, 2)).astype(np.int64)
