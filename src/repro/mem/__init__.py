"""Memory-hierarchy substrate.

The pieces the coherence controllers are built on: word/line addressing and
home-slice mapping (:mod:`repro.mem.address`), the set-associative tag/data
array with LRU replacement (:mod:`repro.mem.cache_array`), miss-status holding
registers (:mod:`repro.mem.mshr`), the store/write buffer
(:mod:`repro.mem.write_buffer`), and the off-chip memory controllers
(:mod:`repro.mem.memory_controller`).
"""

from repro.mem.address import AddressMap
from repro.mem.cache_array import CacheArray, CacheLine
from repro.mem.memory_controller import MainMemory, MemoryController
from repro.mem.mshr import Mshr, MshrFile
from repro.mem.write_buffer import WriteBuffer

__all__ = [
    "AddressMap",
    "CacheArray",
    "CacheLine",
    "MainMemory",
    "MemoryController",
    "Mshr",
    "MshrFile",
    "WriteBuffer",
]
