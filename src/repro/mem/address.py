"""Byte-address decomposition and home-node mapping.

The shared L2 (and its directory) is physically distributed: one bank per
tile, line-interleaved. ``AddressMap`` centralizes every address calculation
so the line size appears in exactly one place.
"""

from __future__ import annotations

from repro.engine.errors import ConfigurationError


class AddressMap:
    """Translates byte addresses to lines, words, homes, and controllers.

    Parameters
    ----------
    line_bytes:
        Cache line size; must be a power of two.
    num_cores:
        Tile count; L2 banks (and directory slices) are line-interleaved
        across all tiles.
    num_memory_controllers:
        Off-chip channels; lines are interleaved across them as well.
    """

    __slots__ = ("line_bytes", "num_cores", "num_memory_controllers", "_line_shift")

    WORD_BYTES = 8  # the wireless update granularity: one 64-bit word

    def __init__(
        self, line_bytes: int, num_cores: int, num_memory_controllers: int = 4
    ) -> None:
        if line_bytes <= 0 or line_bytes & (line_bytes - 1):
            raise ConfigurationError(f"line size must be a power of two, got {line_bytes}")
        self.line_bytes = line_bytes
        self.num_cores = num_cores
        self.num_memory_controllers = num_memory_controllers
        self._line_shift = line_bytes.bit_length() - 1

    def line_of(self, address: int) -> int:
        """Line address (byte address with offset bits dropped)."""
        return address >> self._line_shift

    def base_of(self, line: int) -> int:
        """First byte address of a line."""
        return line << self._line_shift

    def offset_of(self, address: int) -> int:
        """Byte offset within the line."""
        return address & (self.line_bytes - 1)

    def word_of(self, address: int) -> int:
        """Word index within the line (wireless updates move one word)."""
        return self.offset_of(address) // self.WORD_BYTES

    def words_per_line(self) -> int:
        return self.line_bytes // self.WORD_BYTES

    def home_of(self, line: int) -> int:
        """Tile whose L2 bank / directory slice owns this line.

        The home is a *hash* of the line address, not plain modulo
        interleaving: strided allocations (every core's ``i``-th private
        page line) would otherwise all map to one home slice — and to one
        LLC set within it — producing recall storms that no real design
        exhibits. Commercial LLCs hash the slice selection for exactly this
        reason.
        """
        h = line ^ (line >> 7) ^ (line >> 13)
        return ((h * 0x9E3779B1) >> 4) % self.num_cores

    def controller_of(self, line: int) -> int:
        """Off-chip memory controller serving this line."""
        h = line ^ (line >> 9)
        return h % self.num_memory_controllers
