"""Set-associative cache array with true-LRU replacement.

This models the tag/data array only; all coherence decisions live in the
controllers. Lines carry actual word values (a dict of word-index -> int),
which lets the test suite verify *functional* coherence — a read really does
observe the most recent write — rather than just counting events.
"""

from __future__ import annotations

from typing import Dict, Iterator, Optional

from repro.engine.errors import SimulationError


class CacheLine:
    """One resident line: coherence state, data words, WiDir metadata."""

    __slots__ = ("line", "state", "dirty", "data", "update_count", "pinned")

    def __init__(self, line: int, state: str) -> None:
        self.line = line
        self.state = state
        self.dirty = False
        #: Word index -> 64-bit value. Sparse: untouched words are implicit 0.
        self.data: Dict[int, int] = {}
        #: WiDir UpdateCount (2-bit saturating counter in hardware).
        self.update_count = 0
        #: Non-zero while the line must not be evicted (RMW in flight or a
        #: wireless write pending in the transceiver). Counts nested pins.
        self.pinned = 0

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        flag = "D" if self.dirty else "-"
        return f"CacheLine(0x{self.line:x}, {self.state}{flag})"


class CacheArray:
    """Tag/data array: ``num_sets`` sets of ``associativity`` ways, true LRU.

    Each set is a plain insertion-ordered dict from line address to
    :class:`CacheLine`, most-recently-used last (an LRU touch deletes and
    re-inserts the key, which moves it to the end — the same ordering an
    ``OrderedDict.move_to_end`` gives, without the heavier per-set object).
    ``Pinned`` lines (RMW in flight) are skipped when choosing a victim.
    """

    def __init__(self, num_sets: int, associativity: int) -> None:
        if num_sets <= 0 or num_sets & (num_sets - 1):
            raise SimulationError(f"num_sets must be a power of two, got {num_sets}")
        if associativity < 1:
            raise SimulationError("associativity must be >= 1")
        self.num_sets = num_sets
        self.associativity = associativity
        self._mask = num_sets - 1
        self._sets: list[Dict[int, CacheLine]] = [{} for _ in range(num_sets)]
        self._resident = 0

    def _set_of(self, line: int) -> Dict[int, CacheLine]:
        return self._sets[line & self._mask]

    def __len__(self) -> int:
        return self._resident

    def __contains__(self, line: int) -> bool:
        entry = self._set_of(line).get(line)
        return entry is not None and entry.state != "I"

    def lookup(self, line: int, touch: bool = True) -> Optional[CacheLine]:
        """Return the resident line, updating LRU order unless ``touch=False``.

        ``_set_of`` is inlined: this is the single most-called method of the
        array (every load, store, and protocol message resolves tags here).
        """
        cache_set = self._sets[line & self._mask]
        entry = cache_set.get(line)
        if entry is None:
            return None
        if touch:
            # LRU touch: delete + re-insert moves the key to the end of the
            # insertion order (MRU position).
            del cache_set[line]
            cache_set[line] = entry
        return entry

    def needs_victim(self, line: int) -> bool:
        """True if inserting ``line`` requires evicting another line first."""
        cache_set = self._set_of(line)
        return line not in cache_set and len(cache_set) >= self.associativity

    def victim_for(self, line: int) -> Optional[CacheLine]:
        """The LRU non-pinned line that must leave to make room for ``line``.

        Returns None when no eviction is needed. Raises if every way in the
        set is pinned (the controllers bound pinning to one line per core, so
        this can only happen with associativity 1 under an RMW — a
        configuration the controllers reject).
        """
        if not self.needs_victim(line):
            return None
        for candidate in self._set_of(line).values():  # LRU order: oldest first
            if not candidate.pinned:
                return candidate
        raise SimulationError("all ways pinned; cannot pick an eviction victim")

    def insert(self, line: int, state: str) -> CacheLine:
        """Install ``line``; the caller must already have evicted a victim."""
        cache_set = self._set_of(line)
        if line in cache_set:
            raise SimulationError(f"line 0x{line:x} already resident")
        if len(cache_set) >= self.associativity:
            raise SimulationError(
                f"set for line 0x{line:x} is full; evict a victim before insert"
            )
        entry = CacheLine(line, state)
        cache_set[line] = entry
        self._resident += 1
        return entry

    def remove(self, line: int) -> CacheLine:
        """Evict ``line`` and return its final contents."""
        cache_set = self._set_of(line)
        entry = cache_set.pop(line, None)
        if entry is None:
            raise SimulationError(f"line 0x{line:x} is not resident")
        self._resident -= 1
        return entry

    def ways_of(self, line: int) -> Iterator[CacheLine]:
        """Resident lines in the set ``line`` maps to, LRU first."""
        return iter(list(self._set_of(line).values()))

    def lines(self) -> Iterator[CacheLine]:
        """Iterate over every resident line (tests and invariant checkers)."""
        for cache_set in self._sets:
            yield from cache_set.values()

    def set_occupancy(self, line: int) -> int:
        """Number of resident ways in the set ``line`` maps to."""
        return len(self._set_of(line))
