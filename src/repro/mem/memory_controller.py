"""Off-chip memory: functional backing store plus timing controllers.

``MainMemory`` is the authoritative word store the whole machine bottoms out
in; ``MemoryController`` adds the Table III 80-cycle round trip and a simple
bank-occupancy queue so bursts of misses serialize realistically.
"""

from __future__ import annotations

from typing import Callable, Dict

from repro.engine.simulator import Simulator
from repro.stats.collectors import StatsRegistry


class MainMemory:
    """Flat word-addressable backing store (line -> word index -> value)."""

    def __init__(self) -> None:
        self._lines: Dict[int, Dict[int, int]] = {}

    def read_line(self, line: int) -> Dict[int, int]:
        """Return a *copy* of the line's words (missing words are 0)."""
        return dict(self._lines.get(line, {}))

    def write_line(self, line: int, data: Dict[int, int]) -> None:
        """Write back a full line image."""
        if data:
            self._lines[line] = dict(data)
        else:
            self._lines.pop(line, None)

    def read_word(self, line: int, word: int) -> int:
        return self._lines.get(line, {}).get(word, 0)

    def write_word(self, line: int, word: int, value: int) -> None:
        self._lines.setdefault(line, {})[word] = value


class MemoryController:
    """One off-chip channel: fixed round trip plus FIFO bank occupancy.

    A request issued while the channel is busy waits for every earlier
    request; this first-order queueing is what makes memory-bound workloads
    (high MPKI) hurt more at high core counts, as in the paper.
    """

    def __init__(
        self,
        sim: Simulator,
        memory: MainMemory,
        round_trip_cycles: int,
        stats: StatsRegistry,
        controller_id: int = 0,
    ) -> None:
        self.sim = sim
        self.memory = memory
        self.round_trip_cycles = round_trip_cycles
        self.stats = stats
        self.controller_id = controller_id
        self._busy_until = 0
        self._reads = stats.counter(f"mem{controller_id}.reads")
        self._writes = stats.counter(f"mem{controller_id}.writes")

    def _service_time(self) -> int:
        """Reserve the channel and return the absolute completion cycle."""
        start = max(self.sim.now, self._busy_until)
        done = start + self.round_trip_cycles
        self._busy_until = done
        return done

    def fetch_line(self, line: int, on_done: Callable[[Dict[int, int]], None]) -> None:
        """Read a line; ``on_done`` receives the word data at completion."""
        self._reads.add()
        done = self._service_time()
        self.sim.schedule_at(done, lambda: on_done(self.memory.read_line(line)))

    def writeback_line(
        self, line: int, data: Dict[int, int], on_done: Callable[[], None] = None
    ) -> None:
        """Write a full line back to memory; data is captured immediately."""
        self._writes.add()
        snapshot = dict(data)
        done = self._service_time()

        def finish() -> None:
            self.memory.write_line(line, snapshot)
            if on_done is not None:
                on_done()

        self.sim.schedule_at(done, finish)
