"""Off-chip memory: functional backing store plus timing controllers.

``MainMemory`` is the authoritative word store the whole machine bottoms out
in; ``MemoryController`` adds the Table III 80-cycle round trip and a simple
bank-occupancy queue so bursts of misses serialize realistically.
"""

from __future__ import annotations

from typing import Callable, Dict

from repro.engine.simulator import Simulator
from repro.mem.line_data import LineData, line_data
from repro.stats.collectors import StatsRegistry


class MainMemory:
    """Flat word-addressable backing store (line -> word index -> value).

    Lines are stored as copy-on-write :class:`LineData` views, so a fetch
    hands out an O(1) snapshot instead of copying the whole line, and a
    writeback adopts the in-flight payload without re-copying it. Value
    semantics are unchanged: a later mutation of either side copies first.
    """

    def __init__(self) -> None:
        self._lines: Dict[int, LineData] = {}

    def read_line(self, line: int) -> LineData:
        """Return a snapshot of the line's words (missing words are 0)."""
        stored = self._lines.get(line)
        if stored is None:
            return LineData()
        return stored.snapshot()

    def write_line(self, line: int, data) -> None:
        """Write back a full line image (mapping or :class:`LineData`)."""
        if data:
            self._lines[line] = line_data(data)
        else:
            self._lines.pop(line, None)

    def read_word(self, line: int, word: int) -> int:
        stored = self._lines.get(line)
        return stored.get(word, 0) if stored is not None else 0

    def write_word(self, line: int, word: int, value: int) -> None:
        stored = self._lines.get(line)
        if stored is None:
            stored = self._lines[line] = LineData()
        stored[word] = value


class MemoryController:
    """One off-chip channel: fixed round trip plus FIFO bank occupancy.

    A request issued while the channel is busy waits for every earlier
    request; this first-order queueing is what makes memory-bound workloads
    (high MPKI) hurt more at high core counts, as in the paper.
    """

    def __init__(
        self,
        sim: Simulator,
        memory: MainMemory,
        round_trip_cycles: int,
        stats: StatsRegistry,
        controller_id: int = 0,
    ) -> None:
        self.sim = sim
        self.memory = memory
        self.round_trip_cycles = round_trip_cycles
        self.stats = stats
        self.controller_id = controller_id
        self._busy_until = 0
        self._reads = stats.counter(f"mem{controller_id}.reads")
        self._writes = stats.counter(f"mem{controller_id}.writes")

    def _service_time(self) -> int:
        """Reserve the channel and return the absolute completion cycle."""
        start = max(self.sim.now, self._busy_until)
        done = start + self.round_trip_cycles
        self._busy_until = done
        return done

    def fetch_line(self, line: int, on_done: Callable[[LineData], None]) -> None:
        """Read a line; ``on_done`` receives the word data at completion."""
        self._reads.add()
        done = self._service_time()
        self.sim.schedule_at(done, lambda: on_done(self.memory.read_line(line)))

    def writeback_line(
        self, line: int, data, on_done: Callable[[], None] = None
    ) -> None:
        """Write a full line back to memory; data is captured immediately.

        The capture is an O(1) copy-on-write snapshot (the seed eagerly
        dict-copied here, and most callers had *already* copied once to
        build ``data`` — the classic double-copy this PR removes).
        """
        self._writes.add()
        snapshot = line_data(data)
        done = self._service_time()

        def finish() -> None:
            self.memory.write_line(line, snapshot)
            if on_done is not None:
                on_done()

        self.sim.schedule_at(done, finish)
