"""The core's store/write buffer.

Stores retire from the ROB into this buffer and drain to the L1 in FIFO
order; the core only stalls on stores when the buffer is full. Wireless
writes additionally sit here until the transceiver confirms the frame is
guaranteed to transmit (Section IV-C of the paper), at which point they merge
into the local cache.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Optional


class PendingStore:
    """One buffered store: address, value, and whether it is an RMW write."""

    __slots__ = ("address", "value", "is_rmw", "enqueued_at")

    def __init__(self, address: int, value: int, is_rmw: bool, enqueued_at: int) -> None:
        self.address = address
        self.value = value
        self.is_rmw = is_rmw
        self.enqueued_at = enqueued_at


class WriteBuffer:
    """Bounded FIFO of :class:`PendingStore` entries."""

    def __init__(self, capacity: int) -> None:
        self.capacity = capacity
        self._queue: Deque[PendingStore] = deque()

    def __len__(self) -> int:
        return len(self._queue)

    @property
    def full(self) -> bool:
        return len(self._queue) >= self.capacity

    @property
    def empty(self) -> bool:
        return not self._queue

    def push(self, address: int, value: int, is_rmw: bool, now: int) -> PendingStore:
        assert not self.full, "caller must stall the core when the buffer is full"
        store = PendingStore(address, value, is_rmw, now)
        self._queue.append(store)
        return store

    def head(self) -> Optional[PendingStore]:
        return self._queue[0] if self._queue else None

    def pop(self) -> PendingStore:
        return self._queue.popleft()

    def forwarded_value(self, address: int) -> Optional[int]:
        """Store-to-load forwarding: youngest buffered value for ``address``."""
        for store in reversed(self._queue):
            if store.address == address:
                return store.value
        return None
