"""Wired protocol message kinds.

Grouped by who sends them and whether a busy directory entry must accept
them immediately (transaction-completing) or may defer them (new requests).
"""

# --- cache -> directory requests (deferrable at a busy entry) ---
GETS = "GetS"          # read miss
GETX = "GetX"          # write miss / upgrade; payload["is_sharer"] set on upgrade

# --- cache -> directory notifications (must be accepted while busy) ---
PUTS = "PutS"          # eviction of a Shared line (fire and forget)
PUTM = "PutM"          # eviction of an E/M line; payload: data, dirty
PUTW = "PutW"          # eviction / self-invalidation of a Wireless line
WIR_UPGR_ACK = "WirUpgrAck"    # ack for a WirUpgr join (W state)
WIR_DWGR_ACK = "WirDwgrAck"    # ack for WirDwgr; payload: core id
INV_ACK = "InvAck"     # invalidation acknowledgment
INV_ACK_DATA = "InvAckData"    # invalidation ack carrying data (dir recall of E/M)
WB_DATA = "WBData"     # owner's data writeback closing a FwdGetS
FWD_ACK = "FwdAck"     # owner's ack closing a FwdGetX

# --- directory -> cache ---
DATA = "Data"          # line data, Shared grant; payload: data
DATA_E = "DataE"       # line data, Exclusive grant; payload: data
GRANT_X = "GrantX"     # upgrade grant without data (requester still a sharer)
FWD_GETS = "FwdGetS"   # forward a read to the exclusive owner
FWD_GETX = "FwdGetX"   # forward a write to the exclusive owner
INV = "Inv"            # invalidate; payload["needs_data"] on a dir recall
PUT_ACK = "PutAck"     # closes a PutM/PutE eviction transaction
WIR_UPGR = "WirUpgr"   # line data + "this line is now Wireless"; payload:
                       #   data, ack_required (False for the S->W trigger)

# --- cache -> cache (three-hop forwards) ---
FWD_DATA = "FwdData"   # owner-supplied data for a forwarded request

#: Kinds a busy directory entry must process immediately; everything else
#: waits in the entry's deferred queue until the transaction completes.
#: PutM is *not* here: it needs a PutAck response and a state change, and
#: deferring it is deadlock-free because the evicting cache keeps serving
#: forwards from its eviction buffer while it waits.
COMPLETION_KINDS = frozenset(
    {
        PUTS,
        PUTW,
        WIR_UPGR_ACK,
        WIR_DWGR_ACK,
        INV_ACK,
        INV_ACK_DATA,
        WB_DATA,
        FWD_ACK,
    }
)

# Wireless frame kinds (data channel).
WIR_UPD = "WirUpd"          # fine-grained word update from a W sharer
BR_WIR_UPGR = "BrWirUpgr"   # directory announces S -> W
WIR_DWGR = "WirDwgr"        # directory announces W -> S
WIR_INV = "WirInv"          # directory evicts a wirelessly shared line
