"""Wired protocol message kinds, interned as small integers.

Grouped by who sends them and whether a busy directory entry must accept
them immediately (transaction-completing) or may defer them (new requests).

Interning
---------
Every kind has two representations:

* the **name** (``"GetS"``) — the debug/trace layer. ``Message.kind`` and
  ``WirelessFrame.kind`` still return these strings, so reprs, protocol
  traces, and error messages stay readable, and tests can keep comparing
  against the string constants below.
* the **id** (``GETS_ID``) — a small dense integer used by the hot path.
  Controllers dispatch on ``msg.kind_id`` through precomputed tables
  (plain Python lists indexed by id) instead of if/elif string-compare
  chains, and per-kind attributes (data-bearing, jammable,
  directory-bound, transaction-completing) are O(1) list lookups.

``intern_kind`` is the single registration point. Unknown names (tests
exercise the error paths with kinds like ``"Martian"``) are interned on
first use so they flow through the same machinery and fail in the
controllers with the same :class:`~repro.engine.errors.ProtocolError` as
before.
"""

from __future__ import annotations

import sys
from typing import Dict, List

# --------------------------------------------------------------- registry

#: id -> name. Dense; ids are assigned in registration order below, so the
#: protocol kinds get stable small ids and dispatch tables stay compact.
_KIND_NAMES: List[str] = []
#: name -> id.
_KIND_IDS: Dict[str, int] = {}


def intern_kind(name: str) -> int:
    """Return the dense integer id for ``name``, registering it if new."""
    kid = _KIND_IDS.get(name)
    if kid is None:
        kid = len(_KIND_NAMES)
        _KIND_IDS[name] = kid
        _KIND_NAMES.append(sys.intern(name))
    return kid


def kind_id(name: str) -> int:
    """The id of an already (or newly) registered kind name."""
    return intern_kind(name)


def kind_name(kid: int) -> str:
    """The display name of a kind id (debug/trace layer)."""
    return _KIND_NAMES[kid]


def num_kinds() -> int:
    """Number of registered kinds (dispatch tables size to this)."""
    return len(_KIND_NAMES)


def kind_table(size_hint: int = 0) -> List:
    """A fresh ``None``-filled list indexed by kind id.

    Callers fill in per-kind handlers/flags; ids interned *after* the table
    was built simply fall off the end, which lookups must treat as "no
    entry" (see :func:`table_get`).
    """
    return [None] * max(num_kinds(), size_hint)


def table_get(table: List, kid: int):
    """``table[kid]`` with out-of-range ids mapping to ``None``."""
    return table[kid] if kid < len(table) else None


# --- cache -> directory requests (deferrable at a busy entry) ---
GETS = "GetS"          # read miss
GETX = "GetX"          # write miss / upgrade; payload["is_sharer"] set on upgrade

# --- cache -> directory notifications (must be accepted while busy) ---
PUTS = "PutS"          # eviction of a Shared line (fire and forget)
PUTM = "PutM"          # eviction of an E/M line; payload: data, dirty
PUTW = "PutW"          # eviction / self-invalidation of a Wireless line
WIR_UPGR_ACK = "WirUpgrAck"    # ack for a WirUpgr join (W state)
WIR_DWGR_ACK = "WirDwgrAck"    # ack for WirDwgr; payload: core id
INV_ACK = "InvAck"     # invalidation acknowledgment
INV_ACK_DATA = "InvAckData"    # invalidation ack carrying data (dir recall of E/M)
WB_DATA = "WBData"     # owner's data writeback closing a FwdGetS
FWD_ACK = "FwdAck"     # owner's ack closing a FwdGetX

# --- directory -> cache ---
DATA = "Data"          # line data, Shared grant; payload: data
DATA_E = "DataE"       # line data, Exclusive grant; payload: data
GRANT_X = "GrantX"     # upgrade grant without data (requester still a sharer)
FWD_GETS = "FwdGetS"   # forward a read to the exclusive owner
FWD_GETX = "FwdGetX"   # forward a write to the exclusive owner
INV = "Inv"            # invalidate; payload["needs_data"] on a dir recall
PUT_ACK = "PutAck"     # closes a PutM/PutE eviction transaction
WIR_UPGR = "WirUpgr"   # line data + "this line is now Wireless"; payload:
                       #   data, ack_required (False for the S->W trigger)
NACK = "Nack"          # directory mid-transition bounced the request

# --- cache -> cache (three-hop forwards) ---
FWD_DATA = "FwdData"   # owner-supplied data for a forwarded request

#: Kinds a busy directory entry must process immediately; everything else
#: waits in the entry's deferred queue until the transaction completes.
#: PutM is *not* here: it needs a PutAck response and a state change, and
#: deferring it is deadlock-free because the evicting cache keeps serving
#: forwards from its eviction buffer while it waits.
COMPLETION_KINDS = frozenset(
    {
        PUTS,
        PUTW,
        WIR_UPGR_ACK,
        WIR_DWGR_ACK,
        INV_ACK,
        INV_ACK_DATA,
        WB_DATA,
        FWD_ACK,
    }
)

# Wireless frame kinds (data channel).
WIR_UPD = "WirUpd"          # fine-grained word update from a W sharer
BR_WIR_UPGR = "BrWirUpgr"   # directory announces S -> W
WIR_DWGR = "WirDwgr"        # directory announces W -> S
WIR_INV = "WirInv"          # directory evicts a wirelessly shared line

# ----------------------------------------------------------- interned ids

GETS_ID = intern_kind(GETS)
GETX_ID = intern_kind(GETX)
PUTS_ID = intern_kind(PUTS)
PUTM_ID = intern_kind(PUTM)
PUTW_ID = intern_kind(PUTW)
WIR_UPGR_ACK_ID = intern_kind(WIR_UPGR_ACK)
WIR_DWGR_ACK_ID = intern_kind(WIR_DWGR_ACK)
INV_ACK_ID = intern_kind(INV_ACK)
INV_ACK_DATA_ID = intern_kind(INV_ACK_DATA)
WB_DATA_ID = intern_kind(WB_DATA)
FWD_ACK_ID = intern_kind(FWD_ACK)
DATA_ID = intern_kind(DATA)
DATA_E_ID = intern_kind(DATA_E)
GRANT_X_ID = intern_kind(GRANT_X)
FWD_GETS_ID = intern_kind(FWD_GETS)
FWD_GETX_ID = intern_kind(FWD_GETX)
INV_ID = intern_kind(INV)
PUT_ACK_ID = intern_kind(PUT_ACK)
WIR_UPGR_ID = intern_kind(WIR_UPGR)
NACK_ID = intern_kind(NACK)
FWD_DATA_ID = intern_kind(FWD_DATA)
WIR_UPD_ID = intern_kind(WIR_UPD)
BR_WIR_UPGR_ID = intern_kind(BR_WIR_UPGR)
WIR_DWGR_ID = intern_kind(WIR_DWGR)
WIR_INV_ID = intern_kind(WIR_INV)

#: Number of ids the core protocol occupies; tables built from this cover
#: every kind the controllers can legally receive.
NUM_PROTOCOL_KINDS = num_kinds()

COMPLETION_KIND_IDS = frozenset(_KIND_IDS[name] for name in COMPLETION_KINDS)
