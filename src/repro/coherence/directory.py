"""Directory entry and the set-associative directory/LLC array.

One :class:`DirectoryEntry` per LLC-resident line holds everything the home
node knows: the directory state, the Dir_i_B sharer pointers (with broadcast
bit), the WiDir ``SharerCount``, the LLC data words, and the bookkeeping of
an in-flight transaction (busy flag, deferred requests, pending acks).

The entry structure mirrors the paper's Figure 3: when a line is in W the
sharer-pointer field is *reinterpreted* as a count of sharers (``log2 N``
bits suffice); the broadcast bit is always zero in W.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, Iterator, List, Optional, Set

from repro.coherence.states import DIR_INVALID
from repro.engine.errors import SimulationError


class DirectoryEntry:
    """Home-node record for one line resident in the LLC slice."""

    __slots__ = (
        "line",
        "state",
        "owner",
        "sharers",
        "broadcast",
        "coarse_regions",
        "sharer_count",
        "data",
        "has_data",
        "dirty",
        "busy",
        "transaction",
        "deferred",
    )

    def __init__(self, line: int) -> None:
        self.line = line
        self.state = DIR_INVALID
        #: Exclusive owner tile id (state E), else None.
        self.owner: Optional[int] = None
        #: Precise sharer set while it fits the limited pointers.
        self.sharers: Set[int] = set()
        #: Dir_i_B overflow: pointer capacity exceeded, sharer set imprecise
        #: (invalidations must be broadcast). Always False in W.
        self.broadcast = False
        #: Dir_i_CV_r overflow: region ids whose coarse bit is set (empty
        #: when the pointers still suffice, or under the DirB scheme).
        self.coarse_regions: Set[int] = set()
        #: WiDir: number of wireless sharers (meaningful only in state W).
        self.sharer_count = 0
        #: LLC copy of the line (word index -> value).
        self.data: Dict[int, int] = {}
        #: The LLC holds a valid copy (False until the first memory fetch).
        self.has_data = False
        #: LLC copy differs from memory.
        self.dirty = False
        #: A transaction is in flight; new requests are deferred.
        self.busy = False
        #: Free-form per-transaction context owned by the controller.
        self.transaction: Optional[dict] = None
        #: Requests waiting for the entry to become idle.
        self.deferred: Deque = deque()

    def known_sharers(
        self,
        num_cores: int,
        exclude: Optional[int] = None,
        coarse_region_size: int = 4,
    ) -> List[int]:
        """Destinations an invalidation must reach.

        Precise sharer pointers while they last; on overflow, either every
        core (Dir_i_B broadcast bit) or every core of the marked coarse
        regions (Dir_i_CV_r).
        """
        if self.broadcast:
            targets = range(num_cores)
        elif self.coarse_regions:
            targets = [
                core
                for region in sorted(self.coarse_regions)
                for core in range(
                    region * coarse_region_size,
                    min(num_cores, (region + 1) * coarse_region_size),
                )
            ]
        else:
            targets = self.sharers
        return [t for t in targets if t != exclude]

    def clear_imprecision(self) -> None:
        """Reset overflow tracking (entry leaves the Shared state)."""
        self.broadcast = False
        self.coarse_regions.clear()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"DirectoryEntry(0x{self.line:x}, {self.state}, owner={self.owner}, "
            f"sharers={sorted(self.sharers)}, bcast={self.broadcast}, "
            f"count={self.sharer_count}, busy={self.busy})"
        )


class DirectoryArray:
    """Set-associative array of :class:`DirectoryEntry` with LRU replacement.

    Busy entries are pinned: they are skipped when choosing a victim, since
    dropping an entry mid-transaction would orphan its acks.
    """

    def __init__(self, num_sets: int, associativity: int) -> None:
        if num_sets <= 0 or num_sets & (num_sets - 1):
            raise SimulationError(f"num_sets must be a power of two, got {num_sets}")
        self.num_sets = num_sets
        self.associativity = associativity
        self._mask = num_sets - 1
        # Sets are plain insertion-ordered dicts (LRU touch = delete +
        # re-insert, same order ``OrderedDict.move_to_end`` gives) allocated
        # *lazily*: a 64-tile machine has num_cores * num_sets directory
        # sets and most are never referenced in a run, so eagerly building
        # them dominated machine-construction time in profiles.
        self._sets: Dict[int, Dict[int, DirectoryEntry]] = {}

    def _set_of(self, line: int) -> Dict[int, DirectoryEntry]:
        index = line & self._mask
        cache_set = self._sets.get(index)
        if cache_set is None:
            cache_set = self._sets[index] = {}
        return cache_set

    def lookup(self, line: int, touch: bool = True) -> Optional[DirectoryEntry]:
        cache_set = self._sets.get(line & self._mask)
        if cache_set is None:
            return None
        entry = cache_set.get(line)
        if entry is not None and touch:
            del cache_set[line]
            cache_set[line] = entry
        return entry

    def needs_victim(self, line: int) -> bool:
        cache_set = self._set_of(line)
        return line not in cache_set and len(cache_set) >= self.associativity

    def victim_for(self, line: int) -> Optional[DirectoryEntry]:
        """LRU non-busy entry to evict before ``line`` can be installed."""
        if not self.needs_victim(line):
            return None
        for candidate in self._set_of(line).values():
            if not candidate.busy:
                return candidate
        return None  # every way busy; the caller retries later

    def insert(self, line: int) -> DirectoryEntry:
        cache_set = self._set_of(line)
        if line in cache_set:
            raise SimulationError(f"directory entry for 0x{line:x} already present")
        if len(cache_set) >= self.associativity:
            raise SimulationError(
                f"directory set full for 0x{line:x}; evict before insert"
            )
        entry = DirectoryEntry(line)
        cache_set[line] = entry
        return entry

    def remove(self, line: int) -> DirectoryEntry:
        entry = self._set_of(line).pop(line, None)
        if entry is None:
            raise SimulationError(f"directory entry for 0x{line:x} not present")
        return entry

    def entries(self) -> Iterator[DirectoryEntry]:
        for cache_set in self._sets.values():
            yield from cache_set.values()
