"""Per-word coherence-order validation of observed execution histories.

The :class:`CoherenceChecker` validates machine *state*; this module
validates machine *behaviour*: record every load and store the cores
perform (with completion timestamps), then check per word that the
observed reads are explainable by a single total order of writes —
cache coherence's per-location serialization guarantee.

The check implemented is deliberately per-location (coherence), not
cross-location (sequential consistency): the paper's protocol — like the
MESI baseline — guarantees write serialization per line, while the machine
model has a store buffer (so cross-location TSO-style reorderings are
legal and must not be flagged).

Usage::

    recorder = HistoryRecorder()
    ... issue ops through recorder.load / recorder.store ...
    machine.run()
    violations = recorder.validate()
    assert not violations
"""

from __future__ import annotations

from typing import Callable, Dict, List, NamedTuple, Optional


class WriteEvent(NamedTuple):
    core: int
    value: int
    issued: int
    completed: int


class ReadEvent(NamedTuple):
    core: int
    value: int
    issued: int
    completed: int


class Violation(NamedTuple):
    address: int
    reason: str


class HistoryRecorder:
    """Wraps a machine's cache interfaces and records the history.

    WiDir is *not multi-copy atomic*: a wireless store completes for its
    writer at the channel's commit point, but other sharers observe it only
    at frame delivery, ``frame_cycles`` later (the writer reads its own
    write early — legal under TSO-like models, and safe here because the
    channel serializes all updates to a line). The validator therefore
    treats a write as globally visible ``visibility_lag`` cycles after its
    recorded completion; zero on a purely wired machine.
    """

    def __init__(self, machine) -> None:
        self.machine = machine
        self._writes: Dict[int, List[WriteEvent]] = {}
        self._reads: Dict[int, List[ReadEvent]] = {}
        self.visibility_lag = (
            machine.wireless.settle_cycles
            if machine.wireless is not None
            else 0
        )

    # ----------------------------------------------------------- recording

    def store(self, core: int, address: int, value: int,
              on_done: Optional[Callable[[], None]] = None) -> None:
        issued = self.machine.sim.now

        def done() -> None:
            self._writes.setdefault(address, []).append(
                WriteEvent(core, value, issued, self.machine.sim.now)
            )
            if on_done is not None:
                on_done()

        self.machine.caches[core].store(address, value, done)

    def load(self, core: int, address: int,
             on_done: Optional[Callable[[int], None]] = None) -> None:
        issued = self.machine.sim.now

        def done(value: int) -> None:
            self._reads.setdefault(address, []).append(
                ReadEvent(core, value, issued, self.machine.sim.now)
            )
            if on_done is not None:
                on_done(value)

        self.machine.caches[core].load(address, done)

    def rmw(self, core: int, address: int,
            on_done: Optional[Callable[[int], None]] = None) -> None:
        issued = self.machine.sim.now

        def done(old: int) -> None:
            now = self.machine.sim.now
            # An atomic is a read of `old` plus a write of `old + 1`.
            self._reads.setdefault(address, []).append(
                ReadEvent(core, old, issued, now)
            )
            self._writes.setdefault(address, []).append(
                WriteEvent(core, old + 1, issued, now)
            )
            if on_done is not None:
                on_done(old)

        self.machine.caches[core].rmw(address, done)

    # ---------------------------------------------------------- validation

    def validate(self) -> List[Violation]:
        """Check every recorded word for per-location coherence.

        Conditions verified per address:

        1. **Value provenance** — every read returns 0 (initial) or the
           value of some write to that address.
        2. **No stale-past reads** — a read that *issued* after a write
           completed, with no other write to the word in between, must not
           return a value older than that write.
        """
        violations: List[Violation] = []
        for address, reads in self._reads.items():
            writes = sorted(
                self._writes.get(address, []), key=lambda w: w.completed
            )
            legal_values = {w.value for w in writes} | {0}
            write_values_in_order = [w.value for w in writes]
            for read in reads:
                if read.value not in legal_values:
                    violations.append(
                        Violation(
                            address,
                            f"read {read.value} never written "
                            f"(core {read.core} @ {read.completed})",
                        )
                    )
                    continue
                # Find writes that were definitely *globally visible* before
                # the read was even issued; the read must not predate them.
                lag = self.visibility_lag
                completed_before = [
                    w for w in writes if w.completed + lag < read.issued
                ]
                if not completed_before:
                    continue
                last_sure = completed_before[-1]
                if read.value == 0 and write_values_in_order:
                    violations.append(
                        Violation(
                            address,
                            f"core {read.core} read initial value after "
                            f"write {last_sure.value} completed",
                        )
                    )
                    continue
                if read.value in write_values_in_order:
                    read_pos = _last_index(write_values_in_order, read.value)
                    sure_pos = _last_index(
                        write_values_in_order, last_sure.value
                    )
                    # Concurrent writes (overlapping the read) may legally
                    # be observed in either order; only flag reads of
                    # values strictly older than a write that completed
                    # before the read began AND whose successor writes all
                    # also completed before the read began.
                    if read_pos < sure_pos and all(
                        w.completed + lag < read.issued
                        for w in writes[read_pos + 1 : sure_pos + 1]
                    ):
                        violations.append(
                            Violation(
                                address,
                                f"core {read.core} read stale {read.value} "
                                f"after {last_sure.value} completed",
                            )
                        )
        return violations


def _last_index(values: List[int], value: int) -> int:
    for index in range(len(values) - 1, -1, -1):
        if values[index] == value:
            return index
    raise ValueError(value)
