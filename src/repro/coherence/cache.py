"""The private (L1) cache controller: MESI plus the WiDir W state.

The controller implements every private-cache transition of the paper's
Figure 4a / Table I. It is retry-structured: a core access that cannot
complete locally allocates (or joins) an MSHR and re-executes once the
outstanding transaction finishes, which keeps every race window explicit in
one place — the message and frame handlers.

Wired-side races covered here:

* invalidations arriving while this cache's own upgrade is queued at the
  directory (the line is handed over, the queued upgrade is later served as
  a full miss);
* forwarded requests arriving for a line this cache is mid-eviction on
  (served from the eviction buffer until the directory's PutAck);
* NACKs from a directory that is mid S->W transition (bounced request is
  retried, and the tone is dropped — paper Section III-B1 case iii).

Wireless-side behaviour (Table I, Section IV-C):

* W-state stores broadcast a WirUpd and merge locally only at the channel's
  serialization point;
* received WirUpds bump UpdateCount and trigger self-invalidation + PutW at
  the threshold;
* WirDwgr downgrades W->S and re-issues any pending wireless writes as wired
  upgrades; WirInv invalidates and re-issues them as wired misses;
* wireless RMWs monitor the channel between issue and commit and retry from
  scratch if the line is updated or invalidated under them.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from repro.coherence import messages as mk
from repro.coherence.states import (
    EXCLUSIVE,
    INVALID,
    MODIFIED,
    SHARED,
    WIRELESS,
)
from repro.config.system import SystemConfig
from repro.engine.errors import ProtocolError, SimulationError
from repro.engine.rng import DeterministicRng
from repro.engine.simulator import Simulator
from repro.mem.address import AddressMap
from repro.mem.cache_array import CacheArray, CacheLine
from repro.mem.line_data import LineData, line_data
from repro.mem.mshr import MshrFile
from repro.noc.mesh import MeshNetwork
from repro.noc.message import Message
from repro.stats.collectors import StatsRegistry
from repro.wireless.channel import WirelessDataChannel
from repro.wireless.frames import WirelessFrame
from repro.wireless.tone import ToneChannel

#: Cycles before re-sending a request the directory bounced (plus jitter).
NACK_RETRY_CYCLES = 12
#: Cycles before re-trying an access stalled on a full MSHR file.
MSHR_FULL_RETRY_CYCLES = 4


class _PendingWirelessWrite:
    """A W-state store sitting in the transceiver awaiting its commit slot."""

    __slots__ = ("request", "address", "value", "on_done")

    def __init__(self, request, address: int, value: int, on_done) -> None:
        self.request = request
        self.address = address
        self.value = value
        self.on_done = on_done


class CacheController:
    """One tile's private data cache and its coherence state machine."""

    def __init__(
        self,
        sim: Simulator,
        node: int,
        config: SystemConfig,
        amap: AddressMap,
        noc: MeshNetwork,
        stats: StatsRegistry,
        rng: DeterministicRng,
        wireless: Optional[WirelessDataChannel] = None,
        tone: Optional[ToneChannel] = None,
    ) -> None:
        self.sim = sim
        self.node = node
        self.config = config
        self.amap = amap
        self.noc = noc
        self.wireless = wireless
        self.tone = tone
        self.array = CacheArray(config.l1.num_sets, config.l1.associativity)
        self.mshrs = MshrFile(config.core.max_outstanding_misses)
        self._rng = rng
        self._hit_latency = config.l1.round_trip_cycles
        self._update_threshold = config.directory.update_count_threshold
        # Permission sets come from the protocol backend — a backend must
        # opt in to W-state readability rather than inherit WiDir's.
        from repro.coherence.backend import get_backend

        backend = get_backend(config.protocol)
        self._readable = backend.readable_states
        self._writable = backend.writable_states
        # Address decomposition constants, hoisted from ``amap``: the CPU
        # entry points below run once per memory reference and the two
        # method calls per access were measurable. The arithmetic is
        # identical to AddressMap.line_of / word_of.
        self._line_shift = amap.line_bytes.bit_length() - 1
        self._offset_mask = amap.line_bytes - 1
        self._word_shift = AddressMap.WORD_BYTES.bit_length() - 1
        #: Evicted-but-unacked E/M lines: line -> {"data", "dirty"}.
        self._evicting: Dict[int, Dict] = {}
        #: W-state stores awaiting their wireless commit, per line.
        self._pending_wireless: Dict[int, List[_PendingWirelessWrite]] = {}
        #: In-flight wireless RMW per line (at most one per core).
        self._rmw_watch: Dict[int, Dict] = {}
        #: Monotonic serial for outgoing GetS/GetX (stale-Nack filtering).
        self._request_serial = 0
        #: Online invariant monitor hook (set by OnlineInvariantMonitor
        #: .install(); None — the default — costs one attribute test per
        #: message/frame and nothing else).
        self._monitor = None
        #: Observability hook (set by Observability.install(); None — the
        #: default — costs one attribute test per hook site and nothing
        #: else; see repro.obs.hooks).
        self._obs = None

        # Hot-path counters are stored as bound ``Counter.add`` methods
        # (see StatsRegistry.adder): one call, no per-event attribute walk
        # through the Counter object.
        s = stats
        # The three CPU entry-point counters are kept as Counter *objects*
        # and bumped with a direct ``.value += 1`` (cheaper still than the
        # bound-method adders used for the colder counters below).
        self._loads_counter = s.counter(f"l1.{node}.loads")
        self._stores_counter = s.counter(f"l1.{node}.stores")
        self._rmws_counter = s.counter(f"l1.{node}.rmws")
        self._accesses_counter = s.counter("l1.total.accesses")
        self._read_misses = s.adder(f"l1.{node}.read_misses")
        self._write_misses = s.adder(f"l1.{node}.write_misses")
        self._mshr_joins = s.adder(f"l1.{node}.mshr_joins")
        self._wireless_writes = s.adder(f"l1.{node}.wireless_writes")
        self._self_invalidations = s.adder(f"l1.{node}.self_invalidations")
        self._nacks = s.adder(f"l1.{node}.nacks")
        self._read_misses_total = s.adder("l1.total.read_misses")
        self._write_misses_total = s.adder("l1.total.write_misses")
        self._wireless_writes_total = s.adder("l1.total.wireless_writes")

    # ------------------------------------------------------------ CPU API

    def load(self, address: int, on_done: Callable[[int], None]) -> None:
        """Read a word; ``on_done(value)`` fires when the data is available.

        The L1-hit fast path is inlined here (identical to the head of
        :meth:`_do_load`, which remains the retry target for misses): loads
        dominate the op mix and the extra call frame per hit was visible in
        end-to-end profiles.
        """
        self._loads_counter.value += 1
        self._accesses_counter.value += 1
        line = address >> self._line_shift
        entry = self.array.lookup(line)
        if entry is not None and entry.state in self._readable:
            if entry.state == WIRELESS:
                entry.update_count = 0
            word = (address & self._offset_mask) >> self._word_shift
            value = entry.data.get(word, 0)
            self.sim.schedule(self._hit_latency, lambda: on_done(value))
            return
        self._miss(line, False, False, lambda: self._do_load(address, on_done))

    def load_probe(self, address: int) -> Optional[int]:
        """Counter-bumping L1 read-hit probe for the core's load fast path.

        On an L1 read hit, applies exactly the hit side effects of
        :meth:`load` (access counters, LRU touch, W-state update-count
        reset) and returns the word — *without* scheduling the completion.
        The core schedules its own wake-up at the L1 round trip, saving a
        closure and a completion cell per hit. Returns None on a miss, in
        which case the caller must follow with :meth:`load_miss` (the
        counters are already bumped).
        """
        self._loads_counter.value += 1
        self._accesses_counter.value += 1
        entry = self.array.lookup(address >> self._line_shift)
        if entry is not None and entry.state in self._readable:
            if entry.state == WIRELESS:
                entry.update_count = 0
            word = (address & self._offset_mask) >> self._word_shift
            return entry.data.get(word, 0)
        return None

    def load_miss(self, address: int, on_done: Callable[[int], None]) -> None:
        """Miss leg of the :meth:`load_probe` pair (counters already bumped)."""
        line = address >> self._line_shift
        self._miss(line, False, False, lambda: self._do_load(address, on_done))

    def store(self, address: int, value: int, on_done: Callable[[], None]) -> None:
        """Write a word; ``on_done()`` fires when the store is performed."""
        self._stores_counter.value += 1
        self._accesses_counter.value += 1
        self._do_store(address, value, on_done)

    def store_probe(self, address: int, value: int) -> bool:
        """Counter-bumping M/E write-hit probe for the core's store fast path.

        On an M/E hit the store is performed immediately (state to M, dirty
        set, word written — exactly what the head of :meth:`_do_store`
        does) and True is returned; the core schedules its own completion
        at the L1 round trip. Returns False on any other state, in which
        case the caller must follow with :meth:`store_miss`.
        """
        self._stores_counter.value += 1
        self._accesses_counter.value += 1
        entry = self.array.lookup(address >> self._line_shift)
        if entry is not None and entry.state in self._writable:
            entry.state = MODIFIED
            entry.dirty = True
            entry.data[(address & self._offset_mask) >> self._word_shift] = value
            return True
        return False

    def store_miss(
        self, address: int, value: int, on_done: Callable[[], None]
    ) -> None:
        """Non-M/E leg of the :meth:`store_probe` pair (W, S, and miss
        paths; counters already bumped). Re-enters :meth:`_do_store`, whose
        M/E head cannot match — the probe just ruled it out this cycle."""
        self._do_store(address, value, on_done)

    def rmw(self, address: int, on_done: Callable[[int], None]) -> None:
        """Atomic fetch-and-increment; ``on_done(old_value)`` on completion.

        The increment semantics give tests a strong whole-protocol check:
        with K cores each performing N RMWs on one word, the final value must
        be exactly K*N regardless of interleaving, wired or wireless.
        """
        self._rmws_counter.value += 1
        self._accesses_counter.value += 1
        self._do_rmw(address, on_done)

    # ------------------------------------------------------ access engine

    def _do_load(self, address: int, on_done: Callable[[int], None]) -> None:
        line = address >> self._line_shift
        entry = self.array.lookup(line)
        if entry is not None and entry.state in self._readable:
            if entry.state == WIRELESS:
                entry.update_count = 0
            word = (address & self._offset_mask) >> self._word_shift
            value = entry.data.get(word, 0)
            self.sim.schedule(self._hit_latency, lambda: on_done(value))
            return
        self._miss(line, False, False, lambda: self._do_load(address, on_done))

    def _do_store(self, address: int, value: int, on_done: Callable[[], None]) -> None:
        line = address >> self._line_shift
        word = (address & self._offset_mask) >> self._word_shift
        entry = self.array.lookup(line)
        if entry is not None:
            if entry.state in self._writable:
                entry.state = MODIFIED
                entry.dirty = True
                entry.data[word] = value
                self.sim.schedule(self._hit_latency, on_done)
                return
            if entry.state == WIRELESS:
                self._store_wireless(entry, address, value, on_done)
                return
            if entry.state == SHARED:
                self._miss(
                    line, True, True, lambda: self._do_store(address, value, on_done)
                )
                return
        self._miss(line, True, False, lambda: self._do_store(address, value, on_done))

    def _do_rmw(self, address: int, on_done: Callable[[int], None]) -> None:
        line = address >> self._line_shift
        word = (address & self._offset_mask) >> self._word_shift
        entry = self.array.lookup(line)
        if entry is not None:
            if entry.state in self._writable:
                old = entry.data.get(word, 0)
                entry.state = MODIFIED
                entry.dirty = True
                entry.data[word] = old + 1
                self.sim.schedule(self._hit_latency, lambda: on_done(old))
                return
            if entry.state == WIRELESS:
                self._rmw_wireless(entry, address, on_done)
                return
            if entry.state == SHARED:
                self._miss(line, True, True, lambda: self._do_rmw(address, on_done))
                return
        self._miss(line, True, False, lambda: self._do_rmw(address, on_done))

    def _miss(
        self, line: int, is_write: bool, is_sharer: bool, retry: Callable[[], None]
    ) -> None:
        existing = self.mshrs.get(line)
        obs = self._obs
        if existing is not None:
            self._mshr_joins()
            if obs is not None:
                obs.event(self.node, "mshr.join", line)
            if is_write:
                existing.is_write = True
            existing.add_waiter(retry)
            return
        if self.mshrs.full:
            if obs is not None:
                obs.event(self.node, "mshr.full", line)
            self.sim.schedule(MSHR_FULL_RETRY_CYCLES, retry)
            return
        mshr = self.mshrs.allocate(line, is_write, self.sim.now)
        if obs is not None:
            obs.miss_open(self.node, line, is_write)
        mshr.add_waiter(retry)
        resident = self.array.lookup(line, touch=False)
        if resident is not None:
            # Upgrade of a resident (Shared) line: pin it so LRU pressure
            # cannot evict it while the directory may respond with GrantX.
            resident.pinned += 1
            mshr.pinned_line = True
        if is_write:
            self._write_misses()
            self._write_misses_total()
        else:
            self._read_misses()
            self._read_misses_total()
        self._send_request(mshr, line, is_write, is_sharer)

    def _send_request(self, mshr, line: int, is_write: bool, is_sharer: bool) -> None:
        self._request_serial += 1
        mshr.request_serial = self._request_serial
        kind = mk.GETX_ID if is_write else mk.GETS_ID
        self._send(
            kind,
            self.amap.home_of(line),
            line,
            {"is_sharer": is_sharer, "req_serial": mshr.request_serial},
        )

    def _send(self, kind, dst: int, line: int, payload: Optional[dict] = None) -> None:
        self.noc.send(Message.acquire(kind, self.node, dst, line, payload))

    # ----------------------------------------------------- line lifecycle

    def _install(self, line: int, state: str, data) -> CacheLine:
        """Make room, install ``line`` in ``state`` with ``data``.

        Callers must have confirmed :meth:`_ensure_room` first. ``data`` may
        be a plain mapping or a :class:`LineData`; either way the installed
        entry gets its own copy-on-write view.
        """
        victim = self.array.victim_for(line)
        if victim is not None:
            self._evict(victim)
        entry = self.array.insert(line, state)
        entry.data = line_data(data)
        entry.update_count = 0
        return entry

    def _ensure_room(self, line: int) -> bool:
        """True when ``line`` can be installed now.

        Every way can transiently be pinned (wireless writes or RMWs in
        flight). A W way pinned only by pending wireless writes is freed by
        re-issuing those writes over the wired path; otherwise installation
        waits — the pins clear independently (channel commit or directory
        grant), so deferring cannot deadlock.
        """
        if not self.array.needs_victim(line):
            return True
        try:
            self.array.victim_for(line)
            return True
        except SimulationError:
            pass
        for candidate in self.array.ways_of(line):
            if (
                candidate.state == WIRELESS
                and candidate.line in self._pending_wireless
                and candidate.line not in self._rmw_watch
            ):
                self._reissue_pending_writes(candidate.line)
                if not candidate.pinned:
                    return True
        return False

    def _evict(self, victim: CacheLine) -> None:
        """Push a victim out, notifying the directory (the paper notifies on
        every eviction, W or not, to keep sharer information precise)."""
        line = victim.line
        self.array.remove(line)
        home = self.amap.home_of(line)
        obs = self._obs
        if victim.state == SHARED:
            if obs is not None:
                obs.event(self.node, "evict.shared", line)
            self._send(mk.PUTS_ID, home, line)
        elif victim.state == WIRELESS:
            if obs is not None:
                obs.event(self.node, "evict.wireless", line)
            self._send(mk.PUTW_ID, home, line)
        elif victim.state in (EXCLUSIVE, MODIFIED):
            if obs is not None:
                obs.wb_open(self.node, line)
            dirty = victim.dirty
            snapshot = line_data(victim.data)
            self._evicting[line] = {"data": snapshot, "dirty": dirty}
            payload = {"dirty": dirty}
            if dirty:
                payload["data"] = snapshot.snapshot()
            self._send(mk.PUTM_ID, home, line, payload)

    def _complete_mshr(self, line: int) -> None:
        obs = self._obs
        if obs is not None:
            obs.miss_close(self.node, line)
        mshr = self.mshrs.release(line)
        if mshr.tone_pending and self.tone is not None:
            self.tone.drop(line, self.node)
        if mshr.pinned_line:
            resident = self.array.lookup(line, touch=False)
            if resident is not None and resident.pinned:
                resident.pinned -= 1
        mshr.complete()

    # ------------------------------------------------- wired message side

    def handle_message(self, msg: Message) -> None:
        """Entry point for wired messages addressed to this private cache."""
        monitor = self._monitor
        if monitor is not None:
            monitor.touch(msg.line)
        kid = msg.kind_id
        table = self._WIRED_DISPATCH
        handler = table[kid] if kid < len(table) else None
        if handler is None:
            raise ProtocolError(f"L1 {self.node} cannot handle {msg.kind}")
        handler(self, msg)

    def _on_data(self, msg: Message) -> None:
        kid = msg.kind_id
        if kid == mk.DATA_ID:
            grant = SHARED
        elif kid == mk.DATA_E_ID:
            grant = EXCLUSIVE
        else:
            grant = msg.payload.get("grant", SHARED)
        mshr = self.mshrs.get(msg.line)
        if mshr is None:
            # Response to a superseded request (the miss completed by other
            # means, e.g. a BrWirUpgr conversion, while this was in flight).
            self._on_stale_data(msg, grant)
            return
        if mshr.tone_pending and grant == SHARED:
            # ToneAck completion case (iii), Section III-B1: this node heard
            # BrWirUpgr while its wired request was outstanding. The response
            # was sent by the directory pre-transition as a Shared grant, but
            # the line is now wireless: install it in W. (The directory's
            # SharerCount snapshot includes this node.)
            grant = WIRELESS
        resident = self.array.lookup(msg.line, touch=False)
        if resident is not None and resident.state in (SHARED, EXCLUSIVE, MODIFIED):
            # The line is already here: this response answers a superseded
            # request. An exclusive grant satisfies whatever the live miss
            # wanted (the line becomes writable), so it completes the miss;
            # a shared grant is dropped and the live miss keeps waiting for
            # its own answer.
            self._on_stale_data(msg, grant)
            if grant != SHARED:
                self._complete_mshr(msg.line)
            return
        if not self._ensure_room(msg.line):
            msg.retain()  # survives past this delivery for the retry
            self.sim.schedule(MSHR_FULL_RETRY_CYCLES, lambda: self._on_data(msg))
            return
        entry = self._install(msg.line, grant, msg.payload.get("data", {}))
        if kid == mk.FWD_DATA_ID:
            # Forwarded from the previous owner. The home directory stays
            # busy until *this* cache confirms installation — completing at
            # the owner instead would let the directory forward the next
            # request here before the data arrived.
            home = self.amap.home_of(msg.line)
            if grant == MODIFIED:
                # The LLC copy is stale; this copy must write back even if
                # this core never stores to it.
                entry.dirty = True
                self._send(mk.FWD_ACK_ID, home, msg.line)
            else:
                self._send(
                    mk.WB_DATA_ID,
                    home,
                    msg.line,
                    {
                        "data": entry.data.snapshot(),
                        "dirty": msg.payload.get("dirty", False),
                    },
                )
        self._complete_mshr(msg.line)

    def _on_stale_data(self, msg: Message, grant: str) -> None:
        """Handle a data response whose request was superseded.

        The home-side transaction this response belongs to must still be
        closed (FwdData always owes the home an ack), and exclusive grants
        must be accepted — the directory now lists this cache as owner.
        Shared grants are simply dropped: they only leave the directory with
        an over-approximate sharer set, which invalidations tolerate.
        """
        resident = self.array.lookup(msg.line, touch=False)
        if msg.kind_id == mk.FWD_DATA_ID and grant != MODIFIED:
            # Close the home's fwd_gets transaction with the data we were
            # handed, whether or not we keep a copy. The payload data is
            # forwarded as a snapshot — no per-hop copy (the seed version
            # copied here *and* again at the directory fill).
            self._send(
                mk.WB_DATA_ID,
                self.amap.home_of(msg.line),
                msg.line,
                {
                    "data": line_data(msg.payload.get("data")),
                    "dirty": msg.payload.get("dirty", False),
                },
            )
            return
        if grant == SHARED:
            return
        # Exclusive grant (DataE or forwarded M data): accept ownership.
        if resident is not None and resident.state in (SHARED, EXCLUSIVE, MODIFIED):
            resident.state = MODIFIED
            if msg.payload.get("data"):
                resident.data = line_data(msg.payload["data"])
            resident.dirty = True
        elif resident is not None:
            raise ProtocolError(
                f"L1 {self.node}: unsolicited exclusive grant for "
                f"0x{msg.line:x} held in {resident.state}"
            )
        elif not self._ensure_room(msg.line):
            msg.retain()  # survives past this delivery for the retry
            self.sim.schedule(
                MSHR_FULL_RETRY_CYCLES, lambda: self._on_stale_data(msg, grant)
            )
            return
        else:
            entry = self._install(msg.line, MODIFIED, msg.payload.get("data", {}))
            entry.dirty = True
        if msg.kind_id == mk.FWD_DATA_ID:
            self._send(mk.FWD_ACK_ID, self.amap.home_of(msg.line), msg.line)

    def _on_grant_x(self, msg: Message) -> None:
        entry = self.array.lookup(msg.line)
        if entry is None or entry.state not in (SHARED, MODIFIED, EXCLUSIVE):
            raise ProtocolError(
                f"L1 {self.node}: GrantX for 0x{msg.line:x} not held"
            )
        entry.state = MODIFIED
        if self.mshrs.get(msg.line) is not None:
            self._complete_mshr(msg.line)
        # else: a grant for a superseded request; ownership is accepted and
        # the already-satisfied miss needs no further action.

    def _on_wir_upgr(self, msg: Message) -> None:
        """WirUpgr + line via wired: the line is (now) wireless (Table I)."""
        resident = self.array.lookup(msg.line, touch=False)
        if resident is not None and resident.state == WIRELESS:
            # Duplicate join (a redundant request raced an earlier answer):
            # the line is already wireless here; just acknowledge.
            entry = resident
        else:
            if not self._ensure_room(msg.line):
                msg.retain()  # survives past this delivery for the retry
                self.sim.schedule(
                    MSHR_FULL_RETRY_CYCLES, lambda: self._on_wir_upgr(msg)
                )
                return
            entry = self._install(msg.line, WIRELESS, msg.payload.get("data", {}))
        entry.dirty = False
        if msg.payload.get("ack_required", False):
            self._send(mk.WIR_UPGR_ACK_ID, msg.src, msg.line)
        if self.mshrs.get(msg.line) is not None:
            self._complete_mshr(msg.line)

    def _on_fwd_gets(self, msg: Message) -> None:
        requester = msg.payload["requester"]
        entry = self.array.lookup(msg.line, touch=False)
        if entry is not None and entry.state in (EXCLUSIVE, MODIFIED):
            data, dirty = line_data(entry.data), entry.dirty
            entry.state = SHARED
            entry.dirty = False
        elif msg.line in self._evicting:
            buffered = self._evicting[msg.line]
            data, dirty = line_data(buffered["data"]), buffered["dirty"]
        else:
            raise ProtocolError(
                f"L1 {self.node}: FwdGetS for 0x{msg.line:x} but not owner"
            )
        self._send(
            mk.FWD_DATA_ID,
            requester,
            msg.line,
            {"data": data, "grant": SHARED, "dirty": dirty},
        )

    def _on_fwd_getx(self, msg: Message) -> None:
        requester = msg.payload["requester"]
        entry = self.array.lookup(msg.line, touch=False)
        if entry is not None and entry.state in (EXCLUSIVE, MODIFIED):
            data = line_data(entry.data)
            self.array.remove(msg.line)
        elif msg.line in self._evicting:
            data = line_data(self._evicting[msg.line]["data"])
        else:
            raise ProtocolError(
                f"L1 {self.node}: FwdGetX for 0x{msg.line:x} but not owner"
            )
        self._send(
            mk.FWD_DATA_ID, requester, msg.line, {"data": data, "grant": MODIFIED}
        )

    def _on_inv(self, msg: Message) -> None:
        needs_data = msg.payload.get("needs_data", False)
        entry = self.array.lookup(msg.line, touch=False)
        if entry is not None and entry.state == WIRELESS:
            # A maximally delayed Inv from a pre-W epoch of this line; the
            # wireless epoch is governed by WirInv/WirDwgr, so only ack it.
            self._send(mk.INV_ACK_ID, msg.src, msg.line)
            return
        if entry is not None:
            data, dirty = line_data(entry.data), entry.dirty
            self.array.remove(msg.line)
            if needs_data:
                self._send(
                    mk.INV_ACK_DATA_ID,
                    msg.src,
                    msg.line,
                    {"data": data, "dirty": dirty},
                )
                return
        self._send(mk.INV_ACK_ID, msg.src, msg.line)

    def _on_put_ack(self, msg: Message) -> None:
        obs = self._obs
        if obs is not None:
            obs.wb_close(self.node, msg.line)
        self._evicting.pop(msg.line, None)

    def _on_nack(self, msg: Message) -> None:
        """Bounced by a directory mid-transition: drop tone, retry later."""
        self._nacks()
        obs = self._obs
        if obs is not None:
            obs.miss_nack(self.node, msg.line)
        mshr = self.mshrs.get(msg.line)
        if mshr is None:
            return  # the line arrived by other means (e.g. BrWirUpgr) already
        if msg.payload.get("req_serial") != mshr.request_serial:
            # A bounce for a superseded request: the current request is still
            # being (or will be) answered. Acting on it would release the
            # tone early and spawn a duplicate request.
            return
        if mshr.tone_pending and self.tone is not None:
            self.tone.drop(msg.line, self.node)
            mshr.tone_pending = False
        delay = NACK_RETRY_CYCLES + self._rng.randint(0, 7)
        line = msg.line
        self.sim.schedule(delay, lambda: self._retry_request(line))

    def _retry_request(self, line: int) -> None:
        mshr = self.mshrs.get(line)
        if mshr is None:
            return  # completed meanwhile (e.g. WirUpgr arrived)
        obs = self._obs
        if obs is not None:
            obs.miss_retry(self.node, line)
        entry = self.array.lookup(line, touch=False)
        is_sharer = entry is not None and entry.state == SHARED
        self._send_request(mshr, line, mshr.is_write, is_sharer)

    #: kind id -> unbound handler. Ids interned after the protocol set (test
    #: kinds like "Martian") fall off the end and raise ProtocolError above.
    _WIRED_DISPATCH: List = mk.kind_table()
    for _kid, _handler in (
        (mk.DATA_ID, _on_data),
        (mk.DATA_E_ID, _on_data),
        (mk.FWD_DATA_ID, _on_data),
        (mk.GRANT_X_ID, _on_grant_x),
        (mk.WIR_UPGR_ID, _on_wir_upgr),
        (mk.FWD_GETS_ID, _on_fwd_gets),
        (mk.FWD_GETX_ID, _on_fwd_getx),
        (mk.INV_ID, _on_inv),
        (mk.PUT_ACK_ID, _on_put_ack),
        (mk.NACK_ID, _on_nack),
    ):
        _WIRED_DISPATCH[_kid] = _handler
    del _kid, _handler

    # -------------------------------------------------- wireless frame side

    def handle_frame(self, frame: WirelessFrame) -> None:
        """Entry point for broadcast frames heard by this tile's transceiver."""
        monitor = self._monitor
        if monitor is not None:
            monitor.touch(frame.line)
        kid = frame.kind_id
        if kid == mk.WIR_UPD_ID:
            self._on_frame_upd(frame)
        elif kid == mk.BR_WIR_UPGR_ID:
            self._on_frame_upgrade(frame)
        elif kid == mk.WIR_DWGR_ID:
            self._on_frame_downgrade(frame)
        elif kid == mk.WIR_INV_ID:
            self._on_frame_invalidate(frame)

    def _on_frame_upd(self, frame: WirelessFrame) -> None:
        if frame.src == self.node:
            return  # our own write merged at the commit point already
        entry = self.array.lookup(frame.line, touch=False)
        if entry is not None and entry.state == WIRELESS:
            entry.data[frame.word] = frame.value
            entry.update_count += 1
            if (
                entry.update_count >= self._update_threshold
                and not entry.pinned
                and frame.line not in self._pending_wireless
            ):
                self._self_invalidate(entry)
        # An in-flight RMW observed an update to its line: squash and retry
        # (paper Section IV-C). The update above was applied first, so the
        # retried RMW reads the fresh value.
        self._squash_rmw(frame.line, wireless_retry=True)

    def _on_frame_upgrade(self, frame: WirelessFrame) -> None:
        line = frame.line
        entry = self.array.lookup(line, touch=False)
        mshr = self.mshrs.get(line)
        if entry is not None and entry.state == SHARED:
            entry.state = WIRELESS
            entry.update_count = 0
            entry.dirty = False
            if mshr is not None:
                # Our wired upgrade is moot (the directory will discard it);
                # the pending store retries and now finds the line in W.
                self._complete_mshr(line)
            if self.tone is not None:
                self.tone.drop(line, self.node)
            return
        if mshr is not None:
            # Case (iii): we asked for the line via wired; the tone drops
            # when the WirUpgr (or a bounce) arrives.
            mshr.tone_pending = True
            return
        if self.tone is not None:
            self.tone.drop(line, self.node)  # case (i): we do not have the line

    def _on_frame_downgrade(self, frame: WirelessFrame) -> None:
        line = frame.line
        entry = self.array.lookup(line, touch=False)
        if entry is not None and entry.state == WIRELESS:
            entry.state = SHARED
            entry.update_count = 0
            self._send(
                mk.WIR_DWGR_ACK_ID,
                self.amap.home_of(line),
                line,
                {"core": self.node},
            )
            self._reissue_pending_writes(line)
        self._squash_rmw(line, wireless_retry=False)

    def _on_frame_invalidate(self, frame: WirelessFrame) -> None:
        line = frame.line
        entry = self.array.lookup(line, touch=False)
        if entry is not None and entry.state == WIRELESS:
            self.array.remove(line)
            self._reissue_pending_writes(line)
        self._squash_rmw(line, wireless_retry=False)

    # --------------------------------------------------- wireless datapath

    def _store_wireless(self, entry: CacheLine, address: int, value: int, on_done) -> None:
        """W-state store: broadcast WirUpd, merge locally at the commit point."""
        if self.wireless is None:
            raise ProtocolError("wireless store on a machine without a WNoC")
        line = self.amap.line_of(address)
        word = self.amap.word_of(address)
        entry.update_count = 0
        obs = self._obs
        if obs is not None:
            obs.event(self.node, "wless.store", line, f"word={word}")
        frame = WirelessFrame.acquire(mk.WIR_UPD_ID, self.node, line, word, value)
        pending = _PendingWirelessWrite(None, address, value, on_done)

        def commit() -> None:
            self._wireless_writes()
            self._wireless_writes_total()
            resident = self.array.lookup(line, touch=False)
            if resident is not None and resident.state == WIRELESS:
                resident.data[word] = value
                resident.update_count = 0
            self._drop_pending(line, pending, unpin=True)
            on_done()

        pending.request = self.wireless.transmit(frame, on_commit=commit)
        bucket = self._pending_wireless.setdefault(line, [])
        if not bucket:
            entry.pinned += 1
        bucket.append(pending)

    def _drop_pending(self, line: int, pending: _PendingWirelessWrite, unpin: bool) -> None:
        bucket = self._pending_wireless.get(line)
        if bucket is None:
            return
        if pending in bucket:
            bucket.remove(pending)
        if not bucket:
            del self._pending_wireless[line]
            if unpin:
                resident = self.array.lookup(line, touch=False)
                if resident is not None and resident.pinned:
                    resident.pinned -= 1

    def _reissue_pending_writes(self, line: int) -> None:
        """The line left W under us: squash queued WirUpds, retry via wired."""
        bucket = self._pending_wireless.pop(line, None)
        if not bucket:
            return
        obs = self._obs
        if obs is not None:
            obs.event(self.node, "wless.reissue", line, f"writes={len(bucket)}")
        resident = self.array.lookup(line, touch=False)
        if resident is not None and resident.pinned:
            resident.pinned -= 1
        for pending in bucket:
            if pending.request is not None and not pending.request.cancel():
                continue  # committed already; its own callback completes it
            address, value, on_done = pending.address, pending.value, pending.on_done
            self.sim.schedule(1, lambda a=address, v=value, d=on_done: self._do_store(a, v, d))

    def _rmw_wireless(self, entry: CacheLine, address: int, on_done) -> None:
        """Wireless read-modify-write with channel-monitored atomicity."""
        if self.wireless is None:
            raise ProtocolError("wireless RMW on a machine without a WNoC")
        line = self.amap.line_of(address)
        word = self.amap.word_of(address)
        old = entry.data.get(word, 0)
        obs = self._obs
        if obs is not None:
            obs.event(self.node, "rmw.issue", line, f"word={word}")
        entry.pinned += 1
        watch: Dict = {"address": address, "on_done": on_done}

        def commit() -> None:
            self._wireless_writes()
            self._wireless_writes_total()
            self._rmw_watch.pop(line, None)
            resident = self.array.lookup(line, touch=False)
            if resident is not None:
                if resident.state == WIRELESS:
                    resident.data[word] = old + 1
                    resident.update_count = 0
                if resident.pinned:
                    resident.pinned -= 1
            on_done(old)

        frame = WirelessFrame.acquire(mk.WIR_UPD_ID, self.node, line, word, old + 1)
        watch["request"] = self.wireless.transmit(frame, on_commit=commit)
        self._rmw_watch[line] = watch

    def _squash_rmw(self, line: int, wireless_retry: bool) -> None:
        """Cancel an in-flight wireless RMW on this line and retry it whole."""
        watch = self._rmw_watch.get(line)
        if watch is None:
            return
        if not watch["request"].cancel():
            return  # already committed: its commit callback finishes the op
        obs = self._obs
        if obs is not None:
            obs.event(self.node, "rmw.squash", line)
        del self._rmw_watch[line]
        resident = self.array.lookup(line, touch=False)
        if resident is not None and resident.pinned:
            resident.pinned -= 1
        address, on_done = watch["address"], watch["on_done"]
        # Jittered retry: when one commit squashes dozens of contending
        # RMWs (a barrier counter), re-issuing them all on the next cycle
        # recreates the collision storm that just resolved.
        delay = 1 + self._rng.randint(0, 31)
        self.sim.schedule(delay, lambda: self._do_rmw(address, on_done))
        if not wireless_retry:
            return  # line left W: the retry goes down the wired path

    def _self_invalidate(self, entry: CacheLine) -> None:
        """UpdateCount saturated: this core stopped using the line (III-B2)."""
        self._self_invalidations()
        line = entry.line
        obs = self._obs
        if obs is not None:
            obs.event(self.node, "l1.self_inv", line)
        self.array.remove(line)
        self._send(mk.PUTW_ID, self.amap.home_of(line), line)
