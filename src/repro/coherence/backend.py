"""Pluggable coherence-protocol backend registry.

A *backend* bundles everything that makes a directory protocol a
protocol: the cache-side state machine (which stable states satisfy a
load or a store), the directory-side controller (entry format and
transaction FSM), and the slice of the interned message vocabulary the
home node consumes.  :class:`~repro.system.Manycore` builds a machine
from whatever backend ``config.protocol`` names, so every harness —
litmus, fuzz, figures, campaigns, the batched kernel — is generic over
protocols.

Registering a backend is one call::

    register_backend(ProtocolBackend(
        name="my_protocol",
        description="...",
        uses_wireless=False,
        uses_sharer_threshold=False,
        readable_states=frozenset({MODIFIED, EXCLUSIVE, SHARED}),
        writable_states=frozenset({MODIFIED, EXCLUSIVE}),
        directory_kinds=(...interned kind names...),
        cache_factory=...,
        directory_factory=...,
    ))

Contract highlights (docs/PROTOCOLS.md has the full version):

* ``readable_states`` / ``writable_states`` are the *cache-side*
  permission sets.  They are per-backend precisely so a backend cannot
  silently inherit WiDir's W-state readability (the historical
  module-level frozenset import in ``cache.py``).
* ``directory_kinds`` scopes the message vocabulary: the wired router
  only forwards those kind_ids to the home node, everything else goes
  to the cache controller.  New kinds interned past
  ``messages.NUM_PROTOCOL_KINDS`` never perturb other backends'
  dispatch tables.
* Directory entries must keep the ``sharers``-set / ``owner`` /
  ``sharer_count`` idiom so the SoA metadata planes
  (:mod:`repro.coherence.dir_soa`) remain a faithful mirror.
* Factories receive the exact constructor signatures of the stock
  controllers; importing controller modules is deferred into the
  factories to keep this module import-light (config validation pulls
  it in).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Tuple

from repro.coherence import messages as mk
from repro.config.registry import Registry
from repro.coherence.states import (
    EXCLUSIVE,
    MODIFIED,
    SHARED,
    WIRELESS,
)

#: Message kinds every directory controller consumes (the MESI core).
BASE_DIRECTORY_KINDS: Tuple[str, ...] = (
    mk.GETS,
    mk.GETX,
    mk.PUTS,
    mk.PUTM,
    mk.PUTW,
    mk.INV_ACK,
    mk.INV_ACK_DATA,
    mk.WB_DATA,
    mk.FWD_ACK,
    mk.WIR_UPGR_ACK,
    mk.WIR_DWGR_ACK,
)


@dataclass(frozen=True)
class ProtocolBackend:
    """Everything the machine needs to instantiate one coherence protocol."""

    name: str
    description: str
    #: True when the machine must build the wireless plane (WNoC channel +
    #: tone network) for this protocol.
    uses_wireless: bool
    #: True when ``max_wired_sharers`` is a meaningful knob for this
    #: protocol (drives the ``/tN`` sweep-label suffix and the threshold
    #: litmus variants).
    uses_sharer_threshold: bool
    #: Cache-line states a load may hit in.
    readable_states: frozenset
    #: Cache-line states a store may hit in (without an upgrade).
    writable_states: frozenset
    #: Interned kind *names* routed to the directory at the home node.
    directory_kinds: Tuple[str, ...]
    #: ``(sim, node, config, amap, noc, stats, rng, wireless, tone) ->``
    #: cache controller.
    cache_factory: Callable = field(repr=False, default=None)
    #: ``(sim, node, config, amap, noc, memory_controllers, stats,
    #: wireless, tone) -> directory controller``.
    directory_factory: Callable = field(repr=False, default=None)

    def directory_kind_ids(self) -> frozenset:
        """Dense kind_ids of :attr:`directory_kinds`."""
        return frozenset(mk.kind_id(name) for name in self.directory_kinds)

    def directory_kind_table(self) -> List[bool]:
        """Dense ``kind_id -> bool`` table: True = route to the directory.

        Sized to the full interned vocabulary at call time; ids interned
        by *other* backends simply read False, so routing stays an O(1)
        list index on the hot path.
        """
        table = [False] * mk.num_kinds()
        for kid in self.directory_kind_ids():
            table[kid] = True
        return table


def _load_builtins() -> None:
    """Import the plugin modules that self-register the stock backends."""
    # Imported for their registration side effects; the classic
    # baseline/widir backends are declared below in this module.
    from repro.coherence import hybrid_update  # noqa: F401
    from repro.coherence import phase_priority  # noqa: F401


_REGISTRY: Registry = Registry("protocol backend", _load_builtins)


def register_backend(backend: ProtocolBackend) -> ProtocolBackend:
    """Add ``backend`` to the registry (idempotent for identical re-adds)."""
    return _REGISTRY.register(backend.name, backend)


def get_backend(name: str) -> ProtocolBackend:
    """Look up a backend; raises ``ValueError`` naming the known set."""
    return _REGISTRY.get(name)


def backend_names() -> Tuple[str, ...]:
    """Registered backend names, sorted for stable CLI/docs output."""
    return _REGISTRY.names()


def registered_backends() -> Tuple[ProtocolBackend, ...]:
    """All registered backends, sorted by name."""
    return _REGISTRY.values()


def _baseline_cache(sim, node, config, amap, noc, stats, rng, wireless, tone):
    from repro.coherence.cache import CacheController

    return CacheController(
        sim, node, config, amap, noc, stats, rng, wireless=wireless, tone=tone
    )


def _baseline_directory(
    sim, node, config, amap, noc, memory_controllers, stats, wireless, tone
):
    from repro.coherence.dir_controller import DirectoryController

    return DirectoryController(
        sim,
        node,
        config,
        amap,
        noc,
        memory_controllers,
        stats,
        wireless=wireless,
        tone=tone,
    )


register_backend(
    ProtocolBackend(
        name="baseline",
        description="Directory MESI with invalidation-based sharing (DirB).",
        uses_wireless=False,
        uses_sharer_threshold=False,
        readable_states=frozenset({MODIFIED, EXCLUSIVE, SHARED}),
        writable_states=frozenset({MODIFIED, EXCLUSIVE}),
        directory_kinds=BASE_DIRECTORY_KINDS,
        cache_factory=_baseline_cache,
        directory_factory=_baseline_directory,
    )
)

register_backend(
    ProtocolBackend(
        name="widir",
        description=(
            "WiDir: MESI plus a wireless update-mode W state for "
            "highly-shared lines (the source paper's protocol)."
        ),
        uses_wireless=True,
        uses_sharer_threshold=True,
        readable_states=frozenset({MODIFIED, EXCLUSIVE, SHARED, WIRELESS}),
        writable_states=frozenset({MODIFIED, EXCLUSIVE}),
        directory_kinds=BASE_DIRECTORY_KINDS,
        cache_factory=_baseline_cache,
        directory_factory=_baseline_directory,
    )
)
