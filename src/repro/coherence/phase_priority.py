"""Phase-Priority directory coherence backend (after arXiv 1305.3038).

A wired-only MESI directory protocol in which every request carries the
issuing core's *phase* — a counter the cache bumps each time one of its
misses completes — and a busy directory entry services its deferred
queue in priority order instead of FIFO: notifications first (they
unblock other agents), then requests ordered by ``(phase, src)``.

The effect is age-based fairness: a core that has completed many misses
carries a high phase and yields the directory to cores still working
through earlier phases, so a request can only be overtaken finitely
often — every competitor that wins completes, bumps its phase past the
loser's, and sorts behind it from then on.  The scheme changes *service
order only*; the per-message state machine is stock MESI, which is what
makes it a good differential-harness rival: same final memory images,
different interleavings and latencies.

Pure decision helpers (:func:`pp_select`, :func:`pp_next_phase`) are
kept free of simulator state so hypothesis can property-test them
directly (see ``tests/test_protocol_backends.py``).
"""

from __future__ import annotations

from typing import Sequence, Tuple

from repro.coherence import messages as mk
from repro.coherence.backend import (
    BASE_DIRECTORY_KINDS,
    ProtocolBackend,
    register_backend,
)
from repro.coherence.cache import CacheController
from repro.coherence.dir_controller import DirectoryController
from repro.coherence.directory import DirectoryEntry
from repro.coherence.states import EXCLUSIVE, MODIFIED, SHARED
from repro.noc.message import Message

# ------------------------------------------------------ pure transition fns


def pp_next_phase(phase: int) -> int:
    """Phase counter transition: bumped once per completed miss."""
    return phase + 1


def pp_select(entries: Sequence[Tuple[bool, int, int]]) -> int:
    """Index of the deferred message to service next.

    ``entries`` holds one ``(is_request, phase, src)`` triple per queued
    message, in arrival (FIFO) order.  Non-requests (PutM and friends —
    they unblock *other* transactions) are served first, oldest first;
    requests are served by ascending ``(phase, src)`` with FIFO breaking
    exact ties.
    """
    if not entries:
        raise ValueError("pp_select on an empty queue")
    for index, (is_request, _, _) in enumerate(entries):
        if not is_request:
            return index
    best = 0
    best_key = (entries[0][1], entries[0][2])
    for index in range(1, len(entries)):
        key = (entries[index][1], entries[index][2])
        if key < best_key:
            best, best_key = index, key
    return best


# ------------------------------------------------------------- controllers


class PhasePriorityCacheController(CacheController):
    """Stock MESI cache that phase-tags its requests."""

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        #: This core's phase: the number of misses it has completed.
        self._phase = 0

    def _send_request(self, mshr, line: int, is_write: bool, is_sharer: bool) -> None:
        self._request_serial += 1
        mshr.request_serial = self._request_serial
        kind = mk.GETX_ID if is_write else mk.GETS_ID
        self._send(
            kind,
            self.amap.home_of(line),
            line,
            {
                "is_sharer": is_sharer,
                "req_serial": mshr.request_serial,
                "phase": self._phase,
            },
        )

    def _complete_mshr(self, line: int) -> None:
        super()._complete_mshr(line)
        self._phase = pp_next_phase(self._phase)


class PhasePriorityDirectoryController(DirectoryController):
    """Stock MESI directory with priority-ordered deferred service."""

    def _pop_deferred(self, entry: DirectoryEntry) -> Message:
        deferred = entry.deferred
        if len(deferred) == 1:
            return deferred.popleft()
        index = pp_select(
            [
                (
                    msg.kind_id == mk.GETS_ID or msg.kind_id == mk.GETX_ID,
                    (msg.payload or {}).get("phase", 0),
                    msg.src,
                )
                for msg in deferred
            ]
        )
        msg = deferred[index]
        del deferred[index]
        return msg


# ------------------------------------------------------------ registration


def _pp_cache(sim, node, config, amap, noc, stats, rng, wireless, tone):
    return PhasePriorityCacheController(
        sim, node, config, amap, noc, stats, rng, wireless=wireless, tone=tone
    )


def _pp_directory(
    sim, node, config, amap, noc, memory_controllers, stats, wireless, tone
):
    return PhasePriorityDirectoryController(
        sim,
        node,
        config,
        amap,
        noc,
        memory_controllers,
        stats,
        wireless=wireless,
        tone=tone,
    )


register_backend(
    ProtocolBackend(
        name="phase_priority",
        description=(
            "MESI with phase-tagged requests and priority-ordered "
            "directory service (arXiv 1305.3038)."
        ),
        uses_wireless=False,
        uses_sharer_threshold=False,
        readable_states=frozenset({MODIFIED, EXCLUSIVE, SHARED}),
        writable_states=frozenset({MODIFIED, EXCLUSIVE}),
        directory_kinds=BASE_DIRECTORY_KINDS,
        cache_factory=_pp_cache,
        directory_factory=_pp_directory,
    )
)
