"""Cache coherence protocols.

Two protocols share one code base, exactly as in the paper:

* **Baseline** — an invalidation-based MESI directory protocol with a
  Dir_i_B limited-pointer scheme (``i`` sharer pointers plus a broadcast
  bit). Implemented by :class:`~repro.coherence.cache.CacheController` and
  :class:`~repro.coherence.dir_controller.DirectoryController` with
  ``wireless=None``.
* **WiDir** — the same controllers with a wireless channel attached, which
  enables the W (Wireless) state and the transitions of the paper's
  Tables I and II: BrWirUpgr/WirUpgr/WirUpgrAck, WirUpd, PutW,
  WirDwgr/WirDwgrAck, and WirInv, supported by the Jamming and ToneAck
  primitives.

The directory is *blocking*: an entry engaged in a transaction defers new
requests (the paper's "buffer" option for busy entries) while still accepting
the messages that complete the in-flight transaction.
"""

from repro.coherence.cache import CacheController
from repro.coherence.checker import CoherenceChecker
from repro.coherence.dir_controller import DirectoryController
from repro.coherence.directory import DirectoryArray, DirectoryEntry
from repro.coherence.states import (
    DIR_EXCLUSIVE,
    DIR_INVALID,
    DIR_SHARED,
    DIR_WIRELESS,
    EXCLUSIVE,
    INVALID,
    MODIFIED,
    SHARED,
    WIRELESS,
)

__all__ = [
    "CacheController",
    "CoherenceChecker",
    "DirectoryArray",
    "DirectoryController",
    "DirectoryEntry",
    "DIR_EXCLUSIVE",
    "DIR_INVALID",
    "DIR_SHARED",
    "DIR_WIRELESS",
    "EXCLUSIVE",
    "INVALID",
    "MODIFIED",
    "SHARED",
    "WIRELESS",
]
