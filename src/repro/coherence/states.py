"""Coherence state names.

Private-cache states are the four MESI states plus the paper's Wireless (W)
state. Directory states mirror them from the home node's point of view:
``E`` covers "exclusive at one owner, possibly modified" since a silent
E->M upgrade is invisible to the directory.
"""

# Private (L1) cache states.
MODIFIED = "M"
EXCLUSIVE = "E"
SHARED = "S"
INVALID = "I"
WIRELESS = "W"

#: States in which the local cache may satisfy a load.
READABLE_STATES = frozenset({MODIFIED, EXCLUSIVE, SHARED, WIRELESS})
#: States in which the local cache may satisfy a store without a transaction.
WRITABLE_STATES = frozenset({MODIFIED, EXCLUSIVE})

# Directory states.
DIR_INVALID = "I"
DIR_SHARED = "S"
DIR_EXCLUSIVE = "E"
DIR_WIRELESS = "W"
