"""The home-node directory controller (one LLC slice + directory slice).

Implements every directory transition of the paper's Figure 4b / Table II.
The controller is *blocking*: a busy entry defers new GetS/GetX requests
(except during an S->W transition, where it bounces them with a Nack so the
requesters can drop their ToneAck tones — Section III-B1, completion case
iii) while always accepting the bookkeeping messages that complete the
in-flight transaction.

Transaction types carried in ``entry.transaction["type"]``:

=========== ===========================================================
fetch       cold miss: line being read from off-chip memory
inv_collect S-state write: invalidations out, acks being collected
fwd_gets    E-state read: forwarded to the owner, awaiting its WBData
fwd_getx    E-state write: forwarded to the owner, awaiting its FwdAck
s_to_w      BrWirUpgr broadcast, jamming on, ToneAck in progress
w_join      WirUpgr sent to a new wireless sharer, awaiting WirUpgrAck
w_to_s      WirDwgr broadcast, WirDwgrAcks being collected
recall_s    LLC eviction of a Shared line (invalidation + ack collect)
recall_e    LLC eviction of an Exclusive line (data recall from owner)
evict_w     LLC eviction of a Wireless line (WirInv broadcast)
=========== ===========================================================

Paper-deviation note (documented in DESIGN.md): Table II states that a
received WirUpd "increments SharerCount". Doing so would inflate the count
on every wireless write and the line could never return to S; the clearly
intended behaviour — and the one implemented here — is that the home node
merges the update into its LLC copy and marks it dirty.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.coherence import messages as mk
from repro.coherence.directory import DirectoryArray, DirectoryEntry
from repro.coherence.states import (
    DIR_EXCLUSIVE,
    DIR_INVALID,
    DIR_SHARED,
    DIR_WIRELESS,
)
from repro.config.system import SystemConfig
from repro.engine.errors import ProtocolError
from repro.engine.simulator import Simulator
from repro.mem.address import AddressMap
from repro.mem.line_data import line_data
from repro.mem.memory_controller import MemoryController
from repro.noc.mesh import MeshNetwork
from repro.noc.message import Message
from repro.stats.collectors import StatsRegistry
from repro.wireless.channel import WirelessDataChannel
from repro.wireless.frames import WirelessFrame
from repro.wireless.tone import ToneChannel

#: Figure 5 bins: number of sharers updated per wireless write.
SHARER_BINS = ((0, 5), (6, 10), (11, 25), (26, 49), (50, None))

#: Polling period while a full LLC set has only busy (unevictable) ways.
SET_FULL_RETRY_CYCLES = 16

#: Recovery bound for W->S: every genuine wireless sharer hears the WirDwgr
#: broadcast within one frame time and its wired ack arrives within the
#: mesh's bounded latency. SharerCount is only a *count* (the paper's design
#: keeps no identities in W), so transient races can leave it an
#: over-approximation; once this many cycles pass, the missing acks cannot
#: correspond to real sharers and the transition closes with the acks in
#: hand. A straggling real ack is re-integrated by the late-ack path.
W_TO_S_RECOVERY_CYCLES = 1500


class DirectoryController:
    """Directory + LLC slice for all lines homed at one tile."""

    def __init__(
        self,
        sim: Simulator,
        node: int,
        config: SystemConfig,
        amap: AddressMap,
        noc: MeshNetwork,
        memory_controllers: List[MemoryController],
        stats: StatsRegistry,
        wireless: Optional[WirelessDataChannel] = None,
        tone: Optional[ToneChannel] = None,
    ) -> None:
        self.sim = sim
        self.node = node
        self.config = config
        self.amap = amap
        self.noc = noc
        self.memory_controllers = memory_controllers
        self.wireless = wireless
        self.tone = tone
        self.array = DirectoryArray(config.l2.num_sets, config.l2.associativity)
        self._l2_latency = config.l2.round_trip_cycles
        self._max_wired = config.directory.max_wired_sharers
        self._num_pointers = config.directory.num_pointers
        self._widir = config.uses_wireless and wireless is not None
        #: Online invariant monitor hook (set by OnlineInvariantMonitor
        #: .install(); None — the default — costs one attribute test per
        #: message/frame and nothing else).
        self._monitor = None
        #: Observability hook (set by Observability.install(); None — the
        #: default — costs one attribute test per hook site and nothing
        #: else; see repro.obs.hooks).
        self._obs = None

        # Hot-path counters are stored as bound ``Counter.add`` methods
        # (see StatsRegistry.adder): one call, no per-event attribute walk.
        s = stats
        self._requests = s.adder(f"dir.{node}.requests")
        self._nacks = s.adder(f"dir.{node}.nacks")
        self._s_to_w = s.adder("dir.total.s_to_w")
        self._w_to_s = s.adder("dir.total.w_to_s")
        self._w_to_s_recoveries = s.adder("dir.total.w_to_s_recoveries")
        self._w_joins = s.adder("dir.total.w_joins")
        self._w_evictions = s.adder("dir.total.w_evictions")
        self._llc_evictions = s.adder("dir.total.llc_evictions")
        self._llc_accesses = s.adder("dir.total.llc_accesses")
        self._bcast_invs = s.adder("dir.total.broadcast_invalidations")
        self._inv_sent = s.adder("dir.total.invalidations_sent")
        self._sharers_per_update = s.histogram("widir.sharers_per_update", SHARER_BINS)
        self._sharers_exact = s.exact_histogram("widir.sharers_per_update_exact")

    # ----------------------------------------------------------- helpers

    def _memory_for(self, line: int) -> MemoryController:
        return self.memory_controllers[
            self.amap.controller_of(line) % len(self.memory_controllers)
        ]

    def _send(
        self,
        kind,
        dst: int,
        line: int,
        payload: Optional[dict] = None,
        with_llc_latency: bool = False,
    ) -> None:
        delay = self._l2_latency if with_llc_latency else 1
        self.noc.send(
            Message.acquire(kind, self.node, dst, line, payload), extra_delay=delay
        )

    def _send_inv_fanout(self, targets, line: int) -> None:
        """Spray INVs at every target through the mesh's multicast path.

        One call batches the per-message counters/route bookkeeping; the
        delivery schedule is identical to sending the INVs one by one in
        iteration order (see :meth:`MeshNetwork.send_multicast`).
        """
        self._inv_sent(len(targets))
        node = self.node
        self.noc.send_multicast(
            [Message.acquire(mk.INV_ID, node, target, line) for target in targets],
            extra_delay=1,
        )

    def _note_pointer_overflow(self, entry: DirectoryEntry) -> None:
        """Record that the sharer set no longer fits the limited pointers.

        Under Dir_i_B a broadcast bit is set; under Dir_i_CV_r the entry
        switches to a coarse region vector covering the current sharers.
        Either stays set until the entry leaves the Shared state.
        """
        if len(entry.sharers) <= self._num_pointers:
            return
        directory = self.config.directory
        if directory.scheme == "DirCV":
            region = directory.coarse_region_size
            for sharer in entry.sharers:
                entry.coarse_regions.add(sharer // region)
        else:
            entry.broadcast = True

    def _unbusy(self, entry: DirectoryEntry) -> None:
        """Close the current transaction and make forward progress."""
        obs = self._obs
        if obs is not None:
            obs.dir_close(self.node, entry.line)
        entry.busy = False
        entry.transaction = None
        # A PutW processed mid-transaction may have left the wireless sharer
        # count at/below the threshold: the W->S downgrade runs first.
        if self._maybe_downgrade(entry):
            return
        while entry.deferred and not entry.busy:
            self.handle_message(self._pop_deferred(entry))

    def _maybe_downgrade(self, entry: DirectoryEntry) -> bool:
        """Backend hook: leave the sharing mode when it stops paying off.

        Called with the entry idle (not busy).  Returns True when a new
        transaction was started (deferred service must wait for it).
        """
        if (
            entry.state == DIR_WIRELESS
            and entry.sharer_count <= self._max_wired
        ):
            self._start_w_to_s(entry)
            return True
        return False

    def _pop_deferred(self, entry: DirectoryEntry) -> Message:
        """Backend hook: choose the next deferred message to service.

        The stock protocols are FIFO; priority-ordered backends override
        this (the deque element chosen must be *removed* before return).
        """
        return entry.deferred.popleft()

    # ------------------------------------------------------ wired ingress

    def handle_message(self, msg: Message) -> None:
        """Entry point for wired messages addressed to this home node."""
        monitor = self._monitor
        if monitor is not None:
            monitor.touch(msg.line)
        kid = msg.kind_id
        if kid == mk.GETS_ID or kid == mk.GETX_ID:
            self._on_request(msg)
            return
        table = self._DISPATCH
        handler = table[kid] if kid < len(table) else None
        if handler is None:
            raise ProtocolError(f"directory {self.node} cannot handle {msg.kind}")
        handler(self, self.array.lookup(msg.line, touch=False), msg)

    # ------------------------------------------------------ request path

    def _on_request(self, msg: Message) -> None:
        self._requests()
        self._llc_accesses()
        entry = self.array.lookup(msg.line)
        if entry is None:
            self._allocate_and_fetch(msg)
            return
        if entry.busy:
            transaction = entry.transaction or {}
            if transaction.get("type") == "s_to_w":
                # Bounce so the requester can drop its ToneAck tone. The
                # serial lets the cache discard bounces of superseded sends.
                self._nacks()
                self._send(
                    mk.NACK_ID,
                    msg.src,
                    msg.line,
                    {"req_serial": msg.payload.get("req_serial")},
                )
            elif transaction.get("type") == "w_join" and msg.kind_id == mk.GETX_ID and (
                msg.payload.get("is_sharer")
            ):
                # Upgrade racing a join: bounce (see _req_wireless; a pure
                # discard deadlocks a requester holding a stale S copy).
                self._nacks()
                self._send(
                    mk.NACK_ID,
                    msg.src,
                    msg.line,
                    {"req_serial": msg.payload.get("req_serial")},
                )
            elif transaction.get("type") == "w_join":
                # Another new sharer while a join is in flight: share the
                # jam window instead of serializing the joins.
                self._join_wireless_sharer(entry, msg)
            else:
                obs = self._obs
                if obs is not None:
                    obs.dir_defer(self.node, msg.line, msg.kind)
                msg.retain()  # parked in the deferred queue past delivery
                entry.deferred.append(msg)
            return
        state = entry.state
        if state == DIR_INVALID:
            self._req_invalid(entry, msg)
        elif state == DIR_SHARED:
            self._req_shared(entry, msg)
        elif state == DIR_EXCLUSIVE:
            self._req_exclusive(entry, msg)
        elif state == DIR_WIRELESS:
            self._req_wireless(entry, msg)
        else:  # pragma: no cover - states are closed above
            raise ProtocolError(f"unknown directory state {state!r}")

    def _allocate_and_fetch(self, msg: Message) -> None:
        if self.array.needs_victim(msg.line):
            victim = self.array.victim_for(msg.line)
            if victim is None:
                # Every way is mid-transaction; poll until one settles.
                msg.retain()  # survives past this delivery for the retry
                self.sim.schedule(
                    SET_FULL_RETRY_CYCLES, lambda: self.handle_message(msg)
                )
                return
            self._start_entry_eviction(victim)
            msg.retain()  # survives past this delivery for the retry
            self.sim.schedule(SET_FULL_RETRY_CYCLES, lambda: self.handle_message(msg))
            return
        entry = self.array.insert(msg.line)
        self._req_invalid(entry, msg)

    def _req_invalid(self, entry: DirectoryEntry, msg: Message) -> None:
        if entry.has_data:
            self._grant_exclusive(entry, msg.src)
            return
        entry.busy = True
        entry.transaction = {"type": "fetch", "requester": msg.src}
        obs = self._obs
        if obs is not None:
            obs.dir_open(self.node, entry.line, "fetch")
        line = entry.line

        def on_fetched(data) -> None:
            entry.data = line_data(data)
            entry.has_data = True
            entry.dirty = False
            requester = entry.transaction["requester"]
            self._grant_exclusive(entry, requester)
            self._unbusy(entry)

        self._memory_for(line).fetch_line(line, on_fetched)

    def _grant_exclusive(self, entry: DirectoryEntry, requester: int) -> None:
        entry.state = DIR_EXCLUSIVE
        entry.owner = requester
        entry.sharers.clear()
        entry.clear_imprecision()
        self._send(
            mk.DATA_E_ID,
            requester,
            entry.line,
            {"data": line_data(entry.data)},
            with_llc_latency=True,
        )

    def _req_shared(self, entry: DirectoryEntry, msg: Message) -> None:
        requester = msg.src
        if msg.kind_id == mk.GETS_ID:
            if requester in entry.sharers:
                # Duplicate (eviction raced): idempotent re-grant.
                self._send(
                    mk.DATA_ID, requester, entry.line,
                    {"data": line_data(entry.data)}, with_llc_latency=True,
                )
                return
            if self._widir and len(entry.sharers) + 1 > self._max_wired:
                self._start_s_to_w(entry, requester)
                return
            entry.sharers.add(requester)
            self._note_pointer_overflow(entry)
            self._send(
                mk.DATA_ID, requester, entry.line,
                {"data": line_data(entry.data)}, with_llc_latency=True,
            )
            return

        # GetX: an upgrade (requester already shares) or a write miss.
        is_upgrade = requester in entry.sharers
        if self._widir and not is_upgrade and len(entry.sharers) + 1 > self._max_wired:
            self._start_s_to_w(entry, requester)
            return
        targets = entry.known_sharers(
            self.config.num_cores,
            exclude=requester,
            coarse_region_size=self.config.directory.coarse_region_size,
        )
        if not targets:
            # Sole sharer upgrading (or stale empty set): grant immediately.
            entry.state = DIR_EXCLUSIVE
            entry.owner = requester
            entry.sharers.clear()
            entry.clear_imprecision()
            if is_upgrade:
                self._send(mk.GRANT_X_ID, requester, entry.line)
            else:
                self._send(
                    mk.DATA_E_ID, requester, entry.line,
                    {"data": line_data(entry.data)}, with_llc_latency=True,
                )
            return
        entry.busy = True
        entry.transaction = {
            "type": "inv_collect",
            "requester": requester,
            "pending": set(targets),
            "upgrade": is_upgrade,
        }
        obs = self._obs
        if obs is not None:
            obs.dir_open(self.node, entry.line, "inv_collect")
        if entry.broadcast:
            self._bcast_invs()
        self._send_inv_fanout(targets, entry.line)

    def _finish_inv_collect(self, entry: DirectoryEntry) -> None:
        transaction = entry.transaction
        requester = transaction["requester"]
        entry.state = DIR_EXCLUSIVE
        entry.owner = requester
        entry.sharers.clear()
        entry.clear_imprecision()
        if transaction["upgrade"]:
            self._send(mk.GRANT_X_ID, requester, entry.line)
        else:
            self._send(
                mk.DATA_E_ID, requester, entry.line,
                {"data": line_data(entry.data)}, with_llc_latency=True,
            )
        self._unbusy(entry)

    def _req_exclusive(self, entry: DirectoryEntry, msg: Message) -> None:
        requester = msg.src
        owner = entry.owner
        if owner is None:
            raise ProtocolError(f"E entry 0x{entry.line:x} without an owner")
        if requester == owner:
            # A stale duplicate: an earlier (superseded) request from this
            # cache was already answered with ownership. Confirm ownership
            # with a GrantX rather than staying silent — the cache may have
            # a live miss waiting on this very request.
            self._send(mk.GRANT_X_ID, requester, entry.line)
            return
        obs = self._obs
        if msg.kind_id == mk.GETS_ID:
            entry.busy = True
            entry.transaction = {"type": "fwd_gets", "requester": requester}
            if obs is not None:
                obs.dir_open(self.node, entry.line, "fwd_gets")
            self._send(mk.FWD_GETS_ID, owner, entry.line, {"requester": requester})
        else:
            entry.busy = True
            entry.transaction = {"type": "fwd_getx", "requester": requester}
            if obs is not None:
                obs.dir_open(self.node, entry.line, "fwd_getx")
            self._send(mk.FWD_GETX_ID, owner, entry.line, {"requester": requester})

    def _req_wireless(self, entry: DirectoryEntry, msg: Message) -> None:
        requester = msg.src
        if msg.kind_id == mk.GETX_ID and msg.payload.get("is_sharer"):
            # Table II, W->W case 2: the requester already heard BrWirUpgr
            # (or will momentarily) and retries its write wirelessly — its
            # miss is already satisfied, so a bounce is ignored. A requester
            # holding a *stale* S copy (late-downgrade straggler), however,
            # still has a live miss: the bounce makes it retry, and once its
            # stale copy is invalidated the retry arrives as a normal join.
            self._nacks()
            self._send(
                mk.NACK_ID,
                requester,
                entry.line,
                {"req_serial": msg.payload.get("req_serial")},
            )
            return
        # Table II, W->W case 1: a new sharer joins over the wired network.
        self._w_joins()
        entry.busy = True
        transaction = {"type": "w_join", "pending": {requester}, "settled": False}
        entry.transaction = transaction
        obs = self._obs
        if obs is not None:
            obs.dir_open(self.node, entry.line, "w_join")
        if self.wireless is not None:
            self.wireless.jam(entry.line)
        # Jamming stops *new* wireless updates, but a frame already past its
        # collision-detect slot still delivers up to the MAC's worst-case
        # airtime later (frame_cycles for BRS; longer for FDMA sub-channels
        # or token rotation). The line snapshot must include it, so the
        # first send waits out that window after the jam engages before
        # reading the LLC. Joiners arriving later piggyback on the same jam
        # window (see _join_wireless_sharer) instead of serializing.
        settle = self.wireless.settle_cycles + 1

        def on_settled() -> None:
            transaction["settled"] = True
            for joiner in sorted(transaction["pending"]):
                self._send_wir_upgr(entry, joiner)

        self.sim.schedule(settle, on_settled)

    def _send_wir_upgr(self, entry: DirectoryEntry, requester: int) -> None:
        self._send(
            mk.WIR_UPGR_ID,
            requester,
            entry.line,
            {"data": line_data(entry.data), "ack_required": True},
            with_llc_latency=True,
        )

    def _join_wireless_sharer(self, entry: DirectoryEntry, msg: Message) -> None:
        """Fold another joiner into an in-flight w_join (shared jam window)."""
        transaction = entry.transaction
        requester = msg.src
        if requester in transaction["pending"]:
            return  # duplicate request; one grant suffices
        self._w_joins()
        transaction["pending"].add(requester)
        if transaction["settled"]:
            # The jam window is already quiescent: grant immediately.
            self._send_wir_upgr(entry, requester)

    # --------------------------------------------------- S <-> W machinery

    def _start_s_to_w(self, entry: DirectoryEntry, requester: int) -> None:
        """Table II S->W: BrWirUpgr + jamming + ToneAck, WirUpgr to requester."""
        if self.wireless is None or self.tone is None:
            raise ProtocolError("S->W transition without wireless hardware")
        self._s_to_w()
        entry.busy = True
        entry.transaction = {
            "type": "s_to_w",
            "requester": requester,
            "requester_left": False,
            "tone_done": False,
            "requester_acked": False,
        }
        obs = self._obs
        if obs is not None:
            obs.dir_open(self.node, entry.line, "s_to_w")
        line = entry.line
        # Jam before broadcasting: the requester may receive its WirUpgr and
        # attempt a wireless write before the BrWirUpgr even wins the channel
        # (the channel exempts the jamming node's own frames).
        self.wireless.jam(line, self.node)
        # Anything already deferred must be bounced or it would hold its
        # ToneAck tone forever while we wait for silence.
        while entry.deferred:
            deferred = entry.deferred.popleft()
            if deferred.kind_id in (mk.GETS_ID, mk.GETX_ID):
                self._nacks()
                self._send(
                    mk.NACK_ID,
                    deferred.src,
                    line,
                    {"req_serial": deferred.payload.get("req_serial")},
                )
            else:
                self.sim.schedule(1, lambda m=deferred: self.handle_message(m))

        participants = set(range(self.config.num_cores))
        transaction = entry.transaction

        def on_tone_silent() -> None:
            transaction["tone_done"] = True
            self._maybe_finish_s_to_w(entry)

        def on_commit() -> None:
            self.tone.begin(line, participants, on_tone_silent)

        frame = WirelessFrame.acquire(mk.BR_WIR_UPGR_ID, self.node, line)
        self.wireless.transmit(frame, on_commit=on_commit)
        # The requester confirms installation with an explicit WirUpgrAck.
        # The ToneAck usually covers it (completion case iii), but a stale
        # bounce can legitimately release its tone before the line arrives;
        # the ack keeps the transition from completing under the requester.
        self._send(
            mk.WIR_UPGR_ID,
            requester,
            line,
            {"data": line_data(entry.data), "ack_required": True},
            with_llc_latency=True,
        )

    def _maybe_finish_s_to_w(self, entry: DirectoryEntry) -> None:
        transaction = entry.transaction or {}
        if not transaction.get("tone_done"):
            return
        if not (transaction.get("requester_acked") or transaction.get("requester_left")):
            return
        self._finish_s_to_w(entry)

    def _finish_s_to_w(self, entry: DirectoryEntry) -> None:
        """ToneAck complete: every node transitioned; the entry becomes W."""
        transaction = entry.transaction or {}
        requester_still_in = 0 if transaction.get("requester_left") else 1
        entry.state = DIR_WIRELESS
        entry.sharer_count = len(entry.sharers) + requester_still_in
        entry.sharers.clear()
        entry.owner = None
        entry.clear_imprecision()
        if self.wireless is not None:
            self.wireless.unjam(entry.line)
        self._unbusy(entry)

    def _start_w_to_s(self, entry: DirectoryEntry) -> None:
        """Table II W->S: WirDwgr broadcast, collect WirDwgrAcks via wired."""
        if self.wireless is None:
            raise ProtocolError("W->S transition without wireless hardware")
        self._w_to_s()
        entry.busy = True
        # ``pending`` = acknowledgments still expected; ``acks`` = received;
        # ``ids`` = cores that will be the Shared-state sharer pointers. A
        # core can ack and then evict its new S copy before the transition
        # closes — it leaves ``ids`` but its ack still counts.
        entry.transaction = {
            "type": "w_to_s",
            "pending": entry.sharer_count,
            "acks": 0,
            "ids": [],
        }
        obs = self._obs
        if obs is not None:
            obs.dir_open(self.node, entry.line, "w_to_s")
        frame = WirelessFrame.acquire(mk.WIR_DWGR_ID, self.node, entry.line)
        transaction = entry.transaction
        if entry.sharer_count == 0:
            # Every wireless sharer already left; the broadcast is only a
            # formality and the transition completes on delivery.
            self.wireless.transmit(
                frame, on_delivered=lambda: self._finish_w_to_s(entry)
            )
            return
        self.wireless.transmit(frame)

        def recover() -> None:
            if entry.transaction is not transaction:
                return  # this downgrade already closed
            self._w_to_s_recoveries()
            transaction["pending"] = transaction["acks"]
            self._finish_w_to_s(entry)

        self.sim.schedule(W_TO_S_RECOVERY_CYCLES, recover)

    def _finish_w_to_s(self, entry: DirectoryEntry) -> None:
        transaction = entry.transaction
        entry.sharers = set(transaction["ids"])
        entry.sharer_count = 0
        entry.owner = None
        entry.clear_imprecision()
        entry.state = DIR_SHARED if entry.sharers else DIR_INVALID
        if entry.dirty:
            self._memory_for(entry.line).writeback_line(entry.line, entry.data)
            entry.dirty = False
        self._unbusy(entry)

    # --------------------------------------------------- completion kinds

    def _on_put_s(self, entry: Optional[DirectoryEntry], msg: Message) -> None:
        if entry is None:
            return
        transaction = entry.transaction or {}
        kind = transaction.get("type")
        if kind == "inv_collect":
            # The evicting sharer may also be a pending invalidation target;
            # its PutS counts as the acknowledgment.
            entry.sharers.discard(msg.src)
            pending = transaction["pending"]
            pending.discard(msg.src)
            if not pending:
                self._finish_inv_collect(entry)
            return
        if kind == "w_to_s":
            ids = transaction["ids"]
            if msg.src in ids:
                ids.remove(msg.src)  # acked, then evicted: not a sharer
            return
        if kind == "s_to_w":
            # A sharer evicted during the transition window; the final
            # SharerCount snapshot must not include it.
            entry.sharers.discard(msg.src)
            return
        if entry.busy:
            if (
                transaction.get("type") == "fwd_gets"
                and msg.src == entry.owner
            ):
                # The old owner downgraded to S for the forward and evicted
                # that copy before the transaction closed; it must not be
                # re-added to the sharer pointers at completion.
                transaction["owner_left"] = True
                return
            entry.sharers.discard(msg.src)
            return  # state normalization happens when the transaction closes
        if entry.state == DIR_WIRELESS:
            # A stale PutS from before an S->W transition: the core left.
            self._wireless_sharer_left(entry)
            return
        entry.sharers.discard(msg.src)
        if entry.state == DIR_SHARED and not entry.sharers:
            entry.state = DIR_INVALID
            entry.clear_imprecision()

    def _on_put_w(self, entry: Optional[DirectoryEntry], msg: Message) -> None:
        if entry is None:
            return
        transaction = entry.transaction or {}
        if transaction.get("type") == "s_to_w":
            # A node that already installed the line in W left again before
            # the transition finished; the SharerCount snapshot must not
            # include it. Only nodes the transition knows about count —
            # anything else is a stale PutW from an older epoch.
            if msg.src in entry.sharers:
                entry.sharers.discard(msg.src)
            elif msg.src == transaction.get("requester"):
                transaction["requester_left"] = True
                self._maybe_finish_s_to_w(entry)
            return
        if transaction.get("type") == "w_to_s":
            # A sharer self-invalidated concurrently with the downgrade; its
            # WirDwgrAck will never come.
            transaction["pending"] -= 1
            if transaction["acks"] >= transaction["pending"]:
                self._finish_w_to_s(entry)
            return
        if entry.state != DIR_WIRELESS:
            return  # stale PutW for a line that already left W
        self._wireless_sharer_left(entry)

    def _wireless_sharer_left(self, entry: DirectoryEntry) -> None:
        entry.sharer_count = max(0, entry.sharer_count - 1)
        if entry.busy:
            return  # re-checked in _unbusy when the transaction closes
        self._maybe_downgrade(entry)

    def _on_put_m(self, entry: Optional[DirectoryEntry], msg: Message) -> None:
        dirty = msg.payload.get("dirty", False)
        data = msg.payload.get("data")
        if entry is None:
            # The entry was recalled/evicted while the PutM was in flight;
            # the data still has to land somewhere authoritative. (The seed
            # copied the payload dict here before the memory controller
            # snapshotted it again — one copy, not two.)
            if dirty and data is not None:
                self._memory_for(msg.line).writeback_line(msg.line, data)
            self._send(mk.PUT_ACK_ID, msg.src, msg.line)
            return
        if entry.busy:
            obs = self._obs
            if obs is not None:
                obs.dir_defer(self.node, msg.line, msg.kind)
            msg.retain()  # parked in the deferred queue past delivery
            entry.deferred.append(msg)
            return
        if entry.state == DIR_EXCLUSIVE and entry.owner == msg.src:
            if dirty and data is not None:
                entry.data = line_data(data)
                entry.dirty = True
                entry.has_data = True
            entry.owner = None
            entry.state = DIR_INVALID
        elif msg.src in entry.sharers:
            # Owner answered a forward from its eviction buffer and became a
            # nominal sharer before this PutM was processed.
            entry.sharers.discard(msg.src)
            if entry.state == DIR_SHARED and not entry.sharers:
                entry.state = DIR_INVALID
                entry.clear_imprecision()
        self._send(mk.PUT_ACK_ID, msg.src, msg.line)

    def _on_inv_ack(
        self, entry: Optional[DirectoryEntry], msg: Message, data: Optional[dict]
    ) -> None:
        if entry is None or not entry.busy:
            return  # late ack for a transaction satisfied by a raced PutS
        transaction = entry.transaction
        kind = transaction.get("type")
        if kind == "inv_collect":
            entry.sharers.discard(msg.src)
            transaction["pending"].discard(msg.src)
            if not transaction["pending"]:
                self._finish_inv_collect(entry)
            return
        if kind == "recall_s":
            transaction["pending"].discard(msg.src)
            if not transaction["pending"]:
                self._finish_recall(entry)
            return
        if kind == "recall_e":
            if data is not None and data.get("dirty"):
                entry.data = line_data(data["data"])
                entry.dirty = True
            self._finish_recall(entry)
            return

    def _on_wb_data(self, entry: Optional[DirectoryEntry], msg: Message) -> None:
        if entry is None or not entry.busy:
            return
        transaction = entry.transaction
        if transaction.get("type") != "fwd_gets":
            return
        entry.data = line_data(msg.payload["data"])
        entry.has_data = True
        if msg.payload.get("dirty"):
            entry.dirty = True
        requester = transaction["requester"]
        old_owner = entry.owner
        entry.state = DIR_SHARED
        entry.sharers = {requester}
        if old_owner is not None and not transaction.get("owner_left"):
            entry.sharers.add(old_owner)
        entry.owner = None
        self._unbusy(entry)

    def _on_fwd_ack(self, entry: Optional[DirectoryEntry], msg: Message) -> None:
        if entry is None or not entry.busy:
            return
        transaction = entry.transaction
        if transaction.get("type") != "fwd_getx":
            return
        entry.owner = transaction["requester"]
        entry.state = DIR_EXCLUSIVE
        self._unbusy(entry)

    def _on_wir_upgr_ack(self, entry: Optional[DirectoryEntry], msg: Message) -> None:
        if entry is None or not entry.busy:
            return
        transaction = entry.transaction or {}
        if transaction.get("type") == "s_to_w":
            if msg.src == transaction.get("requester"):
                transaction["requester_acked"] = True
                self._maybe_finish_s_to_w(entry)
            return
        if transaction.get("type") != "w_join":
            return
        if msg.src not in transaction["pending"]:
            return  # stale duplicate ack
        transaction["pending"].discard(msg.src)
        entry.sharer_count += 1
        if not transaction["pending"]:
            if self.wireless is not None:
                self.wireless.unjam(entry.line)
            self._unbusy(entry)

    def _on_wir_dwgr_ack(self, entry: Optional[DirectoryEntry], msg: Message) -> None:
        if entry is None:
            return
        transaction = entry.transaction if entry.busy else None
        if transaction is None or transaction.get("type") != "w_to_s":
            # A straggler ack: its downgrade transaction already closed (a
            # racing PutW or the recovery bound satisfied it). The acker
            # holds an S copy the directory no longer tracks, and the line
            # may have been written since — the only safe answer is to
            # invalidate that copy. The InvAck matches no transaction and
            # is dropped harmlessly.
            self._send(mk.INV_ID, msg.payload["core"], entry.line)
            return
        transaction["acks"] += 1
        transaction["ids"].append(msg.payload["core"])
        if transaction["acks"] >= transaction["pending"]:
            self._finish_w_to_s(entry)

    # --------------------------------------------------- LLC slice eviction

    def _start_entry_eviction(self, entry: DirectoryEntry) -> None:
        """Make room in the LLC set by recalling/invalidating ``entry``."""
        self._llc_evictions()
        line = entry.line
        obs = self._obs
        if entry.state == DIR_INVALID:
            self._finish_recall(entry)
            return
        if entry.state == DIR_SHARED:
            targets = entry.known_sharers(
                self.config.num_cores,
                coarse_region_size=self.config.directory.coarse_region_size,
            )
            entry.busy = True
            entry.transaction = {"type": "recall_s", "pending": set(targets)}
            if obs is not None:
                obs.dir_open(self.node, line, "recall_s")
            if not targets:
                self._finish_recall(entry)
                return
            self._send_inv_fanout(targets, line)
            return
        if entry.state == DIR_EXCLUSIVE:
            entry.busy = True
            entry.transaction = {"type": "recall_e"}
            if obs is not None:
                obs.dir_open(self.node, line, "recall_e")
            self._send(mk.INV_ID, entry.owner, line, {"needs_data": True})
            return
        self._start_wireless_eviction(entry)

    def _start_wireless_eviction(self, entry: DirectoryEntry) -> None:
        """Backend hook: recall a DIR_WIRELESS entry from the LLC.

        WiDir behaviour (Table II W->I): broadcast WirInv, write back if
        dirty.  Wired-only backends that repurpose the W directory state
        override this.
        """
        self._w_evictions()
        entry.busy = True
        entry.transaction = {"type": "evict_w"}
        obs = self._obs
        if obs is not None:
            obs.dir_open(self.node, entry.line, "evict_w")
        if self.wireless is None:
            raise ProtocolError("evicting a W line without wireless hardware")
        frame = WirelessFrame.acquire(mk.WIR_INV_ID, self.node, entry.line)
        self.wireless.transmit(frame, on_delivered=lambda: self._finish_recall(entry))

    def _finish_recall(self, entry: DirectoryEntry) -> None:
        """The entry is globally invalid: write back and drop it."""
        obs = self._obs
        if obs is not None:
            # Tolerates entries that were never busy (DIR_INVALID fast path):
            # dir_close on a line without an open span is a no-op.
            obs.dir_close(self.node, entry.line)
        if entry.dirty:
            self._memory_for(entry.line).writeback_line(entry.line, entry.data)
        removed = self.array.remove(entry.line)
        # Requests that queued behind the eviction target the same line and
        # must re-dispatch (they will allocate a fresh entry).
        for deferred in removed.deferred:
            self.sim.schedule(1, lambda m=deferred: self.handle_message(m))

    # -------------------------------------------------------- frame ingress

    def handle_frame(self, frame: WirelessFrame) -> None:
        """Wireless frames heard at this tile that concern lines homed here."""
        monitor = self._monitor
        if monitor is not None:
            monitor.touch(frame.line)
        if frame.kind_id != mk.WIR_UPD_ID:
            return
        if self.amap.home_of(frame.line) != self.node:
            return
        entry = self.array.lookup(frame.line, touch=False)
        if entry is None or entry.state != DIR_WIRELESS:
            return
        # Home node merges every wireless update into the LLC copy, which is
        # how the line's data stays authoritative for later joins/downgrades.
        entry.data[frame.word] = frame.value
        entry.dirty = True
        updated = max(0, entry.sharer_count - 1)
        self._sharers_per_update.record(updated)
        self._sharers_exact.record(updated)

    # ----------------------------------------------------- dispatch tables

    def _on_inv_ack_plain(self, entry: Optional[DirectoryEntry], msg: Message) -> None:
        self._on_inv_ack(entry, msg, data=None)

    def _on_inv_ack_data(self, entry: Optional[DirectoryEntry], msg: Message) -> None:
        self._on_inv_ack(entry, msg, data=msg.payload)

    #: kind id -> unbound ``(self, entry, msg)`` handler for everything but
    #: GetS/GetX (which short-circuit in :meth:`handle_message`). Ids
    #: interned after the protocol set (unknown/test kinds) fall off the end
    #: and raise ProtocolError.
    _DISPATCH: List = mk.kind_table()
    for _kid, _handler in (
        (mk.PUTS_ID, _on_put_s),
        (mk.PUTW_ID, _on_put_w),
        (mk.PUTM_ID, _on_put_m),
        (mk.INV_ACK_ID, _on_inv_ack_plain),
        (mk.INV_ACK_DATA_ID, _on_inv_ack_data),
        (mk.WB_DATA_ID, _on_wb_data),
        (mk.FWD_ACK_ID, _on_fwd_ack),
        (mk.WIR_UPGR_ACK_ID, _on_wir_upgr_ack),
        (mk.WIR_DWGR_ACK_ID, _on_wir_dwgr_ack),
    ):
        _DISPATCH[_kid] = _handler
    del _kid, _handler
