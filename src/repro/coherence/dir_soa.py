"""Struct-of-arrays directory metadata: sharer bitmasks as numpy planes.

The object-based :class:`~repro.coherence.directory.DirectoryArray` holds a
:class:`~repro.coherence.directory.DirectoryEntry` per LLC-resident line,
with the sharer set as a Python ``set``. This module keeps the directory
*metadata* — tag, state, owner, sharer bitmask, WiDir sharer count, busy
pin, LRU stamp — in preallocated numpy arrays indexed ``(node, set, way)``,
the owner-bitmask idiom of the directory literature: a sharer set is one
(or a few) 64-bit words, membership is a mask test, invalidation fan-out
targets are a bit scan, and whole-machine sharer histograms (the paper's
Figure 5) are a vectorized popcount.

Per-line semantics mirror the object array operation for operation
(lookup/touch, busy-pinned victim selection, insert/remove), locked by the
hypothesis equivalence suite in ``tests/test_soa_equivalence.py``.
:class:`DirectoryEntryView` is the thin object facade for the verify/obs
subsystems. Transaction context (``transaction``/``deferred``/LLC data
words) stays object-side: it is per-transaction bookkeeping with no
vectorized consumer.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.coherence.states import (
    DIR_EXCLUSIVE,
    DIR_INVALID,
    DIR_SHARED,
    DIR_WIRELESS,
)
from repro.engine.errors import SimulationError

#: Stable state codes for the int8 directory-state plane.
DIR_STATE_CODES = {DIR_INVALID: 0, DIR_SHARED: 1, DIR_EXCLUSIVE: 2, DIR_WIRELESS: 3}
DIR_STATE_NAMES = {code: name for name, code in DIR_STATE_CODES.items()}

NO_TAG = -1
NO_OWNER = -1


class DirectoryEntryView:
    """Attribute facade over one ``(node, set, way)`` directory slot."""

    __slots__ = ("_soa", "_node", "_set", "_way")

    def __init__(self, soa: "DirectoryMetaSoA", node: int, set_index: int, way: int):
        self._soa = soa
        self._node = node
        self._set = set_index
        self._way = way

    @property
    def line(self) -> int:
        return int(self._soa.tags[self._node, self._set, self._way])

    @property
    def state(self) -> str:
        return DIR_STATE_NAMES[int(self._soa.states[self._node, self._set, self._way])]

    @state.setter
    def state(self, value: str) -> None:
        self._soa.states[self._node, self._set, self._way] = DIR_STATE_CODES[value]

    @property
    def owner(self) -> Optional[int]:
        raw = int(self._soa.owners[self._node, self._set, self._way])
        return None if raw == NO_OWNER else raw

    @owner.setter
    def owner(self, value: Optional[int]) -> None:
        self._soa.owners[self._node, self._set, self._way] = (
            NO_OWNER if value is None else value
        )

    @property
    def sharers(self) -> set:
        return self._soa.sharers_of(self._node, self.line)

    @property
    def sharer_count(self) -> int:
        return int(self._soa.sharer_counts[self._node, self._set, self._way])

    @sharer_count.setter
    def sharer_count(self, value: int) -> None:
        self._soa.sharer_counts[self._node, self._set, self._way] = value

    @property
    def busy(self) -> bool:
        return bool(self._soa.busy[self._node, self._set, self._way])

    @busy.setter
    def busy(self, value: bool) -> None:
        self._soa.busy[self._node, self._set, self._way] = bool(value)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"DirectoryEntryView(0x{self.line:x}, {self.state}, "
            f"owner={self.owner}, sharers={sorted(self.sharers)})"
        )


class DirectoryMetaSoA:
    """Per-home-node directory metadata in ``(node, set, way)`` planes.

    ``num_cores`` bounds the sharer bitmask width; masks wider than 64
    cores span multiple uint64 words (``_n_words``), transparently to
    every accessor.
    """

    def __init__(
        self, num_nodes: int, num_sets: int, associativity: int, num_cores: int
    ) -> None:
        if num_sets <= 0 or num_sets & (num_sets - 1):
            raise SimulationError(f"num_sets must be a power of two, got {num_sets}")
        if associativity < 1:
            raise SimulationError("associativity must be >= 1")
        if num_cores < 1:
            raise SimulationError("num_cores must be >= 1")
        self.num_nodes = num_nodes
        self.num_sets = num_sets
        self.associativity = associativity
        self.num_cores = num_cores
        self._mask = num_sets - 1
        self._n_words = (num_cores + 63) // 64
        shape = (num_nodes, num_sets, associativity)
        self.tags = np.full(shape, NO_TAG, dtype=np.int64)
        self.states = np.zeros(shape, dtype=np.int8)
        self.owners = np.full(shape, NO_OWNER, dtype=np.int16)
        #: Sharer bitmask words: bit ``c % 64`` of word ``c // 64`` set when
        #: core ``c`` is a precise sharer.
        self.sharer_masks = np.zeros(shape + (self._n_words,), dtype=np.uint64)
        self.sharer_counts = np.zeros(shape, dtype=np.int16)
        self.busy = np.zeros(shape, dtype=np.bool_)
        self.stamps = np.zeros(shape, dtype=np.int64)
        self._clock = 0
        self._resident = 0

    # ----------------------------------------------------------- primitives

    def __len__(self) -> int:
        return self._resident

    def _way_of(self, node: int, set_index: int, line: int) -> int:
        row = self.tags[node, set_index]
        hits = np.nonzero(row == line)[0]
        return int(hits[0]) if hits.size else -1

    def lookup(self, node: int, line: int, touch: bool = True) -> int:
        """Way of ``line`` at home ``node`` or -1; LRU-touch unless told not
        to — mirroring ``DirectoryArray.lookup``."""
        set_index = line & self._mask
        way = self._way_of(node, set_index, line)
        if way >= 0 and touch:
            self._clock += 1
            self.stamps[node, set_index, way] = self._clock
        return way

    def needs_victim(self, node: int, line: int) -> bool:
        set_index = line & self._mask
        row = self.tags[node, set_index]
        return not (row == line).any() and not (row == NO_TAG).any()

    def victim_for(self, node: int, line: int) -> Optional[int]:
        """Line address of the LRU non-busy entry to evict, or None.

        None is also returned when every way is busy (caller retries) —
        the exact ``DirectoryArray.victim_for`` contract.
        """
        if not self.needs_victim(node, line):
            return None
        set_index = line & self._mask
        idle = np.nonzero(~self.busy[node, set_index])[0]
        if not idle.size:
            return None
        stamps = self.stamps[node, set_index]
        way = int(idle[np.argmin(stamps[idle])])
        return int(self.tags[node, set_index, way])

    def insert(self, node: int, line: int) -> int:
        set_index = line & self._mask
        row = self.tags[node, set_index]
        if (row == line).any():
            raise SimulationError(f"directory entry for 0x{line:x} already present")
        empty = np.nonzero(row == NO_TAG)[0]
        if not empty.size:
            raise SimulationError(
                f"directory set full for 0x{line:x}; evict before insert"
            )
        way = int(empty[0])
        self._clock += 1
        self.tags[node, set_index, way] = line
        self.states[node, set_index, way] = DIR_STATE_CODES[DIR_INVALID]
        self.owners[node, set_index, way] = NO_OWNER
        self.sharer_masks[node, set_index, way] = 0
        self.sharer_counts[node, set_index, way] = 0
        self.busy[node, set_index, way] = False
        self.stamps[node, set_index, way] = self._clock
        self._resident += 1
        return way

    def remove(self, node: int, line: int) -> None:
        set_index = line & self._mask
        way = self._way_of(node, set_index, line)
        if way < 0:
            raise SimulationError(f"directory entry for 0x{line:x} not present")
        self.tags[node, set_index, way] = NO_TAG
        self.states[node, set_index, way] = DIR_STATE_CODES[DIR_INVALID]
        self.owners[node, set_index, way] = NO_OWNER
        self.sharer_masks[node, set_index, way] = 0
        self.sharer_counts[node, set_index, way] = 0
        self.busy[node, set_index, way] = False
        self._resident -= 1

    # ------------------------------------------------------- sharer bitmask

    def add_sharer(self, node: int, line: int, core: int) -> None:
        set_index = line & self._mask
        way = self._way_of(node, set_index, line)
        if way < 0:
            raise SimulationError(f"directory entry for 0x{line:x} not present")
        self.sharer_masks[node, set_index, way, core >> 6] |= np.uint64(
            1 << (core & 63)
        )

    def remove_sharer(self, node: int, line: int, core: int) -> None:
        set_index = line & self._mask
        way = self._way_of(node, set_index, line)
        if way < 0:
            raise SimulationError(f"directory entry for 0x{line:x} not present")
        self.sharer_masks[node, set_index, way, core >> 6] &= np.uint64(
            ~(1 << (core & 63)) & 0xFFFFFFFFFFFFFFFF
        )

    def clear_sharers(self, node: int, line: int) -> None:
        set_index = line & self._mask
        way = self._way_of(node, set_index, line)
        if way < 0:
            raise SimulationError(f"directory entry for 0x{line:x} not present")
        self.sharer_masks[node, set_index, way] = 0

    def is_sharer(self, node: int, line: int, core: int) -> bool:
        set_index = line & self._mask
        way = self._way_of(node, set_index, line)
        if way < 0:
            return False
        word = int(self.sharer_masks[node, set_index, way, core >> 6])
        return bool(word >> (core & 63) & 1)

    def sharers_of(self, node: int, line: int) -> set:
        """The precise sharer set, decoded from the bitmask."""
        set_index = line & self._mask
        way = self._way_of(node, set_index, line)
        if way < 0:
            return set()
        sharers = set()
        for word_index in range(self._n_words):
            word = int(self.sharer_masks[node, set_index, way, word_index])
            base = word_index << 6
            while word:
                low = word & -word
                sharers.add(base + low.bit_length() - 1)
                word ^= low
        return sharers

    def num_sharers(self, node: int, line: int) -> int:
        """Popcount of the sharer mask (no set materialization)."""
        set_index = line & self._mask
        way = self._way_of(node, set_index, line)
        if way < 0:
            return 0
        return sum(
            int(self.sharer_masks[node, set_index, way, w]).bit_count()
            for w in range(self._n_words)
        )

    # ---------------------------------------------------------------- views

    def view(self, node: int, line: int) -> Optional[DirectoryEntryView]:
        set_index = line & self._mask
        way = self._way_of(node, set_index, line)
        if way < 0:
            return None
        return DirectoryEntryView(self, node, set_index, way)

    def resident_lines(self, node: int) -> List[int]:
        tags = self.tags[node]
        return sorted(int(t) for t in tags[tags != NO_TAG])

    # ----------------------------------------------------- vectorized bulk

    def sharer_histogram(self) -> dict:
        """{sharer count: lines} across every resident precise entry —
        the vectorized form of the paper's Figure 5 census."""
        occupied = self.tags != NO_TAG
        counts = np.bitwise_count(self.sharer_masks).sum(axis=-1)
        values, freqs = np.unique(counts[occupied], return_counts=True)
        return {int(v): int(f) for v, f in zip(values, freqs)}

    def state_census(self) -> dict:
        occupied = self.tags != NO_TAG
        census = {}
        for name, code in DIR_STATE_CODES.items():
            count = int(((self.states == code) & occupied).sum())
            if count:
                census[name] = count
        return census
