"""Hybrid invalidate/update coherence backend (after arXiv 1502.00101).

A *wired-only* directory protocol that, like WiDir, switches widely-shared
lines out of invalidation-based MESI — but instead of a wireless broadcast
plane it uses home-serialized **locked updates** over the mesh:

* A write-miss/upgrade whose precise sharer set exceeds the threshold puts
  the line in *update mode* (directory state ``W``): every sharer is handed
  the line via ``WirUpgr`` and keeps a read-only-while-locked copy in the
  cache ``W`` state.
* A store by a mode member is sent to the home (``HybWr``/``HybRmw``). The
  home serializes it, merges it into the LLC copy, multicasts ``HybUpd`` to
  the other members — each applies the word, moves to the transient
  ``HYB_LOCKED`` ("L") state and acks — and only when *every* ack is in does
  it complete the writer (``HybWrDone``/``HybRmwDone``) and ``HybUnlock``
  the members. A write becomes visible to any reader only once it is
  visible to all (two-phase locked update), which is what gives the
  protocol write atomicity (IRIW) without a broadcast medium.
* Locked (``L``) copies are not readable: a load misses, queues at the busy
  home entry, and is re-granted after the unlock — so reads never observe a
  half-propagated write.
* Members that stop using the line self-invalidate after
  ``update_count_threshold`` consecutive foreign updates (same heuristic as
  WiDir); when membership drops to one the home exits update mode
  (``HybDwgr`` fan-out) back to plain MESI sharing.

The per-(src,dst) FIFO order of the mesh is load-bearing three times over:
a member's ``HybUpdAck`` precedes any ``PutW`` it sends afterwards, the
home's ``HybUnlock`` precedes the next write's ``HybUpd``, and a
``HybDwgr`` precedes any later ``Data`` re-grant.

Pure decision helpers (:func:`hyb_should_enter`, :func:`hyb_should_exit`,
:func:`hyb_update_step`) are kept free of simulator state so hypothesis can
property-test them directly (see ``tests/test_protocol_backends.py``).
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro.coherence import messages as mk
from repro.coherence.backend import (
    BASE_DIRECTORY_KINDS,
    ProtocolBackend,
    register_backend,
)
from repro.coherence.cache import (
    CacheController,
    MSHR_FULL_RETRY_CYCLES,
    _PendingWirelessWrite,
)
from repro.coherence.dir_controller import DirectoryController
from repro.coherence.directory import DirectoryEntry
from repro.coherence.states import (
    DIR_INVALID,
    DIR_SHARED,
    DIR_WIRELESS,
    EXCLUSIVE,
    MODIFIED,
    SHARED,
    WIRELESS,
)
from repro.engine.errors import ProtocolError
from repro.mem.line_data import line_data
from repro.noc.message import Message

#: Transient cache state: an update was applied but not yet globally
#: visible. Not readable, not writable — loads miss and wait for the
#: unlock, stores are forwarded to the home like W-state stores.
HYB_LOCKED = "L"

# ------------------------------------------------------- message vocabulary

HYB_WR = "HybWr"            # member store -> home; payload: word, value, serial
HYB_RMW = "HybRmw"          # member fetch-and-inc -> home; payload: word, serial
HYB_WR_DONE = "HybWrDone"   # home -> writer: globally visible; serial, word, value
HYB_RMW_DONE = "HybRmwDone"  # home -> writer; payload: serial, word, old
HYB_WR_NACK = "HybWrNack"   # home -> writer: not a member; payload: serial, rmw
HYB_UPD = "HybUpd"          # home -> member: apply + lock; payload: word, value
HYB_UPD_ACK = "HybUpdAck"   # member -> home: update applied, copy locked
HYB_UNLOCK = "HybUnlock"    # home -> member: write globally visible, unlock
HYB_DWGR = "HybDwgr"        # home -> member: leave update mode; payload: invalidate
HYB_DWGR_ACK = "HybDwgrAck"  # member -> home; payload: core

HYB_WR_ID = mk.intern_kind(HYB_WR)
HYB_RMW_ID = mk.intern_kind(HYB_RMW)
HYB_WR_DONE_ID = mk.intern_kind(HYB_WR_DONE)
HYB_RMW_DONE_ID = mk.intern_kind(HYB_RMW_DONE)
HYB_WR_NACK_ID = mk.intern_kind(HYB_WR_NACK)
HYB_UPD_ID = mk.intern_kind(HYB_UPD)
HYB_UPD_ACK_ID = mk.intern_kind(HYB_UPD_ACK)
HYB_UNLOCK_ID = mk.intern_kind(HYB_UNLOCK)
HYB_DWGR_ID = mk.intern_kind(HYB_DWGR)
HYB_DWGR_ACK_ID = mk.intern_kind(HYB_DWGR_ACK)

#: The home-bound slice of the vocabulary (routed to the directory).
HYBRID_DIRECTORY_KINDS: Tuple[str, ...] = BASE_DIRECTORY_KINDS + (
    HYB_WR,
    HYB_RMW,
    HYB_UPD_ACK,
    HYB_DWGR_ACK,
)

# ------------------------------------------------------ pure transition fns


def hyb_should_enter(num_targets: int, precise: bool, threshold: int) -> bool:
    """Enter update mode for a write when the *precise* sharer set (plus the
    requester) exceeds the threshold. Imprecise entries (broadcast bit or
    coarse regions) cannot enumerate members and fall back to invalidation.
    """
    return precise and num_targets + 1 > threshold


def hyb_should_exit(sharer_count: int) -> bool:
    """Leave update mode once at most one member remains."""
    return sharer_count <= 1


def hyb_update_step(count: int, threshold: int) -> Tuple[int, bool]:
    """Apply one foreign update to a member's counter.

    Returns ``(new_count, self_invalidate)`` — the member drops its copy
    after ``threshold`` consecutive foreign updates with no local access
    (local reads reset the counter, exactly like WiDir's UpdateCount).
    """
    new_count = count + 1
    return new_count, new_count >= threshold


# --------------------------------------------------------- cache controller


class HybridCacheController(CacheController):
    """MESI cache extended with update-mode (W) and locked (L) copies."""

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        #: Monotonic serial distinguishing this core's in-flight HybWr/HybRmw.
        self._hyb_serial = 0
        #: serial -> pending write record (mirrored in ``_pending_wireless``
        #: so the online monitor's quiescence predicate covers these windows).
        self._hyb_pending: Dict[int, _PendingWirelessWrite] = {}

    # ------------------------------------------------------- access engine

    def _do_store(self, address, value, on_done) -> None:
        entry = self.array.lookup(address >> self._line_shift)
        if entry is not None and entry.state == HYB_LOCKED:
            # A locked member may keep writing: the home serializes the
            # write after the one currently propagating.
            self._store_wireless(entry, address, value, on_done)
            return
        super()._do_store(address, value, on_done)

    def _do_rmw(self, address, on_done) -> None:
        entry = self.array.lookup(address >> self._line_shift)
        if entry is not None and entry.state == HYB_LOCKED:
            self._rmw_wireless(entry, address, on_done)
            return
        super()._do_rmw(address, on_done)

    def _store_wireless(self, entry, address: int, value: int, on_done) -> None:
        """Update-mode store: ship it to the home, complete on HybWrDone."""
        line = self.amap.line_of(address)
        word = self.amap.word_of(address)
        entry.update_count = 0
        obs = self._obs
        if obs is not None:
            obs.event(self.node, "hyb.store", line, f"word={word}")
        self._hyb_serial += 1
        serial = self._hyb_serial
        pending = _PendingWirelessWrite(None, address, value, on_done)
        self._hyb_pending[serial] = pending
        self._pending_wireless.setdefault(line, []).append(pending)
        self._send(
            mk.kind_id(HYB_WR),
            self.amap.home_of(line),
            line,
            {"word": word, "value": value, "serial": serial},
        )

    def _rmw_wireless(self, entry, address: int, on_done) -> None:
        """Update-mode fetch-and-increment: atomic at the home."""
        line = self.amap.line_of(address)
        word = self.amap.word_of(address)
        obs = self._obs
        if obs is not None:
            obs.event(self.node, "hyb.rmw", line, f"word={word}")
        self._hyb_serial += 1
        serial = self._hyb_serial
        self._rmw_watch[line] = {
            "address": address,
            "on_done": on_done,
            "serial": serial,
            "request": None,
        }
        self._send(
            mk.kind_id(HYB_RMW),
            self.amap.home_of(line),
            line,
            {"word": word, "serial": serial},
        )

    def _reissue_pending_writes(self, line: int) -> None:
        """No-op: an in-flight HybWr always completes or nacks at the home
        (reissuing it here would apply the write twice)."""

    def _evict(self, victim) -> None:
        if victim.state == HYB_LOCKED:
            line = victim.line
            obs = self._obs
            if obs is not None:
                obs.event(self.node, "evict.locked", line)
            self.array.remove(line)
            self._send(mk.PUTW_ID, self.amap.home_of(line), line)
            return
        super()._evict(victim)

    # ------------------------------------------------- wired message side

    def _on_wir_upgr(self, msg: Message) -> None:
        """WirUpgr = "you are (now) an update-mode member" + fresh data."""
        resident = self.array.lookup(msg.line, touch=False)
        if resident is not None:
            if resident.state in (SHARED, WIRELESS, HYB_LOCKED):
                entry = resident
                entry.state = WIRELESS
                data = msg.payload.get("data")
                if data is not None:
                    # Unlike WiDir's duplicate-join path, the refresh is
                    # mandatory: a locked reader joins *through* the home and
                    # must observe the home's serialized image.
                    entry.data = line_data(data)
                entry.update_count = 0
            else:
                raise ProtocolError(
                    f"L1 {self.node}: WirUpgr for 0x{msg.line:x} held in "
                    f"{resident.state}"
                )
        else:
            if not self._ensure_room(msg.line):
                msg.retain()  # survives past this delivery for the retry
                self.sim.schedule(
                    MSHR_FULL_RETRY_CYCLES, lambda: self._on_wir_upgr(msg)
                )
                return
            entry = self._install(msg.line, WIRELESS, msg.payload.get("data", {}))
        entry.dirty = False
        if msg.payload.get("ack_required", False):
            self._send(mk.WIR_UPGR_ACK_ID, msg.src, msg.line)
        if self.mshrs.get(msg.line) is not None:
            self._complete_mshr(msg.line)

    def _on_data(self, msg: Message) -> None:
        # Defensive: a data response landing on an update-mode copy answers
        # a superseded request (the home's image is authoritative here, so
        # the copy is kept as-is). FwdData still owes the home its closure.
        resident = self.array.lookup(msg.line, touch=False)
        if resident is not None and resident.state in (WIRELESS, HYB_LOCKED):
            if msg.kind_id == mk.FWD_DATA_ID:
                self._send(
                    mk.WB_DATA_ID,
                    self.amap.home_of(msg.line),
                    msg.line,
                    {
                        "data": line_data(msg.payload.get("data")),
                        "dirty": msg.payload.get("dirty", False),
                    },
                )
            if self.mshrs.get(msg.line) is not None:
                self._complete_mshr(msg.line)
            return
        super()._on_data(msg)

    def _on_inv(self, msg: Message) -> None:
        resident = self.array.lookup(msg.line, touch=False)
        if resident is not None and resident.state == HYB_LOCKED:
            # A maximally delayed Inv from a pre-mode epoch; membership is
            # governed by HybDwgr/PutW, so only ack it (mirrors the W case).
            self._send(mk.INV_ACK_ID, msg.src, msg.line)
            return
        super()._on_inv(msg)

    # ------------------------------------------------- hybrid update plane

    def _on_hyb_wr_done(self, msg: Message) -> None:
        payload = msg.payload
        pending = self._hyb_pending.pop(payload.get("serial"), None)
        if pending is None:
            return  # superseded (nacked and reissued down the wired path)
        self._wireless_writes()
        self._wireless_writes_total()
        line = msg.line
        resident = self.array.lookup(line, touch=False)
        if resident is not None and resident.state in (WIRELESS, HYB_LOCKED):
            resident.data[payload["word"]] = payload["value"]
            resident.update_count = 0
        self._drop_pending(line, pending, unpin=False)
        pending.on_done()

    def _on_hyb_rmw_done(self, msg: Message) -> None:
        payload = msg.payload
        watch = self._rmw_watch.get(msg.line)
        if watch is None or watch.get("serial") != payload.get("serial"):
            return
        del self._rmw_watch[msg.line]
        self._wireless_writes()
        self._wireless_writes_total()
        old = payload["old"]
        resident = self.array.lookup(msg.line, touch=False)
        if resident is not None and resident.state in (WIRELESS, HYB_LOCKED):
            resident.data[payload["word"]] = old + 1
            resident.update_count = 0
        watch["on_done"](old)

    def _on_hyb_wr_nack(self, msg: Message) -> None:
        """The home no longer counts this core as a member: retry wired."""
        payload = msg.payload
        line = msg.line
        self._nacks()
        resident = self.array.lookup(line, touch=False)
        if resident is not None and resident.state in (WIRELESS, HYB_LOCKED):
            # Keeping the orphaned copy would just bounce the retry forever
            # (e.g. the home entry was evicted under us).
            self.array.remove(line)
            self._send(mk.PUTW_ID, self.amap.home_of(line), line)
        if payload.get("rmw"):
            watch = self._rmw_watch.get(line)
            if watch is None or watch.get("serial") != payload.get("serial"):
                return
            del self._rmw_watch[line]
            address, on_done = watch["address"], watch["on_done"]
            self.sim.schedule(1, lambda: self._do_rmw(address, on_done))
            return
        pending = self._hyb_pending.pop(payload.get("serial"), None)
        if pending is None:
            return
        self._drop_pending(line, pending, unpin=False)
        address, value, on_done = pending.address, pending.value, pending.on_done
        self.sim.schedule(1, lambda: self._do_store(address, value, on_done))

    def _on_hyb_upd(self, msg: Message) -> None:
        """A foreign write: apply it, lock the copy, ack the home."""
        payload = msg.payload
        line = msg.line
        resident = self.array.lookup(line, touch=False)
        if resident is None or resident.state not in (WIRELESS, HYB_LOCKED):
            # Not a member anymore (evicted; the PutW is behind this ack on
            # the mesh). The home still needs the ack to close the write.
            self._send(mk.kind_id(HYB_UPD_ACK), msg.src, line)
            return
        resident.data[payload["word"]] = payload["value"]
        resident.state = HYB_LOCKED
        count, self_inv = hyb_update_step(
            resident.update_count, self._update_threshold
        )
        resident.update_count = count
        # FIFO: the ack must precede the self-invalidation's PutW so the
        # home never waits on an ack from a core it already dropped.
        self._send(mk.kind_id(HYB_UPD_ACK), msg.src, line)
        if (
            self_inv
            and not resident.pinned
            and line not in self._pending_wireless
            and line not in self._rmw_watch
        ):
            self._self_invalidate(resident)

    def _on_hyb_unlock(self, msg: Message) -> None:
        resident = self.array.lookup(msg.line, touch=False)
        if resident is not None and resident.state == HYB_LOCKED:
            resident.state = WIRELESS

    def _on_hyb_dwgr(self, msg: Message) -> None:
        """The home is leaving update mode: downgrade to S (or invalidate)."""
        invalidate = msg.payload.get("invalidate", False)
        line = msg.line
        resident = self.array.lookup(line, touch=False)
        survived = False
        if resident is not None and resident.state in (WIRELESS, HYB_LOCKED):
            if invalidate:
                self.array.remove(line)
            else:
                resident.state = SHARED
                resident.update_count = 0
                resident.dirty = False
                survived = True
        # The ack is unconditional — membership changes never leave the home
        # counting acks that cannot come.
        self._send(
            mk.kind_id(HYB_DWGR_ACK), msg.src, line, {"core": self.node}
        )
        if survived and self.mshrs.get(line) is not None:
            # A load that missed on the locked copy retries and hits S; its
            # in-flight GetS is answered by the home's idempotent re-grant.
            self._complete_mshr(line)

    #: Rebuilt (dispatch tables hold unbound functions, so overriding a
    #: method does not retarget the base table) and extended to cover the
    #: kinds this module interned.
    _WIRED_DISPATCH = list(CacheController._WIRED_DISPATCH)
    _WIRED_DISPATCH.extend([None] * (mk.num_kinds() - len(_WIRED_DISPATCH)))
    for _kid, _handler in (
        (mk.DATA_ID, _on_data),
        (mk.DATA_E_ID, _on_data),
        (mk.FWD_DATA_ID, _on_data),
        (mk.WIR_UPGR_ID, _on_wir_upgr),
        (mk.INV_ID, _on_inv),
        (HYB_WR_DONE_ID, _on_hyb_wr_done),
        (HYB_RMW_DONE_ID, _on_hyb_rmw_done),
        (HYB_WR_NACK_ID, _on_hyb_wr_nack),
        (HYB_UPD_ID, _on_hyb_upd),
        (HYB_UNLOCK_ID, _on_hyb_unlock),
        (HYB_DWGR_ID, _on_hyb_dwgr),
    ):
        _WIRED_DISPATCH[_kid] = _handler
    del _kid, _handler


# ----------------------------------------------------- directory controller


class HybridDirectoryController(DirectoryController):
    """Home node serializing update-mode writes with two-phase locking.

    Repurposes the ``DIR_WIRELESS`` directory state for update mode, but —
    unlike WiDir — keeps the *identities* of the members in ``entry.sharers``
    (the multicast needs them), with ``sharer_count`` mirroring the set so
    the SoA metadata planes and the checker's W accounting stay valid.

    Transaction types added to the base table: ``hyb_enter`` (convert the
    precise sharer set), ``hyb_join`` (grant one new member), ``hyb_write``
    (one locked update propagating), ``hyb_exit`` (downgrade/invalidate the
    members and leave update mode).
    """

    def __init__(self, sim, node, config, amap, noc, memory_controllers,
                 stats, wireless=None, tone=None) -> None:
        super().__init__(
            sim, node, config, amap, noc, memory_controllers, stats,
            wireless=wireless, tone=tone,
        )
        s = stats
        self._hyb_mode_enters = s.adder("dir.total.hyb_mode_enters")
        self._hyb_mode_exits = s.adder("dir.total.hyb_mode_exits")
        self._hyb_writes = s.adder("dir.total.hyb_writes")
        self._hyb_joins = s.adder("dir.total.hyb_joins")

    # ------------------------------------------------------- request path

    def _req_shared(self, entry: DirectoryEntry, msg: Message) -> None:
        if msg.kind_id == mk.GETX_ID:
            requester = msg.src
            targets = entry.known_sharers(
                self.config.num_cores,
                exclude=requester,
                coarse_region_size=self.config.directory.coarse_region_size,
            )
            precise = not entry.broadcast and not entry.coarse_regions
            if hyb_should_enter(len(targets), precise, self._max_wired):
                self._start_hyb_enter(entry, requester, targets)
                return
        super()._req_shared(entry, msg)

    def _start_hyb_enter(
        self, entry: DirectoryEntry, requester: int, targets
    ) -> None:
        """Convert every precise sharer (and the writer) into a member."""
        self._hyb_mode_enters()
        entry.busy = True
        pending = set(targets)
        pending.add(requester)
        entry.transaction = {
            "type": "hyb_enter",
            "pending": pending,
            "joined": set(),
            "left": set(),
        }
        obs = self._obs
        if obs is not None:
            obs.dir_open(self.node, entry.line, "hyb_enter")
        for core in sorted(pending):
            self._send_wir_upgr(entry, core)

    def _finish_hyb_enter(self, entry: DirectoryEntry) -> None:
        transaction = entry.transaction
        entry.state = DIR_WIRELESS
        entry.sharers = set(transaction["joined"])
        entry.sharer_count = len(entry.sharers)
        entry.owner = None
        entry.clear_imprecision()
        self._unbusy(entry)

    def _req_wireless(self, entry: DirectoryEntry, msg: Message) -> None:
        requester = msg.src
        if msg.kind_id == mk.GETX_ID and msg.payload.get("is_sharer"):
            # An upgrade racing the mode entry: the requester's miss is (or
            # is about to be) satisfied by its WirUpgr; a stale-S straggler
            # retries and joins once its copy is gone (mirrors WiDir).
            self._nacks()
            self._send(
                mk.NACK_ID,
                requester,
                entry.line,
                {"req_serial": msg.payload.get("req_serial")},
            )
            return
        self._start_hyb_join(entry, requester)

    def _start_hyb_join(self, entry: DirectoryEntry, requester: int) -> None:
        """Grant one new member; no jam window — the LLC copy is always
        current because every update-mode write serializes here."""
        self._hyb_joins()
        entry.busy = True
        entry.transaction = {
            "type": "hyb_join",
            "pending": {requester},
            "left": set(),
        }
        obs = self._obs
        if obs is not None:
            obs.dir_open(self.node, entry.line, "hyb_join")
        self._send_wir_upgr(entry, requester)

    # ------------------------------------------------------- write engine

    def _on_hyb_wr(self, entry: Optional[DirectoryEntry], msg: Message) -> None:
        self._hyb_write_request(entry, msg, rmw=False)

    def _on_hyb_rmw(self, entry: Optional[DirectoryEntry], msg: Message) -> None:
        self._hyb_write_request(entry, msg, rmw=True)

    def _hyb_write_request(
        self, entry: Optional[DirectoryEntry], msg: Message, rmw: bool
    ) -> None:
        if entry is not None and entry.busy:
            obs = self._obs
            if obs is not None:
                obs.dir_defer(self.node, msg.line, msg.kind)
            msg.retain()  # parked in the deferred queue past delivery
            entry.deferred.append(msg)
            return
        if (
            entry is None
            or entry.state != DIR_WIRELESS
            or msg.src not in entry.sharers
        ):
            # Not a member (the mode was exited or the entry recalled while
            # the write was in flight): bounce it down the wired path.
            self._send(
                mk.kind_id(HYB_WR_NACK),
                msg.src,
                msg.line,
                {"serial": msg.payload.get("serial"), "rmw": rmw},
            )
            return
        self._start_hyb_write(entry, msg, rmw)

    def _start_hyb_write(
        self, entry: DirectoryEntry, msg: Message, rmw: bool
    ) -> None:
        payload = msg.payload
        word = payload["word"]
        if rmw:
            old = entry.data.get(word, 0)
            value = old + 1
        else:
            old = 0
            value = payload["value"]
        # Serialization point: the write exists at the home from here on,
        # but completes (and becomes readable anywhere) only when every
        # member has applied and acked it.
        entry.data[word] = value
        entry.dirty = True
        entry.has_data = True
        writer = msg.src
        targets = sorted(entry.sharers - {writer})
        self._hyb_writes()
        self._sharers_per_update.record(len(targets))
        self._sharers_exact.record(len(targets))
        entry.busy = True
        entry.transaction = {
            "type": "hyb_write",
            "writer": writer,
            "word": word,
            "value": value,
            "serial": payload.get("serial"),
            "rmw": rmw,
            "old": old,
            "pending": set(targets),
        }
        obs = self._obs
        if obs is not None:
            obs.dir_open(self.node, entry.line, "hyb_write")
        for core in targets:
            self._send(
                mk.kind_id(HYB_UPD), core, entry.line,
                {"word": word, "value": value},
            )
        if not targets:
            self._finish_hyb_write(entry)

    def _on_hyb_upd_ack(
        self, entry: Optional[DirectoryEntry], msg: Message
    ) -> None:
        if entry is None or not entry.busy:
            return
        transaction = entry.transaction or {}
        if transaction.get("type") != "hyb_write":
            return
        transaction["pending"].discard(msg.src)
        if not transaction["pending"]:
            self._finish_hyb_write(entry)

    def _finish_hyb_write(self, entry: DirectoryEntry) -> None:
        """Every member applied the write: complete the writer, unlock."""
        transaction = entry.transaction
        writer = transaction["writer"]
        if transaction["rmw"]:
            self._send(
                mk.kind_id(HYB_RMW_DONE),
                writer,
                entry.line,
                {
                    "serial": transaction["serial"],
                    "word": transaction["word"],
                    "old": transaction["old"],
                },
            )
        else:
            self._send(
                mk.kind_id(HYB_WR_DONE),
                writer,
                entry.line,
                {
                    "serial": transaction["serial"],
                    "word": transaction["word"],
                    "value": transaction["value"],
                },
            )
        # Unlocks go out before _unbusy services any deferred HybWr, so on
        # each member's FIFO this write's unlock precedes the next's HybUpd.
        for core in sorted(entry.sharers):
            if core != writer:
                self._send(mk.kind_id(HYB_UNLOCK), core, entry.line)
        self._unbusy(entry)

    # ----------------------------------------------------- mode exit path

    def _maybe_downgrade(self, entry: DirectoryEntry) -> bool:
        if entry.state == DIR_WIRELESS and hyb_should_exit(entry.sharer_count):
            self._start_hyb_exit(entry, invalidate=False)
            return True
        return False

    def _start_hyb_exit(self, entry: DirectoryEntry, invalidate: bool) -> None:
        self._hyb_mode_exits()
        entry.busy = True
        targets = sorted(entry.sharers)
        entry.transaction = {
            "type": "hyb_exit",
            "pending": set(targets),
            "invalidate": invalidate,
        }
        obs = self._obs
        if obs is not None:
            obs.dir_open(self.node, entry.line, "hyb_exit")
        for core in targets:
            self._send(
                mk.kind_id(HYB_DWGR), core, entry.line,
                {"invalidate": invalidate},
            )
        if not targets:
            self._finish_hyb_exit(entry)

    def _on_hyb_dwgr_ack(
        self, entry: Optional[DirectoryEntry], msg: Message
    ) -> None:
        if entry is None or not entry.busy:
            # Late ack at an idle entry: unlike WiDir's count-only W state,
            # the downgrade already deterministically downgraded or removed
            # the acker's copy — nothing to clean up.
            return
        transaction = entry.transaction or {}
        if transaction.get("type") != "hyb_exit":
            return
        transaction["pending"].discard(msg.src)
        if not transaction["pending"]:
            self._finish_hyb_exit(entry)

    def _finish_hyb_exit(self, entry: DirectoryEntry) -> None:
        transaction = entry.transaction
        if transaction["invalidate"]:
            entry.sharers.clear()
            entry.sharer_count = 0
            entry.owner = None
            # _finish_recall writes back if dirty, drops the entry, and
            # re-dispatches anything deferred against a fresh allocation.
            self._finish_recall(entry)
            return
        entry.sharer_count = 0
        entry.owner = None
        entry.state = DIR_SHARED if entry.sharers else DIR_INVALID
        entry.clear_imprecision()
        self._note_pointer_overflow(entry)
        if entry.dirty:
            self._memory_for(entry.line).writeback_line(entry.line, entry.data)
            entry.dirty = False
        self._unbusy(entry)

    def _start_wireless_eviction(self, entry: DirectoryEntry) -> None:
        """LLC eviction of an update-mode entry: exit with invalidation."""
        self._w_evictions()
        self._start_hyb_exit(entry, invalidate=True)

    # ------------------------------------------------- membership changes

    def _on_put_s(self, entry: Optional[DirectoryEntry], msg: Message) -> None:
        if entry is None:
            return
        transaction = entry.transaction or {}
        kind = transaction.get("type")
        if kind in ("hyb_enter", "hyb_join"):
            # The evicted S copy is about to be reinstalled by the in-flight
            # WirUpgr; membership is settled by its ack.
            return
        if kind in ("hyb_write", "hyb_exit"):
            return  # stale pre-mode PutS; members leave with PutW
        if entry.state == DIR_WIRELESS and not entry.busy:
            return  # stale pre-mode PutS (identities govern membership)
        super()._on_put_s(entry, msg)

    def _on_put_w(self, entry: Optional[DirectoryEntry], msg: Message) -> None:
        if entry is None:
            return
        transaction = entry.transaction or {}
        kind = transaction.get("type")
        src = msg.src
        if kind == "hyb_enter":
            transaction["joined"].discard(src)
            transaction["left"].add(src)
            return  # its WirUpgrAck (already sent, FIFO) settles "pending"
        if kind == "hyb_join":
            transaction["left"].add(src)
            entry.sharers.discard(src)
            entry.sharer_count = len(entry.sharers)
            return
        if kind in ("hyb_write", "hyb_exit"):
            # A member self-invalidated or evicted mid-transaction. Its ack
            # was sent before the PutW (FIFO), so the pending set needs no
            # correction — only the membership does.
            entry.sharers.discard(src)
            entry.sharer_count = len(entry.sharers)
            return
        if not entry.busy and entry.state == DIR_WIRELESS:
            entry.sharers.discard(src)
            entry.sharer_count = len(entry.sharers)
            self._maybe_downgrade(entry)
            return
        super()._on_put_w(entry, msg)

    def _on_wir_upgr_ack(
        self, entry: Optional[DirectoryEntry], msg: Message
    ) -> None:
        if entry is None or not entry.busy:
            return
        transaction = entry.transaction or {}
        kind = transaction.get("type")
        if kind == "hyb_enter":
            if msg.src not in transaction["pending"]:
                return  # stale duplicate ack
            transaction["pending"].discard(msg.src)
            if msg.src not in transaction["left"]:
                transaction["joined"].add(msg.src)
            if not transaction["pending"]:
                self._finish_hyb_enter(entry)
            return
        if kind == "hyb_join":
            if msg.src not in transaction["pending"]:
                return
            transaction["pending"].discard(msg.src)
            if msg.src not in transaction["left"]:
                entry.sharers.add(msg.src)
            entry.sharer_count = len(entry.sharers)
            if not transaction["pending"]:
                self._unbusy(entry)
            return
        super()._on_wir_upgr_ack(entry, msg)

    #: Rebuilt: base entries are inherited by copy, overridden methods are
    #: re-pointed (tables hold unbound functions), new kinds appended.
    _DISPATCH = list(DirectoryController._DISPATCH)
    _DISPATCH.extend([None] * (mk.num_kinds() - len(_DISPATCH)))
    for _kid, _handler in (
        (mk.PUTS_ID, _on_put_s),
        (mk.PUTW_ID, _on_put_w),
        (mk.WIR_UPGR_ACK_ID, _on_wir_upgr_ack),
        (HYB_WR_ID, _on_hyb_wr),
        (HYB_RMW_ID, _on_hyb_rmw),
        (HYB_UPD_ACK_ID, _on_hyb_upd_ack),
        (HYB_DWGR_ACK_ID, _on_hyb_dwgr_ack),
    ):
        _DISPATCH[_kid] = _handler
    del _kid, _handler


# ------------------------------------------------------------ registration


def _hyb_cache(sim, node, config, amap, noc, stats, rng, wireless, tone):
    return HybridCacheController(
        sim, node, config, amap, noc, stats, rng, wireless=wireless, tone=tone
    )


def _hyb_directory(
    sim, node, config, amap, noc, memory_controllers, stats, wireless, tone
):
    return HybridDirectoryController(
        sim,
        node,
        config,
        amap,
        noc,
        memory_controllers,
        stats,
        wireless=wireless,
        tone=tone,
    )


register_backend(
    ProtocolBackend(
        name="hybrid_update",
        description=(
            "Hybrid invalidate/update MESI: widely-written lines switch to "
            "home-serialized locked updates (arXiv 1502.00101)."
        ),
        uses_wireless=False,
        uses_sharer_threshold=True,
        readable_states=frozenset({MODIFIED, EXCLUSIVE, SHARED, WIRELESS}),
        writable_states=frozenset({MODIFIED, EXCLUSIVE}),
        directory_kinds=HYBRID_DIRECTORY_KINDS,
        cache_factory=_hyb_cache,
        directory_factory=_hyb_directory,
    )
)
