"""Global coherence invariant checking — quiescent and online.

The checker inspects the *whole machine* — every private cache and every
directory slice — and verifies the invariants that any correct realization
of the protocol must maintain at quiescent points:

* **SWMR**: a line held Modified/Exclusive anywhere is held nowhere else.
* **Directory accuracy**: a non-busy directory entry's state agrees with the
  private caches (owner really holds E/M; every S holder is recorded unless
  its eviction notice is still in flight; W holders do not exceed
  SharerCount).
* **Value agreement**: all Shared/Wireless copies of a word, the LLC copy,
  and (when no dirty copy exists) memory agree.

Tests call :meth:`CoherenceChecker.check` between phases and at the end of a
run; it raises :class:`~repro.engine.errors.ProtocolError` with a precise
description on the first violation.

:class:`OnlineInvariantMonitor` applies the same per-line predicates *during*
a run (paper-hunting mode for the verification subsystem, enabled by
``SystemConfig.check_interval``): controllers report every line they touch,
and a periodic sweep validates SWMR immediately plus directory accuracy and
value agreement once the line is *quiet* — no wired message, wireless frame,
tone operation, MSHR, eviction buffer, pending wireless write, or busy home
entry still refers to it. That per-line quiescence predicate is what lets the
strong invariants run mid-simulation without false positives from legal
transient windows (e.g. a committed-but-undelivered WirUpd).
"""

from __future__ import annotations

from typing import Dict, List, Set, Tuple

from repro.coherence.states import (
    DIR_EXCLUSIVE,
    DIR_SHARED,
    DIR_WIRELESS,
    EXCLUSIVE,
    MODIFIED,
    SHARED,
    WIRELESS,
)
from repro.engine.errors import ProtocolError


class CoherenceChecker:
    """Walks caches and directories validating cross-component invariants."""

    def __init__(self, caches, directories, memory) -> None:
        self.caches = caches
        self.directories = directories
        self.memory = memory
        #: Home node -> directory slice (static for the machine's life).
        self._directory_by_home: Dict[int, object] = {
            d.node: d for d in directories
        }

    # ------------------------------------------------------------- lookups

    def _holders(self) -> Dict[int, List]:
        holders: Dict[int, List] = {}
        for cache in self.caches:
            for entry in cache.array.lines():
                holders.setdefault(entry.line, []).append((cache.node, entry))
        return holders

    def line_holders(self, line: int) -> List[Tuple[int, object]]:
        """(node, entry) pairs for every private cache holding ``line``.

        The per-line dual of :meth:`_holders`, used by the online monitor
        which only looks at recently touched lines.
        """
        entries: List[Tuple[int, object]] = []
        for cache in self.caches:
            entry = cache.array.lookup(line, touch=False)
            if entry is not None:
                entries.append((cache.node, entry))
        return entries

    def home_directory(self, line: int):
        """The directory slice homing ``line`` (None in degenerate setups)."""
        return self._directory_by_home.get(self.caches[0].amap.home_of(line))

    # ----------------------------------------------------- quiescent check

    def check(self, quiescent: bool = True) -> None:
        """Validate all invariants; raise :class:`ProtocolError` on failure.

        ``quiescent=True`` additionally enforces the directory-accuracy and
        value-agreement invariants, which only hold when no transaction is
        in flight (no pending events touching the memory system).
        """
        holders = self._holders()
        self._check_swmr(holders)
        if quiescent:
            self._check_directory_accuracy(holders)
            self._check_value_agreement(holders)

    def _check_swmr(self, holders: Dict[int, List]) -> None:
        for line, entries in holders.items():
            self.check_swmr_line(line, entries)

    def check_swmr_line(self, line: int, entries: List) -> None:
        """SWMR for one line: at most one M/E holder, and then no others.

        This invariant is window-free — it must hold at *every* cycle, so
        the online monitor applies it without any quiescence gating.
        """
        exclusive = [n for n, e in entries if e.state in (MODIFIED, EXCLUSIVE)]
        if len(exclusive) > 1:
            raise ProtocolError(
                f"SWMR violated for line 0x{line:x}: "
                f"multiple exclusive holders {exclusive}"
            )
        if exclusive and len(entries) > 1:
            others = [n for n, e in entries if e.state not in (MODIFIED, EXCLUSIVE)]
            raise ProtocolError(
                f"SWMR violated for line 0x{line:x}: exclusive holder "
                f"{exclusive[0]} coexists with holders {others}"
            )

    def _check_directory_accuracy(self, holders: Dict[int, List]) -> None:
        for directory in self.directories:
            for entry in directory.array.entries():
                if entry.busy:
                    continue
                self.check_entry_accuracy(entry, holders.get(entry.line, []))

    def check_entry_accuracy(self, entry, cached: List) -> None:
        """One non-busy directory entry agrees with the caches' holdings."""
        if entry.state == DIR_EXCLUSIVE:
            owners = [n for n, e in cached if e.state in (MODIFIED, EXCLUSIVE)]
            if owners != [entry.owner]:
                raise ProtocolError(
                    f"directory E entry 0x{entry.line:x} names owner "
                    f"{entry.owner} but caches hold {owners}"
                )
        elif entry.state == DIR_SHARED:
            actual = {n for n, e in cached if e.state == SHARED}
            if not actual.issubset(entry.sharers):
                raise ProtocolError(
                    f"directory S entry 0x{entry.line:x} misses sharers "
                    f"{actual - entry.sharers}"
                )
        elif entry.state == DIR_WIRELESS:
            actual = {n for n, e in cached if e.state == WIRELESS}
            if len(actual) > entry.sharer_count:
                raise ProtocolError(
                    f"directory W entry 0x{entry.line:x} counts "
                    f"{entry.sharer_count} sharers but caches hold "
                    f"{sorted(actual)}"
                )

    @staticmethod
    def _dense(data: Dict[int, int]) -> Dict[int, int]:
        """Drop zero-valued words: sparse line images treat them as implicit."""
        return {word: value for word, value in data.items() if value != 0}

    def _check_value_agreement(self, holders: Dict[int, List]) -> None:
        for line, entries in holders.items():
            self.check_value_line(line, entries)

    def check_value_line(self, line: int, entries: List) -> None:
        """All S/W copies of ``line`` (and a clean LLC copy) agree."""
        shared_copies = [e for _, e in entries if e.state in (SHARED, WIRELESS)]
        if len(shared_copies) < 1:
            return
        reference = shared_copies[0]
        for other in shared_copies[1:]:
            if self._dense(other.data) != self._dense(reference.data):
                raise ProtocolError(
                    f"divergent shared copies of line 0x{line:x}: "
                    f"{reference.data} vs {other.data}"
                )
        home = self.home_directory(line)
        if home is None:
            return
        dir_entry = home.array.lookup(line, touch=False)
        if (
            dir_entry is not None
            and dir_entry.has_data
            and not dir_entry.busy
            and dir_entry.state in (DIR_SHARED, DIR_WIRELESS)
            and self._dense(dir_entry.data) != self._dense(reference.data)
        ):
            raise ProtocolError(
                f"LLC copy of line 0x{line:x} diverges from sharers: "
                f"{dir_entry.data} vs {reference.data}"
            )


class OnlineInvariantMonitor:
    """Incremental invariant sweeps while the simulation runs.

    Installed by :class:`~repro.system.Manycore` when
    ``config.check_interval > 0``. Controllers call :meth:`touch` for every
    line they process; the mesh reports wired sends/deliveries so the
    monitor can tell when a line has traffic in flight. Every ``interval``
    cycles (armed lazily — the monitor never keeps an otherwise-drained
    event queue alive), a sweep over the touched set applies:

    * **SWMR** — unconditionally (window-free invariant).
    * **Directory accuracy + value agreement** — only when the line is
      *quiet* per :meth:`line_quiet`; non-quiet lines carry to the next
      sweep.

    Violations raise :class:`ProtocolError` tagged with the offending cycle,
    which surfaces *at the event that broke the machine* instead of at the
    end-of-run quiescent check — the property the fuzz campaigns' shrink
    pass depends on for small reproducers.

    The monitor only observes: it draws no random numbers, sends no
    messages, and mutates no protocol state, so enabling it cannot change
    simulated behaviour — only when a violation is detected.
    """

    def __init__(self, machine) -> None:
        self.machine = machine
        self.sim = machine.sim
        self.checker = machine.checker
        self.interval = machine.config.check_interval
        if self.interval <= 0:
            raise ValueError("OnlineInvariantMonitor needs check_interval > 0")
        self._touched: Set[int] = set()
        #: line -> wired messages currently on the mesh for that line.
        self._wired_inflight: Dict[int, int] = {}
        self._armed = False
        #: Diagnostics surfaced in verification campaign summaries.
        self.sweeps = 0
        self.lines_checked = 0

    # ------------------------------------------------------------- wiring

    def install(self) -> None:
        """Attach the observation hooks to every controller and the mesh."""
        for cache in self.machine.caches:
            cache._monitor = self
        for directory in self.machine.directories:
            directory._monitor = self
        self.machine.mesh.monitor = self

    # -------------------------------------------------------------- hooks

    def touch(self, line: int) -> None:
        """A controller processed traffic for ``line``; queue it for checks."""
        self._touched.add(line)
        if not self._armed:
            self._armed = True
            self.sim.schedule(self.interval, self._sweep)

    def msg_sent(self, line: int) -> None:
        """Mesh hook: a wired message for ``line`` entered the network."""
        self._wired_inflight[line] = self._wired_inflight.get(line, 0) + 1
        self.touch(line)

    def msg_delivered(self, line: int) -> None:
        """Mesh hook: a wired message for ``line`` reached its handler."""
        count = self._wired_inflight.get(line, 0)
        if count <= 1:
            self._wired_inflight.pop(line, None)
        else:
            self._wired_inflight[line] = count - 1

    # ---------------------------------------------------------- predicate

    def line_quiet(self, line: int) -> bool:
        """True when no transaction could legally leave ``line`` transient.

        Checks, in rough order of cost: wired messages in flight, wireless
        frames queued/on-air, a ToneAck in progress, any cache-side
        transient structure (MSHR, eviction buffer, pending wireless write,
        RMW watch), and the home entry being busy or holding deferred
        requests.
        """
        if self._wired_inflight.get(line):
            return False
        machine = self.machine
        wireless = machine.wireless
        if wireless is not None and wireless.line_in_flight(line):
            return False
        tone = machine.tone
        if tone is not None and tone.in_flight(line):
            return False
        for cache in machine.caches:
            if (
                cache.mshrs.get(line) is not None
                or line in cache._evicting
                or line in cache._pending_wireless
                or line in cache._rmw_watch
            ):
                return False
        home = self.checker.home_directory(line)
        if home is not None:
            entry = home.array.lookup(line, touch=False)
            if entry is not None and (entry.busy or entry.deferred):
                return False
        return True

    # -------------------------------------------------------------- sweep

    def _sweep(self) -> None:
        self._armed = False
        self.sweeps += 1
        checker = self.checker
        carry: Set[int] = set()
        for line in self._touched:
            self.lines_checked += 1
            entries = checker.line_holders(line)
            try:
                checker.check_swmr_line(line, entries)
                if self.line_quiet(line):
                    home = checker.home_directory(line)
                    if home is not None:
                        dir_entry = home.array.lookup(line, touch=False)
                        if dir_entry is not None and not dir_entry.busy:
                            checker.check_entry_accuracy(dir_entry, entries)
                    checker.check_value_line(line, entries)
                else:
                    carry.add(line)
            except ProtocolError as exc:
                raise ProtocolError(
                    f"[online @ cycle {self.sim.now}] {exc}"
                ) from exc
        self._touched = carry
        # Re-arm only while other events exist: a self-rescheduling sweep
        # would otherwise keep Simulator.run()'s drain loop alive forever.
        if carry and self.sim.pending_events > 0:
            self._armed = True
            self.sim.schedule(self.interval, self._sweep)
