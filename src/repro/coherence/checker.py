"""Global coherence invariant checking.

The checker inspects the *whole machine* — every private cache and every
directory slice — and verifies the invariants that any correct realization
of the protocol must maintain at quiescent points:

* **SWMR**: a line held Modified/Exclusive anywhere is held nowhere else.
* **Directory accuracy**: a non-busy directory entry's state agrees with the
  private caches (owner really holds E/M; every S holder is recorded unless
  its eviction notice is still in flight; W holders do not exceed
  SharerCount).
* **Value agreement**: all Shared/Wireless copies of a word, the LLC copy,
  and (when no dirty copy exists) memory agree.

Tests call :meth:`CoherenceChecker.check` between phases and at the end of a
run; it raises :class:`~repro.engine.errors.ProtocolError` with a precise
description on the first violation.
"""

from __future__ import annotations

from typing import Dict, List

from repro.coherence.states import (
    DIR_EXCLUSIVE,
    DIR_SHARED,
    DIR_WIRELESS,
    EXCLUSIVE,
    MODIFIED,
    SHARED,
    WIRELESS,
)
from repro.engine.errors import ProtocolError


class CoherenceChecker:
    """Walks caches and directories validating cross-component invariants."""

    def __init__(self, caches, directories, memory) -> None:
        self.caches = caches
        self.directories = directories
        self.memory = memory

    def _holders(self) -> Dict[int, List]:
        holders: Dict[int, List] = {}
        for cache in self.caches:
            for entry in cache.array.lines():
                holders.setdefault(entry.line, []).append((cache.node, entry))
        return holders

    def check(self, quiescent: bool = True) -> None:
        """Validate all invariants; raise :class:`ProtocolError` on failure.

        ``quiescent=True`` additionally enforces the directory-accuracy and
        value-agreement invariants, which only hold when no transaction is
        in flight (no pending events touching the memory system).
        """
        holders = self._holders()
        self._check_swmr(holders)
        if quiescent:
            self._check_directory_accuracy(holders)
            self._check_value_agreement(holders)

    def _check_swmr(self, holders: Dict[int, List]) -> None:
        for line, entries in holders.items():
            exclusive = [n for n, e in entries if e.state in (MODIFIED, EXCLUSIVE)]
            if len(exclusive) > 1:
                raise ProtocolError(
                    f"SWMR violated for line 0x{line:x}: "
                    f"multiple exclusive holders {exclusive}"
                )
            if exclusive and len(entries) > 1:
                others = [n for n, e in entries if e.state not in (MODIFIED, EXCLUSIVE)]
                raise ProtocolError(
                    f"SWMR violated for line 0x{line:x}: exclusive holder "
                    f"{exclusive[0]} coexists with holders {others}"
                )

    def _check_directory_accuracy(self, holders: Dict[int, List]) -> None:
        for directory in self.directories:
            for entry in directory.array.entries():
                if entry.busy:
                    continue
                cached = holders.get(entry.line, [])
                if entry.state == DIR_EXCLUSIVE:
                    owners = [n for n, e in cached if e.state in (MODIFIED, EXCLUSIVE)]
                    if owners != [entry.owner]:
                        raise ProtocolError(
                            f"directory E entry 0x{entry.line:x} names owner "
                            f"{entry.owner} but caches hold {owners}"
                        )
                elif entry.state == DIR_SHARED:
                    actual = {n for n, e in cached if e.state == SHARED}
                    if not actual.issubset(entry.sharers):
                        raise ProtocolError(
                            f"directory S entry 0x{entry.line:x} misses sharers "
                            f"{actual - entry.sharers}"
                        )
                elif entry.state == DIR_WIRELESS:
                    actual = {n for n, e in cached if e.state == WIRELESS}
                    if len(actual) > entry.sharer_count:
                        raise ProtocolError(
                            f"directory W entry 0x{entry.line:x} counts "
                            f"{entry.sharer_count} sharers but caches hold "
                            f"{sorted(actual)}"
                        )

    @staticmethod
    def _dense(data: Dict[int, int]) -> Dict[int, int]:
        """Drop zero-valued words: sparse line images treat them as implicit."""
        return {word: value for word, value in data.items() if value != 0}

    def _check_value_agreement(self, holders: Dict[int, List]) -> None:
        directory_by_home: Dict[int, object] = {
            d.node: d for d in self.directories
        }
        for line, entries in holders.items():
            shared_copies = [e for _, e in entries if e.state in (SHARED, WIRELESS)]
            if len(shared_copies) < 1:
                continue
            reference = shared_copies[0]
            for other in shared_copies[1:]:
                if self._dense(other.data) != self._dense(reference.data):
                    raise ProtocolError(
                        f"divergent shared copies of line 0x{line:x}: "
                        f"{reference.data} vs {other.data}"
                    )
            home = directory_by_home.get(self.caches[0].amap.home_of(line))
            if home is None:
                continue
            dir_entry = home.array.lookup(line, touch=False)
            if (
                dir_entry is not None
                and dir_entry.has_data
                and not dir_entry.busy
                and dir_entry.state in (DIR_SHARED, DIR_WIRELESS)
                and self._dense(dir_entry.data) != self._dense(reference.data)
            ):
                raise ProtocolError(
                    f"LLC copy of line 0x{line:x} diverges from sharers: "
                    f"{dir_entry.data} vs {reference.data}"
                )
