"""``repro.api`` — the stable, supported public API.

Four PRs of organic growth scattered entry points across
``repro.harness.runner``, ``repro.harness.executor``, ``repro.verify`` and
the CLI. This module is the one import users should reach for::

    from repro import api

    result = api.simulate("radiosity", cores=16)
    diff   = api.compare("radiosity", cores=16)
    grid   = api.sweep("protocols", apps=("radiosity", "fmm"), cores=16)
    report = api.campaign("nightly", apps=("radiosity",), out="campaigns/n1")
    checks = api.verify(campaign="smoke")
    traced = api.trace("radiosity", cores=8)
    info   = api.record_trace("radix", out="radix.wtr", cores=8)
    again  = api.replay("radix.wtr")

Stability contract (see docs/API.md):

* every name in ``__all__`` keeps its signature and result type across
  minor releases; additions are keyword-only with defaults;
* replaced entry points keep working for one release behind
  ``DeprecationWarning`` shims (e.g. the top-level ``repro.run_app`` /
  ``repro.run_pair``);
* importing this module stays cheap: nothing beyond what
  ``repro.harness`` already loads — verification, observability export,
  and campaign machinery are imported lazily inside the functions that
  need them.

Every function returns a *typed* result object (never a bare tuple or
dict): :class:`~repro.harness.runner.SimulationResult`,
:class:`ComparisonResult`, :class:`SweepResult`,
:class:`~repro.harness.campaign.CampaignReport`, :class:`VerifyReport`,
or :class:`TraceResult`.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.coherence.backend import backend_names, get_backend
from repro.config.presets import protocol_config
from repro.config.system import SystemConfig
from repro.harness.executor import Executor
from repro.harness.runner import SimulationResult
from repro.wireless.mac import get_mac, registered_macs

__all__ = [
    "ComparisonResult",
    "MacInfo",
    "SweepResult",
    "TraceFileInfo",
    "TraceResult",
    "VerifyReport",
    "campaign",
    "compare",
    "convert_trace",
    "distributed_campaign",
    "macs",
    "protocols",
    "record_trace",
    "replay",
    "simulate",
    "sweep",
    "trace",
    "trace_info",
    "validate_trace",
    "verify",
]

_SWEEP_KINDS = ("protocols", "cores", "thresholds")


def protocols() -> Tuple[str, ...]:
    """Names of every registered coherence-protocol backend, sorted."""
    return backend_names()


@dataclass(frozen=True)
class MacInfo:
    """Capability card of one registered wireless MAC backend
    (:func:`macs`)."""

    name: str
    description: str
    collision_free: bool
    uses_backoff: bool
    multi_channel: bool


def macs() -> Tuple[MacInfo, ...]:
    """Every registered wireless MAC backend, sorted by name.

    Returns :class:`MacInfo` cards rather than bare names so callers can
    filter on capabilities (``[m.name for m in api.macs() if
    m.collision_free]``); pass a name to ``simulate(mac=...)`` /
    ``sweep(macs=...)`` / ``campaign(macs=...)``.
    """
    return tuple(
        MacInfo(
            name=backend.name,
            description=backend.description,
            collision_free=backend.collision_free,
            uses_backoff=backend.uses_backoff,
            multi_channel=backend.multi_channel,
        )
        for backend in registered_macs()
    )


def _executor(workers: Optional[int], cache: bool) -> Executor:
    return Executor(workers=workers, use_cache=None if cache else False)


def _config_for(
    protocol: str,
    cores: int,
    seed: int,
    max_wired_sharers: int,
    mac: str = "brs",
) -> SystemConfig:
    from dataclasses import replace

    backend = get_backend(protocol)  # raises ValueError naming the known set
    config = protocol_config(
        protocol,
        num_cores=cores,
        max_wired_sharers=(
            max_wired_sharers if backend.uses_sharer_threshold else None
        ),
        seed=seed,
    )
    if mac != config.mac and backend.uses_wireless:
        get_mac(mac)  # raises ValueError naming the known set
        config = replace(config, mac=mac)
    return config


# ------------------------------------------------------------ result types


@dataclass(frozen=True)
class ComparisonResult:
    """Baseline vs WiDir on identical traces (:func:`compare`)."""

    app: str
    baseline: SimulationResult
    widir: SimulationResult

    @property
    def speedup(self) -> float:
        """Baseline cycles / WiDir cycles (> 1.0: WiDir is faster)."""
        return self.baseline.cycles / max(1, self.widir.cycles)

    @property
    def energy_ratio(self) -> float:
        """WiDir energy / Baseline energy."""
        return self.widir.energy.total / max(1e-12, self.baseline.energy.total)

    @property
    def mpki_ratio(self) -> float:
        return self.widir.mpki / self.baseline.mpki if self.baseline.mpki else 1.0


@dataclass(frozen=True)
class SweepResult:
    """A labelled grid of results (:func:`sweep`).

    ``missing`` is non-empty only when sweeping against a degraded
    campaign's results (see :func:`campaign`): the sweep then renders from
    what completed instead of aborting.
    """

    kind: str
    results: Dict[str, SimulationResult]
    missing: Tuple[str, ...] = ()

    @property
    def partial(self) -> bool:
        return bool(self.missing)

    def __getitem__(self, label: str) -> SimulationResult:
        return self.results[label]

    def __iter__(self):
        return iter(self.results.items())

    def __len__(self) -> int:
        return len(self.results)

    def speedups(self) -> Dict[str, float]:
        """app -> WiDir speedup, for sweeps that ran both protocols."""
        from repro.harness.sweeps import speedup_table

        return speedup_table(self.results)


@dataclass(frozen=True)
class VerifyReport:
    """Protocol verification outcome (:func:`verify`)."""

    campaign: str
    seed: int
    litmus_violations: Tuple[str, ...]
    fuzz_failures: Tuple[str, ...]
    digest: str
    artifacts: Tuple[str, ...] = ()

    @property
    def ok(self) -> bool:
        return not self.litmus_violations and not self.fuzz_failures


@dataclass(frozen=True)
class TraceFileInfo:
    """Summary of a canonical trace file (:func:`record_trace`,
    :func:`convert_trace`, :func:`trace_info`, :func:`validate_trace`).

    ``trace_id`` is the content digest the replay/caching layers key on;
    ``details`` carries the full :func:`repro.traces.trace_info` payload
    (per-core record/barrier counts, metadata, compression ratio).
    """

    path: str
    app: str
    num_cores: int
    chunks: int
    records: int
    trace_id: str
    codec: str = ""
    file_bytes: int = 0
    compression_ratio: float = 0.0
    details: Dict = None  # type: ignore[assignment]

    @classmethod
    def _from_payload(cls, payload: Dict) -> "TraceFileInfo":
        return cls(
            path=payload["path"],
            app=payload.get("app", ""),
            num_cores=payload.get("num_cores", 0),
            chunks=payload.get("chunks", 0),
            records=payload.get("records", 0),
            trace_id=payload.get("trace_id", ""),
            codec=payload.get("codec", ""),
            file_bytes=payload.get("file_bytes", 0),
            compression_ratio=payload.get("compression_ratio", 0.0),
            details=dict(payload),
        )


@dataclass(frozen=True)
class TraceResult:
    """A simulation plus its observability capture (:func:`trace`)."""

    result: SimulationResult
    capture: Dict

    def write_chrome_trace(self, path: Union[str, Path]) -> Path:
        """Export the capture as Chrome/Perfetto ``trace.json``."""
        from repro.obs import write_chrome_trace

        path = Path(path)
        write_chrome_trace(self.capture, path)
        return path

    def timeline(self, limit: int = 40) -> str:
        from repro.obs import render_text_timeline

        return render_text_timeline(self.capture, limit=limit)


# -------------------------------------------------------------- functions


def simulate(
    app: str,
    *,
    protocol: str = "widir",
    cores: int = 16,
    memops: Optional[int] = None,
    seed: int = 42,
    trace_seed: int = 0,
    max_wired_sharers: int = 3,
    config: Optional[SystemConfig] = None,
    workers: Optional[int] = None,
    cache: bool = True,
    mac: str = "brs",
) -> SimulationResult:
    """Run one application on one machine; the stable ``run_app``.

    Executes through the deduplicating/memoizing
    :class:`~repro.harness.executor.Executor`, so repeated calls with
    identical arguments are cache hits. ``mac`` selects the wireless MAC
    backend for wireless protocols (see :func:`macs`; ignored by wired
    ones). Pass ``config=`` to override the preset entirely
    (``protocol``/``cores``/``seed``/``mac`` are then ignored).
    """
    resolved = (
        config
        if config is not None
        else _config_for(protocol, cores, seed, max_wired_sharers, mac)
    )
    return _executor(workers, cache).run(app, resolved, memops, trace_seed)


def compare(
    app: str,
    *,
    cores: int = 16,
    memops: Optional[int] = None,
    seed: int = 42,
    trace_seed: int = 0,
    max_wired_sharers: int = 3,
    workers: Optional[int] = None,
    cache: bool = True,
) -> ComparisonResult:
    """Baseline vs WiDir on the same traces; the stable ``run_pair``."""
    base, widir = _executor(workers, cache).run_pair(
        app,
        num_cores=cores,
        memops_per_core=memops,
        trace_seed=trace_seed,
        max_wired_sharers=max_wired_sharers,
        seed=seed,
    )
    return ComparisonResult(app=app, baseline=base, widir=widir)


def sweep(
    kind: str = "protocols",
    *,
    apps: Sequence[str] = (),
    app: Optional[str] = None,
    cores: Union[int, Sequence[int]] = 16,
    thresholds: Sequence[int] = (2, 3, 4, 5),
    memops: Optional[int] = None,
    seed: int = 42,
    workers: Optional[int] = None,
    cache: bool = True,
    executor: Optional[Executor] = None,
    protocols: Sequence[str] = ("baseline", "widir"),
    macs: Sequence[str] = ("brs",),
) -> SweepResult:
    """Run a labelled grid: ``"protocols"``, ``"cores"``, or ``"thresholds"``.

    * ``protocols`` — every app on every backend in ``protocols`` at
      ``cores`` (default: Baseline and WiDir; any registered backend
      name is accepted, see :func:`repro.api.protocols`);
    * ``cores`` — one ``app`` across ``cores`` (a sequence), every
      backend in ``protocols``;
    * ``thresholds`` — one ``app`` across MaxWiredSharers ``thresholds``.

    ``macs`` crosses every wireless protocol in the grid with the named
    MAC backends (wired protocols run once regardless; see :func:`macs`) —
    combined with ``kind="thresholds"`` this is the full MAC x protocol x
    threshold matrix. Pass ``executor=`` to render from an existing
    campaign (``Campaign.result_source()``); missing runs then degrade
    into ``SweepResult.missing`` instead of raising.
    """
    from repro.harness import sweeps as _sweeps

    exe = executor if executor is not None else _executor(workers, cache)
    protocol_names = tuple(protocols)
    for name in protocol_names:
        get_backend(name)  # raises ValueError naming the known set
    mac_names_requested = tuple(macs)
    for name in mac_names_requested:
        get_mac(name)  # raises ValueError naming the known set
    if kind == "protocols":
        if not apps:
            raise ValueError("sweep('protocols') needs apps=(...)")
        core_count = cores if isinstance(cores, int) else tuple(cores)[0]
        expected = [
            _sweeps.label_for(a, config)
            for a in apps
            for p in protocol_names
            for config in _sweeps.mac_variants(
                protocol_config(p, num_cores=core_count, seed=seed),
                mac_names_requested,
            )
        ]
        results = _sweeps.sweep_protocols(
            apps,
            num_cores=core_count,
            memops=memops,
            seed=seed,
            executor=exe,
            protocols=protocol_names,
            macs=mac_names_requested,
        )
    elif kind == "cores":
        target = app if app is not None else (apps[0] if apps else None)
        if target is None:
            raise ValueError("sweep('cores') needs app=...")
        counts = (cores,) if isinstance(cores, int) else tuple(cores)
        expected = [
            _sweeps.label_for(target, config)
            for c in counts
            for p in protocol_names
            for config in _sweeps.mac_variants(
                protocol_config(p, num_cores=c, seed=seed),
                mac_names_requested,
            )
        ]
        results = _sweeps.sweep_core_counts(
            target,
            counts,
            memops=memops,
            seed=seed,
            executor=exe,
            protocols=protocol_names,
            macs=mac_names_requested,
        )
    elif kind == "thresholds":
        target = app if app is not None else (apps[0] if apps else None)
        if target is None:
            raise ValueError("sweep('thresholds') needs app=...")
        core_count = cores if isinstance(cores, int) else tuple(cores)[0]
        expected = [
            _sweeps.label_for(target, config)
            for t in thresholds
            for config in _sweeps.mac_variants(
                protocol_config(
                    "widir",
                    num_cores=core_count,
                    max_wired_sharers=t,
                    seed=seed,
                ),
                mac_names_requested,
            )
        ]
        results = _sweeps.sweep_thresholds(
            target,
            thresholds,
            num_cores=core_count,
            memops=memops,
            seed=seed,
            executor=exe,
            macs=mac_names_requested,
        )
    else:
        raise ValueError(
            f"unknown sweep kind {kind!r}; expected one of {_SWEEP_KINDS}"
        )
    missing = tuple(label for label in expected if label not in results)
    return SweepResult(kind=kind, results=results, missing=missing)


def _campaign_spec(
    name: str,
    kind: str,
    apps: Sequence[str],
    cores: Union[int, Sequence[int]],
    thresholds: Sequence[int],
    memops: Optional[int],
    seed: int,
    trace_seed: int,
    protocols: Sequence[str],
    trace_path: Optional[Union[str, Path]],
    trace_shards: int,
    macs: Sequence[str] = ("brs",),
):
    from repro.harness.campaign import SWEEP_KINDS, CampaignSpec

    if trace_path is not None:
        kind = "trace"
    elif kind not in SWEEP_KINDS:
        kind = "thresholds"
    return CampaignSpec(
        name=name,
        kind=kind,
        apps=tuple(apps),
        cores=(cores,) if isinstance(cores, int) else tuple(cores),
        memops=memops,
        seed=seed,
        thresholds=tuple(thresholds),
        trace_seed=trace_seed,
        protocols=tuple(protocols),
        macs=tuple(macs),
        trace_path=str(trace_path) if trace_path is not None else "",
        trace_shards=trace_shards,
    )


def campaign(
    name: str,
    *,
    apps: Sequence[str] = (),
    out: Union[str, Path],
    kind: str = "protocols",
    cores: Union[int, Sequence[int]] = 16,
    thresholds: Sequence[int] = (2, 3, 4, 5),
    memops: Optional[int] = None,
    seed: int = 42,
    trace_seed: int = 0,
    workers: Optional[int] = None,
    cache: bool = True,
    timeout: Optional[float] = None,
    retries: int = 3,
    backoff_seed: int = 0,
    resume: bool = True,
    protocols: Sequence[str] = ("baseline", "widir"),
    trace_path: Optional[Union[str, Path]] = None,
    trace_shards: int = 0,
    macs: Sequence[str] = ("brs",),
):
    """Run (or resume) a fault-tolerant campaign; returns a
    :class:`~repro.harness.campaign.CampaignReport`.

    The campaign journals completed runs to a crash-safe checkpoint under
    ``out``; rerunning after any interruption resumes exactly where it
    died, and the aggregate ``results.json``/``digest.txt`` are
    byte-identical to an uninterrupted execution. Failed runs are retried
    ``retries`` times with seeded exponential backoff, then surfaced in
    the provenance manifest while the rest of the sweep completes.

    Pass ``trace_path=`` (optionally with ``trace_shards=``) to fan a
    recorded trace file across barrier-safe shard windows instead of
    synthesizing workloads; ``apps`` is then ignored (the app name comes
    from the trace header).
    """
    from repro.harness.campaign import run_campaign
    from repro.harness.supervisor import RetryPolicy, WorkerSupervisor

    spec = _campaign_spec(
        name, kind, apps, cores, thresholds, memops, seed, trace_seed,
        protocols, trace_path, trace_shards, macs,
    )
    supervisor = WorkerSupervisor(
        workers=workers,
        timeout=timeout,
        retry=RetryPolicy(max_attempts=retries, seed=backoff_seed),
    )
    return run_campaign(
        Path(out),
        spec,
        resume=resume,
        supervisor=supervisor,
        executor=_executor(workers, cache),
    )


def distributed_campaign(
    name: str,
    *,
    apps: Sequence[str] = (),
    out: Union[str, Path],
    kind: str = "protocols",
    cores: Union[int, Sequence[int]] = 16,
    thresholds: Sequence[int] = (2, 3, 4, 5),
    memops: Optional[int] = None,
    seed: int = 42,
    trace_seed: int = 0,
    workers: int = 2,
    shards: Optional[int] = None,
    host: str = "127.0.0.1",
    port: int = 0,
    cache: bool = True,
    store: Optional[Union[str, Path]] = None,
    tenant: str = "default",
    retries: int = 3,
    backoff_seed: int = 0,
    lease_timeout: float = 120.0,
    timeout: Optional[float] = None,
    protocols: Sequence[str] = ("baseline", "widir"),
    trace_path: Optional[Union[str, Path]] = None,
    trace_shards: int = 0,
    macs: Sequence[str] = ("brs",),
):
    """Run (or resume) a campaign across ``workers`` distributed agents;
    returns a :class:`~repro.harness.distributed.DistributedReport`.

    An asyncio coordinator shards the run matrix, local worker agents
    lease/steal/execute over the loopback RPC protocol, and completions
    land in per-shard crash-safe journals. The merged ``results.json``
    sha256 is byte-identical to :func:`campaign` on the same plan — the
    resume-identity contract extends across worker counts, steals, and
    kills. ``workers=0`` serves remote agents only (pair with
    ``repro campaign worker --connect``). Pass ``store=`` (a directory)
    to dedupe runs through the content-addressed multi-tenant result
    store and publish this campaign's manifest under ``tenant``.
    ``trace_path=``/``trace_shards=`` fan a recorded trace's barrier-safe
    shard windows across the workers (trace-sharded campaigns; each
    window replays cold on whichever worker leases it).
    """
    from repro.harness.distributed import run_distributed
    from repro.harness.resultstore import ResultStore
    from repro.harness.supervisor import RetryPolicy

    spec = _campaign_spec(
        name, kind, apps, cores, thresholds, memops, seed, trace_seed,
        protocols, trace_path, trace_shards, macs,
    )
    return run_distributed(
        Path(out),
        spec,
        workers=workers,
        shards=shards,
        host=host,
        port=port,
        executor=_executor(1, cache),
        store=ResultStore(store) if store is not None else None,
        tenant=tenant,
        retry=RetryPolicy(max_attempts=retries, seed=backoff_seed),
        lease_timeout=lease_timeout,
        timeout=timeout,
    )


def verify(
    *,
    campaign: str = "smoke",
    seed: int = 0,
    trials: Optional[int] = None,
    litmus: bool = True,
    litmus_schedules: int = 6,
    mutation: Optional[str] = None,
) -> VerifyReport:
    """Run a protocol-verification campaign (litmus suite + fuzzing)."""
    from repro.verify.fuzz import CAMPAIGNS, run_campaign as run_fuzz
    from repro.verify.litmus import run_suite

    if campaign not in CAMPAIGNS:
        raise ValueError(
            f"unknown verify campaign {campaign!r}; "
            f"available: {sorted(CAMPAIGNS)}"
        )
    violations: List[str] = []
    if litmus:
        for outcome in run_suite(
            num_cores=8,
            schedules=litmus_schedules,
            seed=seed,
            online_interval=150,
        ):
            violations.extend(str(v) for v in outcome.violations)
    fuzz = run_fuzz(campaign, seed=seed, trials=trials, mutation=mutation)
    return VerifyReport(
        campaign=campaign,
        seed=seed,
        litmus_violations=tuple(violations),
        fuzz_failures=tuple(str(f) for f in fuzz.failures),
        digest=fuzz.digest,
    )


def trace(
    app: str,
    *,
    protocol: str = "widir",
    cores: int = 16,
    memops: Optional[int] = None,
    seed: int = 42,
    trace_seed: int = 0,
    max_wired_sharers: int = 3,
    sample_interval: Optional[int] = None,
    flight_recorder_depth: Optional[int] = None,
    mac: str = "brs",
) -> TraceResult:
    """Run one app with the observability layer enabled.

    Tracing is digest-neutral: ``TraceResult.result`` is bit-identical to
    the same :func:`simulate` call (the trace-smoke CI job enforces it).
    Runs in-process (no executor/cache) because the capture must be read
    from the live machine.
    """
    from dataclasses import replace

    from repro.config.system import ObsConfig
    from repro.harness.runner import run_app

    defaults = ObsConfig()
    config = replace(
        _config_for(protocol, cores, seed, max_wired_sharers, mac),
        obs=ObsConfig(
            enabled=True,
            flight_recorder_depth=(
                flight_recorder_depth
                if flight_recorder_depth is not None
                else defaults.flight_recorder_depth
            ),
            sample_interval=(
                sample_interval
                if sample_interval is not None
                else defaults.sample_interval
            ),
        ),
    )
    sink: List = []
    result = run_app(
        app, config, memops, trace_seed=trace_seed, machine_sink=sink
    )
    capture = sink[0].obs.capture(app=app)
    return TraceResult(result=result, capture=capture)


# ------------------------------------------------- recorded-trace functions


def record_trace(
    app: str,
    *,
    out: Union[str, Path],
    cores: int = 16,
    memops: int = 800,
    trace_seed: int = 0,
    chunk_records: Optional[int] = None,
    codec: Optional[str] = None,
) -> TraceFileInfo:
    """Record ``app``'s synthetic reference stream into the canonical
    chunked/compressed trace format at ``out``.

    Cores are synthesized and flushed one at a time, so peak memory is
    O(one chunk) regardless of trace size. The returned
    :class:`TraceFileInfo` carries the content ``trace_id`` the replay
    and caching layers verify against.
    """
    from repro.traces import DEFAULT_CHUNK_RECORDS, record_app_trace

    payload = record_app_trace(
        out,
        app,
        cores,
        memops,
        trace_seed=trace_seed,
        chunk_records=(
            chunk_records if chunk_records is not None else DEFAULT_CHUNK_RECORDS
        ),
        codec=codec,
    )
    return TraceFileInfo._from_payload(payload)


def convert_trace(
    src: Union[str, Path],
    *,
    out: Union[str, Path],
    cores: Optional[int] = None,
    app: str = "imported",
    chunk_records: Optional[int] = None,
    codec: Optional[str] = None,
) -> TraceFileInfo:
    """Convert an external CSV/text op listing into the canonical format.

    Both passes stream line-by-line (``cores`` defaults to ``max(core)+1``
    discovered in the first pass), so arbitrarily large inputs convert in
    bounded memory.
    """
    from repro.traces import DEFAULT_CHUNK_RECORDS, convert_csv

    payload = convert_csv(
        src,
        out,
        num_cores=cores,
        app=app,
        chunk_records=(
            chunk_records if chunk_records is not None else DEFAULT_CHUNK_RECORDS
        ),
        codec=codec,
    )
    return TraceFileInfo._from_payload(payload)


def trace_info(path: Union[str, Path]) -> TraceFileInfo:
    """Header + footer-index summary of a trace file (no payload reads)."""
    from repro.traces import trace_info as _info

    return TraceFileInfo._from_payload(_info(path))


def validate_trace(path: Union[str, Path]) -> TraceFileInfo:
    """Full-scan integrity check (decompress + CRC every chunk).

    Raises :class:`repro.traces.TraceCorruptionError` /
    :class:`repro.traces.TraceFormatError` on the first problem.
    """
    from repro.traces import validate_trace as _validate

    return TraceFileInfo._from_payload(_validate(path))


def replay(
    path: Union[str, Path],
    *,
    protocol: str = "widir",
    seed: int = 42,
    max_wired_sharers: int = 3,
    config: Optional[SystemConfig] = None,
    snapshot_every: int = 0,
    mac: str = "brs",
    snapshot_path: Optional[Union[str, Path]] = None,
    expect_trace_id: str = "",
) -> SimulationResult:
    """Replay a recorded trace through the full machine.

    A continuous replay (``snapshot_every=0``) is event-for-event
    identical to the live run that recorded the trace — same result
    digest. ``snapshot_every > 0`` selects segmented execution with
    periodic machine snapshots; give ``snapshot_path`` to make them
    durable so a killed replay resumes mid-trace with a byte-identical
    final digest. The core count comes from the trace header.
    """
    from repro.traces import replay_trace
    from repro.traces import trace_info as _info

    if config is None:
        num_cores = _info(path)["num_cores"]
        config = _config_for(protocol, num_cores, seed, max_wired_sharers, mac)
    return replay_trace(
        path,
        config,
        snapshot_every=snapshot_every,
        snapshot_path=snapshot_path,
        expect_trace_id=expect_trace_id,
    )
