"""Machine assembly: wire every component of Table III into a manycore.

:class:`Manycore` builds the whole system for a given
:class:`~repro.config.SystemConfig` — simulator kernel, address map, wired
mesh, optional wireless channels, per-tile cache and directory controllers,
memory controllers — and routes messages/frames to the right controller.
The CPU cores (:mod:`repro.cpu`) attach on top of this object.
"""

from __future__ import annotations

from typing import List, Optional

from repro.coherence.backend import get_backend
from repro.coherence.cache import CacheController  # noqa: F401 (typing)
from repro.coherence.checker import CoherenceChecker, OnlineInvariantMonitor
from repro.coherence.dir_controller import DirectoryController
from repro.config.system import SystemConfig
from repro.engine.simulator import Simulator
from repro.mem.address import AddressMap
from repro.mem.memory_controller import MainMemory, MemoryController
from repro.noc.mesh import MeshNetwork
from repro.noc.message import Message
from repro.noc.topology import MeshTopology
from repro.obs.hooks import Observability
from repro.stats.collectors import StatsRegistry
from repro.wireless.channel import WirelessDataChannel
from repro.wireless.errors import ChannelErrorModel
from repro.wireless.frames import WirelessFrame
from repro.wireless.mac import get_mac
from repro.wireless.tone import ToneChannel

class Manycore:
    """A fully wired manycore ready to execute memory operations.

    Parameters
    ----------
    config:
        Machine description; ``config.protocol`` names a registered
        coherence-protocol backend (see :mod:`repro.coherence.backend`).
    """

    def __init__(self, config: SystemConfig) -> None:
        config.validate()
        self.config = config
        #: The coherence-protocol backend every tile is built from. The
        #: backend owns the state machine (controller factories), the
        #: permission sets, and the directory slice of the message
        #: vocabulary (the wired-router kind table below).
        self.backend = get_backend(config.protocol)
        self.sim = Simulator(config.seed)
        self.stats = StatsRegistry("manycore")
        self.amap = AddressMap(
            config.l1.line_bytes, config.num_cores, config.memory.num_controllers
        )
        self.topology = MeshTopology(config.num_cores, config.mesh_width)
        self.mesh = MeshNetwork(
            self.sim, self.topology, config.noc, self.stats, config.l1.line_bytes
        )

        self.wireless: Optional[WirelessDataChannel] = None
        self.tone: Optional[ToneChannel] = None
        if config.uses_wireless:
            # Built only when enabled: a disabled model splits no RNG and
            # registers no counters, keeping default digests untouched.
            errors = None
            if config.channel_errors.enabled:
                errors = ChannelErrorModel(
                    config.channel_errors,
                    self.sim.rng.split("channel-errors"),
                    self.stats,
                )
            self.wireless = WirelessDataChannel(
                self.sim,
                config.wireless,
                config.num_cores,
                self.stats,
                self.sim.rng.split("wnoc"),
                mac=get_mac(config.mac),
                errors=errors,
            )
            self.tone = ToneChannel(
                self.sim,
                config.wireless.tone_cycles,
                self.stats,
                errors=errors,
            )

        self.memory = MainMemory()
        self.memory_controllers: List[MemoryController] = [
            MemoryController(
                self.sim, self.memory, config.memory.round_trip_cycles, self.stats, i
            )
            for i in range(config.memory.num_controllers)
        ]

        #: Wired message kinds consumed by the home directory slice of a
        #: tile, as a kind-id-indexed bool table (the router runs once per
        #: delivered message — no per-message set hashing). Kind ids
        #: interned by *other* backends fall off/read False and route to
        #: the cache side, which rejects unknown kinds with the same
        #: ProtocolError as before.
        self._directory_kind_table: List[bool] = self.backend.directory_kind_table()

        self.caches: List[CacheController] = []
        self.directories: List[DirectoryController] = []
        for node in range(config.num_cores):
            cache = self.backend.cache_factory(
                self.sim,
                node,
                config,
                self.amap,
                self.mesh,
                self.stats,
                self.sim.rng.split(f"cache-{node}"),
                self.wireless,
                self.tone,
            )
            directory = self.backend.directory_factory(
                self.sim,
                node,
                config,
                self.amap,
                self.mesh,
                self.memory_controllers,
                self.stats,
                self.wireless,
                self.tone,
            )
            self.caches.append(cache)
            self.directories.append(directory)
            self.mesh.register_handler(node, self._make_wired_router(node))
            if self.wireless is not None:
                self.wireless.register_receiver(node, self._make_frame_router(node))

        self.checker = CoherenceChecker(self.caches, self.directories, self.memory)

        #: Online invariant checking (verification subsystem): observes
        #: every controller and validates per-line invariants mid-run.
        self.monitor: Optional[OnlineInvariantMonitor] = None
        if config.check_interval > 0:
            self.monitor = OnlineInvariantMonitor(self)
            self.monitor.install()

        #: Observability (:mod:`repro.obs`): transaction spans, the flight
        #: recorder, and sampled counter tracks. Reading-only hooks, so
        #: enabling it never changes simulated behaviour (golden digests
        #: are byte-identical either way).
        self.obs: Optional[Observability] = None
        if config.obs.enabled:
            self.obs = Observability(self, config.obs)
            self.obs.install()

    def _make_wired_router(self, node: int):
        cache = self.caches[node]
        directory = self.directories[node]
        table = self._directory_kind_table
        table_len = len(table)

        def route(message: Message) -> None:
            kid = message.kind_id
            if kid < table_len and table[kid]:
                directory.handle_message(message)
            else:
                cache.handle_message(message)

        return route

    def _make_frame_router(self, node: int):
        cache = self.caches[node]
        directory = self.directories[node]

        def route(frame: WirelessFrame) -> None:
            cache.handle_frame(frame)
            directory.handle_frame(frame)

        return route

    # --------------------------------------------------------- conveniences

    def cache(self, node: int) -> CacheController:
        return self.caches[node]

    def run(self, until: Optional[int] = None, max_events: Optional[int] = None) -> int:
        """Drain the event queue (delegates to the simulator kernel)."""
        return self.sim.run(until=until, max_events=max_events)

    def check_coherence(self, quiescent: bool = True) -> None:
        """Validate global protocol invariants (see CoherenceChecker)."""
        self.checker.check(quiescent=quiescent)
