"""Span-based transaction tracing.

A *span* is one protocol-level unit of work with a begin cycle, an end
cycle, and any number of timestamped *phase* marks in between:

* a **transaction span** (``cat="txn"``) follows one coherence transaction
  from the requester's point of view — a GetS/GetX miss from MSHR
  allocation to fill, a writeback from eviction to PutAck, a directory
  transaction from ``busy=True`` to ``_unbusy`` — with phases for NACK
  bounces, retries, and defers;
* a **frame span** (``cat="frame"``) follows one wireless transmit request
  from submission through arbitration (jam/collision/backoff phases), the
  commit (serialization) point, to delivery — or to an explicit
  cancellation with a reason (squashed RMW, re-issued wireless write);
* a **tone span** (``cat="tone"``) follows one ToneAck operation from
  ``begin`` to silence.

Spans are plain records: opening, phasing, and closing never touches the
simulator, the RNG, or any protocol structure, so tracing is behaviour-
neutral by construction (locked by the golden-digest tests).

Every opened span must be closed or cancelled by the time the event queue
drains; :meth:`TransactionTracer.audit` returns the violators (the
"orphan-span audit" of the acceptance criteria).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

#: Span lifecycle states.
OPEN = "open"
CLOSED = "closed"
CANCELLED = "cancelled"


class Span:
    """One traced unit of protocol work (see module docstring)."""

    __slots__ = (
        "sid",
        "cat",
        "name",
        "node",
        "line",
        "open_cycle",
        "close_cycle",
        "phases",
        "status",
        "reason",
    )

    def __init__(
        self, sid: int, cat: str, name: str, node: int, line: int, cycle: int
    ) -> None:
        self.sid = sid
        self.cat = cat
        self.name = name
        self.node = node
        self.line = line
        self.open_cycle = cycle
        self.close_cycle: Optional[int] = None
        #: Lazily allocated: most spans (plain misses, uncontended frames)
        #: never record a phase, and span construction is on the traced hot
        #: path, so the empty list is not built up front.
        self.phases: Optional[List[Tuple[int, str]]] = None
        self.status = OPEN
        self.reason: Optional[str] = None

    # ------------------------------------------------------------ lifecycle

    def phase(self, cycle: int, label: str) -> None:
        """Record a named phase timestamp (no-op once the span resolved)."""
        if self.status == OPEN:
            phases = self.phases
            if phases is None:
                phases = self.phases = []
            phases.append((cycle, label))

    def close(self, cycle: int) -> None:
        """Mark successful completion (idempotent)."""
        if self.status == OPEN:
            self.status = CLOSED
            self.close_cycle = cycle

    def cancel(self, cycle: int, reason: str) -> None:
        """Mark explicit cancellation with a reason (idempotent)."""
        if self.status == OPEN:
            self.status = CANCELLED
            self.close_cycle = cycle
            self.reason = reason

    @property
    def resolved(self) -> bool:
        return self.status != OPEN

    @property
    def duration(self) -> Optional[int]:
        if self.close_cycle is None:
            return None
        return self.close_cycle - self.open_cycle

    # -------------------------------------------------------- serialization

    def to_dict(self) -> Dict:
        return {
            "sid": self.sid,
            "cat": self.cat,
            "name": self.name,
            "node": self.node,
            "line": self.line,
            "open": self.open_cycle,
            "close": self.close_cycle,
            "phases": [[cycle, label] for cycle, label in (self.phases or ())],
            "status": self.status,
            "reason": self.reason,
        }

    @classmethod
    def from_dict(cls, payload: Dict) -> "Span":
        span = cls(
            payload["sid"],
            payload["cat"],
            payload["name"],
            payload["node"],
            payload["line"],
            payload["open"],
        )
        phases = [(cycle, label) for cycle, label in payload["phases"]]
        span.phases = phases or None
        span.status = payload["status"]
        span.close_cycle = payload["close"]
        span.reason = payload.get("reason")
        return span

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"Span(#{self.sid} {self.cat}:{self.name} node={self.node} "
            f"line=0x{self.line:x} [{self.open_cycle}, {self.close_cycle}] "
            f"{self.status})"
        )


class TransactionTracer:
    """Owns every span of one run and hands out deterministic span ids.

    Ids are a simple monotonic counter: two identical runs trace identical
    span sequences, so ids (and the whole capture) are reproducible.
    """

    def __init__(self) -> None:
        self._next_sid = 1
        self.spans: List[Span] = []
        self._open_count = 0

    def open(self, cat: str, name: str, node: int, line: int, cycle: int) -> Span:
        span = Span(self._next_sid, cat, name, node, line, cycle)
        self._next_sid += 1
        self.spans.append(span)
        self._open_count += 1
        return span

    def close(self, span: Optional[Span], cycle: int) -> None:
        if span is not None and span.status == OPEN:
            span.close(cycle)
            self._open_count -= 1

    def cancel(self, span: Optional[Span], cycle: int, reason: str) -> None:
        if span is not None and span.status == OPEN:
            span.cancel(cycle, reason)
            self._open_count -= 1

    # ------------------------------------------------------------ reporting

    @property
    def open_spans(self) -> int:
        return self._open_count

    def audit(self) -> List[Span]:
        """Spans still open — at drain this list must be empty (every
        transaction/frame span closed or explicitly cancelled)."""
        if self._open_count == 0:
            return []
        return [s for s in self.spans if s.status == OPEN]

    def by_category(self) -> Dict[str, List[Span]]:
        out: Dict[str, List[Span]] = {}
        for span in self.spans:
            out.setdefault(span.cat, []).append(span)
        return out

    def to_payload(self) -> List[Dict]:
        return [span.to_dict() for span in self.spans]
