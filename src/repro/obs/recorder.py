"""The flight recorder: a bounded per-node ring buffer of protocol events.

Every instrumentation hook appends one small tuple of *primitives* — never
a :class:`~repro.noc.message.Message` or
:class:`~repro.wireless.frames.WirelessFrame` reference, since both are
pooled and recycled — to the ring of the node the event happened at. Each
ring holds the last ``depth`` events (``collections.deque`` with
``maxlen``), so retention cost is O(1) per event and memory is bounded
regardless of run length.

On demand (``repro trace``), on a stuck-detection dump
(:func:`repro.harness.debug.dump_stuck_state`), or on a verify-campaign
failure (the ``trace`` field of a
:class:`~repro.verify.artifacts.FailureArtifact`), the recorder merges its
rings into one time-ordered window: "what was the machine doing just
before this happened".
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, List, Optional, Tuple

#: Version tag of the recorder dump format embedded in trace payloads and
#: verify failure artifacts; bump when the event tuple layout changes.
TRACE_SCHEMA_VERSION = 1

#: Synthetic node id for machine-wide events (channel, tone — resources not
#: owned by any one tile).
GLOBAL_NODE = -1

#: One recorded event: (cycle, seq, node, kind, line, detail).
EventTuple = Tuple[int, int, int, str, int, str]


class FlightRecorder:
    """Last-N protocol events per node, merged on demand."""

    def __init__(self, num_nodes: int, depth: int = 256) -> None:
        self.num_nodes = num_nodes
        self.depth = depth
        #: index num_nodes holds the GLOBAL_NODE ring.
        self._rings: List[Deque[EventTuple]] = [
            deque(maxlen=depth) for _ in range(num_nodes + 1)
        ]
        #: Monotonic sequence for total-ordering events within a cycle.
        self._seq = 0
        self.dropped = 0  # events aged out of a full ring (diagnostic only)

    # ------------------------------------------------------------ recording

    def record(
        self, node: int, cycle: int, kind: str, line: int = -1, detail: str = ""
    ) -> None:
        """Append one event to ``node``'s ring (``GLOBAL_NODE`` allowed)."""
        ring = self._rings[node if 0 <= node < self.num_nodes else self.num_nodes]
        if len(ring) == ring.maxlen:
            self.dropped += 1
        seq = self._seq
        self._seq = seq + 1
        ring.append((cycle, seq, node, kind, line, detail))

    # -------------------------------------------------------------- reading

    def events(self, last: Optional[int] = None) -> List[EventTuple]:
        """All retained events merged in (cycle, seq) order.

        ``last`` keeps only the most recent N of the merged window.
        """
        merged: List[EventTuple] = []
        for ring in self._rings:
            merged.extend(ring)
        merged.sort(key=lambda e: (e[0], e[1]))
        if last is not None and last < len(merged):
            merged = merged[-last:]
        return merged

    def to_payload(self, last: Optional[int] = None) -> Dict:
        """JSON-serializable dump (schema-versioned; used by trace captures
        and verify failure artifacts)."""
        return {
            "schema": TRACE_SCHEMA_VERSION,
            "depth": self.depth,
            "num_nodes": self.num_nodes,
            "dropped": self.dropped,
            "events": [
                [cycle, node, kind, line, detail]
                for cycle, _seq, node, kind, line, detail in self.events(last)
            ],
        }

    # ------------------------------------------------------------ rendering

    @staticmethod
    def render_payload(payload: Dict, indent: str = "") -> List[str]:
        """Render a :meth:`to_payload` dump as human-readable lines.

        This is the single rendering path shared by ``repro trace
        summarize``, ``repro verify replay`` (artifact timelines), and
        :func:`repro.harness.debug.dump_stuck_state`.
        """
        lines: List[str] = []
        for cycle, node, kind, line, detail in payload.get("events", []):
            where = "machine" if node < 0 else f"node {node:>3}"
            addr = f" line=0x{line:x}" if line >= 0 else ""
            extra = f" {detail}" if detail else ""
            lines.append(f"{indent}@{cycle:>8} [{where}] {kind}{addr}{extra}")
        dropped = payload.get("dropped", 0)
        if dropped:
            lines.append(
                f"{indent}({dropped} older events aged out of the "
                f"{payload.get('depth')}-deep rings)"
            )
        return lines

    def render(self, last: Optional[int] = None, indent: str = "") -> List[str]:
        return self.render_payload(self.to_payload(last), indent=indent)


# --------------------------------------------------------- state synthesis


def synthesize_machine_state(machine, cores=()) -> List[Tuple[int, int, str, int, str]]:
    """Describe a machine's *current* state as flight-recorder-style events.

    Used by :func:`repro.harness.debug.dump_stuck_state`: the synthesized
    "state" events render through the exact same path as recorded history,
    so a stuck-state report and a failure-artifact timeline read the same.
    Returns ``(cycle, node, kind, line, detail)`` rows (no seq — they are
    a snapshot, not history).
    """
    now = machine.sim.now
    rows: List[Tuple[int, int, str, int, str]] = []
    for core in cores:
        if getattr(core, "finished", True):
            continue
        cache = machine.caches[core.node]
        rows.append(
            (
                now,
                core.node,
                "state.core",
                -1,
                f"wait={core._stall_bucket} "
                f"outstanding_loads={core._outstanding_loads} "
                f"write_buffer={core._wb_occupancy}",
            )
        )
        for line in cache.mshrs.outstanding_lines():
            rows.append((now, core.node, "state.mshr", line, ""))
        for line in cache._evicting:
            rows.append((now, core.node, "state.evicting", line, ""))
        for line in cache._pending_wireless:
            rows.append(
                (
                    now,
                    core.node,
                    "state.pending_wireless",
                    line,
                    f"writes={len(cache._pending_wireless[line])}",
                )
            )
        for line in cache._rmw_watch:
            rows.append((now, core.node, "state.rmw_inflight", line, ""))
    for directory in machine.directories:
        for entry in directory.array.entries():
            if not entry.busy:
                continue
            deferred = [(m.kind, m.src) for m in entry.deferred]
            rows.append(
                (
                    now,
                    directory.node,
                    "state.dir_busy",
                    entry.line,
                    f"txn={entry.transaction} deferred={deferred}",
                )
            )
    if machine.wireless is not None:
        channel = machine.wireless
        for request in channel._pending:
            rows.append(
                (
                    now,
                    GLOBAL_NODE,
                    "state.wnoc_pending",
                    request.frame.line,
                    f"kind={request.frame.kind} src={request.frame.src} "
                    f"ready={request.ready_time} failures={request.failures}",
                )
            )
        rows.append(
            (
                now,
                GLOBAL_NODE,
                "state.wnoc",
                -1,
                f"busy_until={channel._busy_until} "
                f"jammed={[hex(l) for l in channel._jammed_lines]}",
            )
        )
    if machine.tone is not None:
        for key, op in machine.tone._operations.items():
            rows.append(
                (
                    now,
                    GLOBAL_NODE,
                    "state.tone_op",
                    key,
                    f"remaining={sorted(op.remaining)}",
                )
            )
    return rows


def state_payload(machine, cores=()) -> Dict:
    """A :meth:`FlightRecorder.to_payload`-shaped dump of current state."""
    return {
        "schema": TRACE_SCHEMA_VERSION,
        "depth": 0,
        "num_nodes": machine.config.num_cores,
        "dropped": 0,
        "events": [list(row) for row in synthesize_machine_state(machine, cores)],
    }
