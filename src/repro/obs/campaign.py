"""Campaign-level observability: progress counters and retry spans.

The simulator's observability layer (:mod:`repro.obs`) watches *one*
machine from the inside. A campaign is a fleet of such runs under fault
supervision, so it gets its own, much lighter telemetry: monotonic
progress counters (runs completed / cache hits / retries by failure kind)
plus one wall-clock **span per attempt**, closed with the attempt's
terminal status. Spans export to the same Chrome/Perfetto ``trace.json``
shape the simulator traces use (thread-per-worker-slot slices + a
``campaign.completed`` counter track), so a flaky sweep can be inspected
in the exact tooling docs/OBSERVABILITY.md already documents.

Wiring: :class:`~repro.harness.campaign.Campaign` feeds every supervisor
event (``launch`` / ``ok`` / ``retry`` / ``giveup``) and its own
journal-level events (``cache-hit`` / ``resume-skip``) into
:meth:`CampaignTelemetry.on_event`.
"""

from __future__ import annotations

import json
import time
from pathlib import Path
from typing import Dict, List, Optional, Union

#: Schema tag embedded in exported campaign traces.
CAMPAIGN_TRACE_SCHEMA = 1

#: Counter names, in rendering order. The ``leases.*`` / ``workers.*`` /
#: ``submits.*`` block is fed by the distributed coordinator
#: (:mod:`repro.harness.distributed`); single-box campaigns leave it zero.
COUNTERS = (
    "runs.total",
    "runs.completed",
    "runs.failed",
    "runs.cache_hits",
    "runs.store_hits",
    "runs.resumed",
    "attempts.launched",
    "attempts.ok",
    "retries.total",
    "retries.crashed",
    "retries.timeout",
    "retries.hung",
    "retries.error",
    "giveups.total",
    "leases.granted",
    "leases.stolen",
    "requeues.total",
    "workers.joined",
    "workers.lost",
    "submits.accepted",
    "submits.throttled",
)


class CampaignTelemetry:
    """Counters + attempt spans for one campaign execution."""

    def __init__(self, clock=time.monotonic) -> None:
        self._clock = clock
        self._epoch = clock()
        self.counters: Dict[str, int] = {name: 0 for name in COUNTERS}
        self.backoff_seconds: float = 0.0
        #: Closed attempt spans: key, attempt, status, t0/t1 (seconds since
        #: telemetry epoch), fault (injected kind or None), detail.
        self.spans: List[Dict] = []
        self._open: Dict[str, Dict] = {}
        #: Progress samples for the counter track: (t, completed).
        self._progress: List[tuple] = []
        #: Coordinator queue-depth samples: (t, depth).
        self._queue_depth: List[tuple] = []

    # ------------------------------------------------------------- feeding

    def _now(self) -> float:
        return self._clock() - self._epoch

    def _bump(self, name: str, by: int = 1) -> None:
        self.counters[name] = self.counters.get(name, 0) + by

    def _close(self, key: str, status: str, detail: str = "") -> None:
        span = self._open.pop(key, None)
        if span is None:
            return
        span["t1"] = self._now()
        span["status"] = status
        span["detail"] = detail
        self.spans.append(span)

    def on_event(self, event: Dict) -> None:
        """Consume one supervisor/campaign event dict."""
        kind = event.get("event")
        now = self._now()
        if kind == "launch":
            self._bump("attempts.launched")
            self._open[event["key"]] = {
                "key": event["key"],
                "attempt": event["attempt"],
                "fault": event.get("fault"),
                "t0": now,
            }
        elif kind == "ok":
            self._bump("attempts.ok")
            self._bump("runs.completed")
            self._close(event["key"], "ok")
            self._progress.append((now, self.counters["runs.completed"]))
        elif kind == "retry":
            status = event.get("status", "error")
            self._bump("retries.total")
            self._bump(f"retries.{status}")
            self.backoff_seconds += float(event.get("backoff", 0.0))
            self._close(event["key"], status, event.get("detail", ""))
        elif kind == "giveup":
            self._bump("giveups.total")
            self._bump("runs.failed")
            self._close(
                event["key"], event.get("status", "failed"),
                event.get("detail", ""),
            )
        elif kind == "cache-hit":
            self._bump("runs.cache_hits")
            self._bump("runs.completed")
            self._progress.append((now, self.counters["runs.completed"]))
        elif kind == "store-hit":
            self._bump("runs.store_hits")
            self._bump("runs.completed")
            self._progress.append((now, self.counters["runs.completed"]))
        elif kind == "resume-skip":
            self._bump("runs.resumed")
            self._bump("runs.completed")
        elif kind == "plan":
            self._bump("runs.total", int(event.get("total", 0)))
        elif kind == "lease":
            # The distributed analogue of "launch": opens the attempt span,
            # attributed to the granted worker so the chrome export renders
            # one lane per worker.
            self._bump("leases.granted")
            if event.get("stolen"):
                self._bump("leases.stolen")
            self._open[event["key"]] = {
                "key": event["key"],
                "attempt": event.get("attempt", 1),
                "worker": event.get("worker"),
                "shard": event.get("shard"),
                "stolen": bool(event.get("stolen")),
                "fault": None,
                "t0": now,
            }
        elif kind == "requeue":
            self._bump("requeues.total")
        elif kind == "worker-join":
            self._bump("workers.joined")
        elif kind == "worker-lost":
            self._bump("workers.lost")
        elif kind == "submit":
            self._bump("submits.accepted", int(event.get("accepted", 0)))
        elif kind == "submit-throttled":
            self._bump("submits.throttled")
        elif kind == "queue-depth":
            self._queue_depth.append((now, int(event.get("depth", 0))))

    # ----------------------------------------------------------- reporting

    def snapshot(self) -> Dict:
        """JSON-serializable state (embedded in campaign status reports)."""
        return {
            "schema": CAMPAIGN_TRACE_SCHEMA,
            "counters": dict(self.counters),
            "backoff_seconds": self.backoff_seconds,
            "spans": list(self.spans),
        }

    def render_counters(self, indent: str = "") -> List[str]:
        """Human-readable counter lines (only the non-zero interesting ones
        plus the headline progress counters)."""
        lines = []
        for name in COUNTERS:
            value = self.counters.get(name, 0)
            if value or name in ("runs.total", "runs.completed"):
                lines.append(f"{indent}{name:<18} {value}")
        if self.backoff_seconds:
            lines.append(
                f"{indent}{'backoff seconds':<18} {self.backoff_seconds:.3f}"
            )
        return lines

    # ------------------------------------------------------- chrome export

    def to_chrome_trace(self, workers: int = 0) -> Dict:
        """Export attempt spans as a Chrome Trace Event JSON object.

        Each span becomes a complete (``ph: "X"``) slice. Spans carrying a
        ``worker`` attribution (distributed lease spans) get one stable,
        named lane per worker; the rest are packed greedily onto anonymous
        lanes so concurrent attempts render side by side. Run completion
        is emitted as a ``campaign.completed`` counter track, and
        coordinator queue-depth samples as ``campaign.queue_depth``.
        """
        events: List[Dict] = [
            {
                "ph": "M",
                "pid": 1,
                "tid": 0,
                "name": "process_name",
                "args": {"name": "campaign"},
            }
        ]
        worker_ids = sorted(
            {
                span["worker"]
                for span in self.spans
                if span.get("worker") is not None
            }
        )
        worker_lane = {
            worker: index + 1 for index, worker in enumerate(worker_ids)
        }
        for worker, tid in worker_lane.items():
            events.append(
                {
                    "ph": "M",
                    "pid": 1,
                    "tid": tid,
                    "name": "thread_name",
                    "args": {"name": f"worker {worker}"},
                }
            )
        lanes: List[float] = []  # end time per anonymous lane
        lane_base = len(worker_ids)

        def lane_for(t0: float) -> int:
            for index, busy_until in enumerate(lanes):
                if busy_until <= t0:
                    lanes[index] = t0
                    return index
            lanes.append(t0)
            return len(lanes) - 1

        for span in sorted(self.spans, key=lambda s: s["t0"]):
            worker = span.get("worker")
            if worker is not None:
                tid = worker_lane[worker]
            else:
                lane = lane_for(span["t0"])
                lanes[lane] = span["t1"]
                tid = lane_base + lane + 1
            args = {
                "status": span["status"],
                "attempt": span["attempt"],
                "fault": span.get("fault"),
                "detail": span.get("detail", ""),
            }
            if worker is not None:
                args["worker"] = worker
                args["shard"] = span.get("shard")
                args["stolen"] = span.get("stolen", False)
            events.append(
                {
                    "ph": "X",
                    "pid": 1,
                    "tid": tid,
                    "cat": "campaign",
                    "name": f"{span['key'][:12]}#{span['attempt']}",
                    "ts": round(span["t0"] * 1e6, 3),
                    "dur": round(
                        max(0.0, span["t1"] - span["t0"]) * 1e6, 3
                    ),
                    "args": args,
                }
            )
        for timestamp, depth in self._queue_depth:
            events.append(
                {
                    "ph": "C",
                    "pid": 1,
                    "tid": 0,
                    "name": "campaign.queue_depth",
                    "ts": round(timestamp * 1e6, 3),
                    "args": {"depth": depth},
                }
            )
        for timestamp, completed in self._progress:
            events.append(
                {
                    "ph": "C",
                    "pid": 1,
                    "tid": 0,
                    "name": "campaign.completed",
                    "ts": round(timestamp * 1e6, 3),
                    "args": {"completed": completed},
                }
            )
        return {
            "traceEvents": events,
            "otherData": {
                "schema": CAMPAIGN_TRACE_SCHEMA,
                "workers": workers,
            },
        }

    def write_chrome_trace(
        self, path: Union[str, Path], workers: int = 0
    ) -> Optional[Path]:
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(
            json.dumps(self.to_chrome_trace(workers=workers), sort_keys=True),
            encoding="utf-8",
        )
        return path
