"""Campaign-level observability: progress counters and retry spans.

The simulator's observability layer (:mod:`repro.obs`) watches *one*
machine from the inside. A campaign is a fleet of such runs under fault
supervision, so it gets its own, much lighter telemetry: monotonic
progress counters (runs completed / cache hits / retries by failure kind)
plus one wall-clock **span per attempt**, closed with the attempt's
terminal status. Spans export to the same Chrome/Perfetto ``trace.json``
shape the simulator traces use (thread-per-worker-slot slices + a
``campaign.completed`` counter track), so a flaky sweep can be inspected
in the exact tooling docs/OBSERVABILITY.md already documents.

Wiring: :class:`~repro.harness.campaign.Campaign` feeds every supervisor
event (``launch`` / ``ok`` / ``retry`` / ``giveup``) and its own
journal-level events (``cache-hit`` / ``resume-skip``) into
:meth:`CampaignTelemetry.on_event`.
"""

from __future__ import annotations

import json
import time
from pathlib import Path
from typing import Dict, List, Optional, Union

#: Schema tag embedded in exported campaign traces.
CAMPAIGN_TRACE_SCHEMA = 1

#: Counter names, in rendering order.
COUNTERS = (
    "runs.total",
    "runs.completed",
    "runs.failed",
    "runs.cache_hits",
    "runs.resumed",
    "attempts.launched",
    "attempts.ok",
    "retries.total",
    "retries.crashed",
    "retries.timeout",
    "retries.hung",
    "retries.error",
    "giveups.total",
)


class CampaignTelemetry:
    """Counters + attempt spans for one campaign execution."""

    def __init__(self, clock=time.monotonic) -> None:
        self._clock = clock
        self._epoch = clock()
        self.counters: Dict[str, int] = {name: 0 for name in COUNTERS}
        self.backoff_seconds: float = 0.0
        #: Closed attempt spans: key, attempt, status, t0/t1 (seconds since
        #: telemetry epoch), fault (injected kind or None), detail.
        self.spans: List[Dict] = []
        self._open: Dict[str, Dict] = {}
        #: Progress samples for the counter track: (t, completed).
        self._progress: List[tuple] = []

    # ------------------------------------------------------------- feeding

    def _now(self) -> float:
        return self._clock() - self._epoch

    def _bump(self, name: str, by: int = 1) -> None:
        self.counters[name] = self.counters.get(name, 0) + by

    def _close(self, key: str, status: str, detail: str = "") -> None:
        span = self._open.pop(key, None)
        if span is None:
            return
        span["t1"] = self._now()
        span["status"] = status
        span["detail"] = detail
        self.spans.append(span)

    def on_event(self, event: Dict) -> None:
        """Consume one supervisor/campaign event dict."""
        kind = event.get("event")
        now = self._now()
        if kind == "launch":
            self._bump("attempts.launched")
            self._open[event["key"]] = {
                "key": event["key"],
                "attempt": event["attempt"],
                "fault": event.get("fault"),
                "t0": now,
            }
        elif kind == "ok":
            self._bump("attempts.ok")
            self._bump("runs.completed")
            self._close(event["key"], "ok")
            self._progress.append((now, self.counters["runs.completed"]))
        elif kind == "retry":
            status = event.get("status", "error")
            self._bump("retries.total")
            self._bump(f"retries.{status}")
            self.backoff_seconds += float(event.get("backoff", 0.0))
            self._close(event["key"], status, event.get("detail", ""))
        elif kind == "giveup":
            self._bump("giveups.total")
            self._bump("runs.failed")
            self._close(
                event["key"], event.get("status", "failed"),
                event.get("detail", ""),
            )
        elif kind == "cache-hit":
            self._bump("runs.cache_hits")
            self._bump("runs.completed")
            self._progress.append((now, self.counters["runs.completed"]))
        elif kind == "resume-skip":
            self._bump("runs.resumed")
            self._bump("runs.completed")
        elif kind == "plan":
            self._bump("runs.total", int(event.get("total", 0)))

    # ----------------------------------------------------------- reporting

    def snapshot(self) -> Dict:
        """JSON-serializable state (embedded in campaign status reports)."""
        return {
            "schema": CAMPAIGN_TRACE_SCHEMA,
            "counters": dict(self.counters),
            "backoff_seconds": self.backoff_seconds,
            "spans": list(self.spans),
        }

    def render_counters(self, indent: str = "") -> List[str]:
        """Human-readable counter lines (only the non-zero interesting ones
        plus the headline progress counters)."""
        lines = []
        for name in COUNTERS:
            value = self.counters.get(name, 0)
            if value or name in ("runs.total", "runs.completed"):
                lines.append(f"{indent}{name:<18} {value}")
        if self.backoff_seconds:
            lines.append(
                f"{indent}{'backoff seconds':<18} {self.backoff_seconds:.3f}"
            )
        return lines

    # ------------------------------------------------------- chrome export

    def to_chrome_trace(self, workers: int = 0) -> Dict:
        """Export attempt spans as a Chrome Trace Event JSON object.

        Each span becomes a complete (``ph: "X"``) slice; spans are packed
        greedily onto ``tid`` lanes so concurrent attempts render side by
        side, and run completion is emitted as a ``campaign.completed``
        counter track.
        """
        events: List[Dict] = [
            {
                "ph": "M",
                "pid": 1,
                "tid": 0,
                "name": "process_name",
                "args": {"name": "campaign"},
            }
        ]
        lanes: List[float] = []  # end time per lane

        def lane_for(t0: float) -> int:
            for index, busy_until in enumerate(lanes):
                if busy_until <= t0:
                    lanes[index] = t0
                    return index
            lanes.append(t0)
            return len(lanes) - 1

        for span in sorted(self.spans, key=lambda s: s["t0"]):
            lane = lane_for(span["t0"])
            lanes[lane] = span["t1"]
            events.append(
                {
                    "ph": "X",
                    "pid": 1,
                    "tid": lane + 1,
                    "cat": "campaign",
                    "name": f"{span['key'][:12]}#{span['attempt']}",
                    "ts": round(span["t0"] * 1e6, 3),
                    "dur": round(
                        max(0.0, span["t1"] - span["t0"]) * 1e6, 3
                    ),
                    "args": {
                        "status": span["status"],
                        "attempt": span["attempt"],
                        "fault": span.get("fault"),
                        "detail": span.get("detail", ""),
                    },
                }
            )
        for timestamp, completed in self._progress:
            events.append(
                {
                    "ph": "C",
                    "pid": 1,
                    "tid": 0,
                    "name": "campaign.completed",
                    "ts": round(timestamp * 1e6, 3),
                    "args": {"completed": completed},
                }
            )
        return {
            "traceEvents": events,
            "otherData": {
                "schema": CAMPAIGN_TRACE_SCHEMA,
                "workers": workers,
            },
        }

    def write_chrome_trace(
        self, path: Union[str, Path], workers: int = 0
    ) -> Optional[Path]:
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(
            json.dumps(self.to_chrome_trace(workers=workers), sort_keys=True),
            encoding="utf-8",
        )
        return path
