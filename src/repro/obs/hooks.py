"""The :class:`Observability` facade: every instrumentation hook in one place.

Instrumented components (cache controllers, directory controllers, the mesh,
the wireless data channel, the tone channel, the per-node backoff policies)
each hold one attribute — ``_obs`` / ``obs`` — that is ``None`` by default.
Every hook site in the hot paths is therefore exactly::

    obs = self._obs
    if obs is not None:
        obs.some_hook(...)

one attribute load and one test when tracing is off (the same pattern, and
the same cost, as the online invariant monitor's ``_monitor`` hook). When
tracing is on, the facade routes the call into:

* the :class:`~repro.obs.spans.TransactionTracer` (transaction / frame /
  tone spans, see :mod:`repro.obs.spans`),
* the :class:`~repro.obs.recorder.FlightRecorder` (bounded per-node event
  rings), and
* the sampled counter tracks (channel utilization, W-line population, MSHR
  occupancy, pending wireless frames).

Behaviour neutrality is structural: no method here touches the simulator
queue, draws from any RNG, or mutates any protocol structure. Everything is
read-and-record, so golden digests are byte-identical with tracing on or
off (locked by ``tests/test_obs.py`` and the CI ``trace-smoke`` job).

Counter sampling is *activity-driven*: scheduling a periodic sampling event
would keep the event queue non-empty and (worse) mutually livelock with the
invariant monitor's "re-arm only while events are pending" rule. Instead,
high-frequency hooks call :meth:`Observability._maybe_sample`, which takes
a sample when at least ``sample_interval`` cycles have passed since the
last one — zero events scheduled, and a final sample is taken by the
simulator drain hook (:meth:`finish`).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.coherence.states import DIR_WIRELESS
from repro.obs.recorder import GLOBAL_NODE, TRACE_SCHEMA_VERSION, FlightRecorder
from repro.obs.spans import Span, TransactionTracer

#: Directory transaction type -> span name (precomputed; dir_open runs once
#: per directory transaction).
_DIR_SPAN_NAMES = {
    "fetch": "dir.fetch",
    "inv_collect": "dir.inv_collect",
    "fwd_gets": "dir.fwd_gets",
    "fwd_getx": "dir.fwd_getx",
    "s_to_w": "dir.s_to_w",
    "w_join": "dir.w_join",
    "w_to_s": "dir.w_to_s",
    "recall_s": "dir.recall_s",
    "recall_e": "dir.recall_e",
    "evict_w": "dir.evict_w",
}


class Observability:
    """Owns one run's tracer, flight recorder, and counter tracks.

    Parameters
    ----------
    machine:
        The :class:`~repro.system.Manycore` being observed.
    config:
        An :class:`~repro.config.system.ObsConfig` (``enabled`` is the
        caller's concern — constructing the facade implies tracing is on).
    """

    def __init__(self, machine, config) -> None:
        self.machine = machine
        self.sim = machine.sim
        self.config = config
        self.tracer = TransactionTracer()
        self.recorder = FlightRecorder(
            machine.config.num_cores, config.flight_recorder_depth
        )
        #: Hot-path bindings: the recorder/tracer are hit on every hook and
        #: the two-attribute walks were visible in the overhead benchmark.
        self._record = self.recorder.record
        self._tracer_open = self.tracer.open
        #: Open spans by protocol identity (see the per-category keys).
        self._miss_spans: Dict[Tuple[int, int], Span] = {}
        self._wb_spans: Dict[Tuple[int, int], Span] = {}
        self._dir_spans: Dict[Tuple[int, int], Span] = {}
        self._frame_spans: Dict[int, Span] = {}  # keyed by id(TransmitRequest)
        self._tone_spans: Dict[int, Span] = {}
        #: Counter tracks: name -> [[cycle, value], ...] (cycle-monotonic).
        self._counters: Dict[str, List[List]] = {
            "l1.mshr_occupancy": [],
            "dir.w_lines": [],
            "noc.messages": [],
        }
        if machine.wireless is not None:
            self._counters["wnoc.utilization"] = []
            self._counters["wnoc.pending"] = []
        self._sample_interval = config.sample_interval
        self._next_sample = 0
        self._last_cycle = -1
        self._last_busy = 0
        #: Spans still open at the last drain (set by :meth:`finish`).
        self.orphans: List[Span] = []

    # ------------------------------------------------------------- install

    def install(self) -> None:
        """Attach this facade to every hook point of the machine."""
        machine = self.machine
        for cache in machine.caches:
            cache._obs = self
        for directory in machine.directories:
            directory._obs = self
        machine.mesh.obs = self
        if machine.wireless is not None:
            machine.wireless.obs = self
            for policy in machine.wireless._backoff:
                policy.obs = self
        if machine.tone is not None:
            machine.tone.obs = self
        machine.sim.drain_hooks.append(self.finish)

    # ------------------------------------------------------- generic event

    def event(self, node: int, kind: str, line: int = -1, detail: str = "") -> None:
        """Record one flight-recorder event at the current cycle."""
        self._record(node, self.sim.now, kind, line, detail)

    # --------------------------------------------------- cache-side spans

    def miss_open(self, node: int, line: int, is_write: bool) -> None:
        """A fresh MSHR was allocated: one coherence transaction begins."""
        now = self.sim.now
        key = (node, line)
        old = self._miss_spans.get(key)
        if old is not None:  # pragma: no cover - MSHRs are unique per line
            self.tracer.cancel(old, now, "superseded")
        self._miss_spans[key] = self._tracer_open(
            "txn", "GetX" if is_write else "GetS", node, line, now
        )

    def miss_nack(self, node: int, line: int) -> None:
        span = self._miss_spans.get((node, line))
        if span is not None:
            span.phase(self.sim.now, "nack")
        self._record(node, self.sim.now, "nack.recv", line, "")

    def miss_retry(self, node: int, line: int) -> None:
        span = self._miss_spans.get((node, line))
        if span is not None:
            span.phase(self.sim.now, "retry")

    def miss_close(self, node: int, line: int) -> None:
        """The MSHR was released: the transaction completed."""
        self.tracer.close(self._miss_spans.pop((node, line), None), self.sim.now)

    def wb_open(self, node: int, line: int) -> None:
        """An E/M victim left the cache: writeback transaction until PutAck."""
        now = self.sim.now
        key = (node, line)
        old = self._wb_spans.get(key)
        if old is not None:
            # A second eviction of the same line raced the first PutAck; the
            # older span can no longer be matched to its ack.
            self.tracer.cancel(old, now, "superseded")
        self._wb_spans[key] = self._tracer_open("txn", "PutM", node, line, now)

    def wb_close(self, node: int, line: int) -> None:
        self.tracer.close(self._wb_spans.pop((node, line), None), self.sim.now)

    # ------------------------------------------------ directory-side spans

    def dir_open(self, home: int, line: int, txn_type: str) -> None:
        """``entry.busy`` went True: one directory transaction begins."""
        now = self.sim.now
        key = (home, line)
        old = self._dir_spans.get(key)
        if old is not None:  # pragma: no cover - entries serialize on busy
            self.tracer.cancel(old, now, "superseded")
        name = _DIR_SPAN_NAMES.get(txn_type) or ("dir." + txn_type)
        self._dir_spans[key] = self._tracer_open("txn", name, home, line, now)

    def dir_close(self, home: int, line: int) -> None:
        """``_unbusy`` / ``_finish_recall``: the transaction closed."""
        self.tracer.close(self._dir_spans.pop((home, line), None), self.sim.now)

    def dir_defer(self, home: int, line: int, kind: str) -> None:
        self._record(home, self.sim.now, "dir.defer", line, kind)

    # ------------------------------------------------------- mesh events

    def noc_send(self, message) -> None:
        now = self.sim.now
        if now >= self._next_sample:
            self._next_sample = now + self._sample_interval
            self._take_sample(now)
        self._record(
            message.src, now, "noc.send", message.line, message.kind
        )

    def noc_recv(self, message) -> None:
        self._record(
            message.dst, self.sim.now, "noc.recv", message.line, message.kind
        )

    # --------------------------------------------------- wireless frames

    def frame_queued(self, request) -> None:
        """A frame entered the channel's pending queue: its span opens."""
        now = self.sim.now
        if now >= self._next_sample:
            self._next_sample = now + self._sample_interval
            self._take_sample(now)
        frame = request.frame
        span = self._tracer_open("frame", frame.kind, frame.src, frame.line, now)
        self._frame_spans[id(request)] = span
        self._record(frame.src, now, "wnoc.queue", frame.line, frame.kind)

    def frame_phase(self, request, label: str) -> None:
        """Arbitration outcome (collision / jammed / backoff / commit)."""
        span = self._frame_spans.get(id(request))
        if span is not None:
            span.phase(self.sim.now, label)

    def frame_delivered(self, request) -> None:
        now = self.sim.now
        self.tracer.close(self._frame_spans.pop(id(request), None), now)
        frame = request.frame
        self._record(
            GLOBAL_NODE, now, "wnoc.delivered", frame.line, frame.kind
        )

    def frame_cancelled(self, request, reason: str) -> None:
        """The sender withdrew the frame before its commit point."""
        span = self._frame_spans.pop(id(request), None)
        if span is None:
            return  # already resolved (e.g. flushed by a previous sweep)
        now = self.sim.now
        self.tracer.cancel(span, now, reason)
        frame = request.frame
        self._record(GLOBAL_NODE, now, "wnoc.cancelled", frame.line, reason)

    def brs_backoff(self, node: int, failures: int, delay: int) -> None:
        self._record(
            node,
            self.sim.now,
            "brs.backoff",
            -1,
            f"failures={failures} delay={delay}",
        )

    # ------------------------------------------------------- tone channel

    def tone_open(self, key: int, participants: int) -> None:
        now = self.sim.now
        old = self._tone_spans.get(key)
        if old is not None:  # pragma: no cover - ToneChannel forbids overlap
            self.tracer.cancel(old, now, "superseded")
        self._tone_spans[key] = self._tracer_open(
            "tone", "ToneAck", GLOBAL_NODE, key, now
        )
        self._record(
            GLOBAL_NODE, now, "tone.begin", key, f"participants={participants}"
        )

    def tone_drop(self, key: int, node: int) -> None:
        self._record(node, self.sim.now, "tone.drop", key, "")

    def tone_close(self, key: int) -> None:
        """The channel went silent: the global acknowledgment completed."""
        self.tracer.close(self._tone_spans.pop(key, None), self.sim.now)

    # -------------------------------------------------------- counter tracks

    def _maybe_sample(self) -> None:
        """Interval-gated sampling from whatever hook fired (no events)."""
        now = self.sim.now
        if now >= self._next_sample:
            self._next_sample = now + self._sample_interval
            self._take_sample(now)

    def _take_sample(self, now: int) -> None:
        if now == self._last_cycle:
            return  # one sample per cycle keeps the tracks clean
        machine = self.machine
        counters = self._counters
        occupancy = 0
        for cache in machine.caches:
            occupancy += len(cache.mshrs)
        counters["l1.mshr_occupancy"].append([now, occupancy])
        w_lines = 0
        for directory in machine.directories:
            for entry in directory.array.entries():
                if entry.state == DIR_WIRELESS:
                    w_lines += 1
        counters["dir.w_lines"].append([now, w_lines])
        counters["noc.messages"].append([now, machine.mesh._messages.value])
        channel = machine.wireless
        if channel is not None:
            busy = channel._busy_cycles.value
            elapsed = now - max(self._last_cycle, 0)
            if elapsed > 0:
                utilization = round(
                    min((busy - self._last_busy) / elapsed, 1.0), 4
                )
            else:
                utilization = 0.0
            counters["wnoc.utilization"].append([now, utilization])
            counters["wnoc.pending"].append([now, len(channel._pending)])
            self._last_busy = busy
        self._last_cycle = now

    # ------------------------------------------------------------- capture

    def finish(self) -> None:
        """Simulator drain hook: final sample + orphan-span audit.

        Re-runnable (``run`` may drain more than once): the sample is
        skipped when the clock has not advanced, and the audit is a pure
        recomputation.
        """
        self._take_sample(self.sim.now)
        self.orphans = self.tracer.audit()

    def capture(self, app: Optional[str] = None) -> Dict:
        """One JSON-serializable snapshot of everything observed.

        This is the document the exporters consume
        (:func:`repro.obs.perfetto.export_chrome_trace`,
        :func:`repro.obs.timeline.render_text_timeline`).
        """
        config = self.machine.config
        return {
            "schema": TRACE_SCHEMA_VERSION,
            "meta": {
                "app": app,
                "protocol": config.protocol,
                "num_cores": config.num_cores,
                "cycles": self.sim.now,
                "seed": config.seed,
            },
            "spans": self.tracer.to_payload(),
            "events": self.recorder.to_payload(),
            "counters": [
                {"name": name, "samples": samples}
                for name, samples in sorted(self._counters.items())
            ],
            "orphans": [span.sid for span in self.tracer.audit()],
        }
