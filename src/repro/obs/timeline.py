"""Compact text timeline rendering for terminals.

Where the Perfetto export is for interactive digging, this renderer
answers "what happened, in order" straight in the terminal: span opens,
phases, closes/cancellations, and flight-recorder instants are merged into
one time-sorted listing with per-node attribution, plus a short summary
block (span counts and durations per category, orphan report).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

#: (cycle, order, node, text) — ``order`` breaks cycle ties deterministically:
#: recorder instants first, then span events in sid order.
_Row = Tuple[int, Tuple[int, int, int], int, str]


def _span_rows(capture: Dict) -> List[_Row]:
    rows: List[_Row] = []
    for span in capture.get("spans", []):
        sid = span["sid"]
        node = span["node"]
        label = f"{span['cat']}:{span['name']}"
        addr = f" line=0x{span['line']:x}" if span["line"] >= 0 else ""
        rows.append(
            (span["open"], (1, sid, 0), node, f"+ {label}#{sid}{addr}")
        )
        for index, (cycle, phase) in enumerate(span.get("phases", [])):
            rows.append((cycle, (1, sid, 1 + index), node, f"| {label}#{sid} {phase}"))
        close = span["close"]
        if close is None:
            continue
        if span["status"] == "cancelled":
            text = f"x {label}#{sid} cancelled: {span.get('reason') or '?'}"
        else:
            text = f"- {label}#{sid} done (+{close - span['open']}cy)"
        rows.append((close, (1, sid, 1 << 20), node, text))
    return rows


def _event_rows(capture: Dict) -> List[_Row]:
    rows: List[_Row] = []
    for index, (cycle, node, kind, line, detail) in enumerate(
        capture.get("events", {}).get("events", [])
    ):
        addr = f" line=0x{line:x}" if line >= 0 else ""
        extra = f" {detail}" if detail else ""
        rows.append((cycle, (0, index, 0), node, f". {kind}{addr}{extra}"))
    return rows


def render_text_timeline(
    capture: Dict, limit: Optional[int] = None, spans_only: bool = False
) -> str:
    """Render ``capture`` as a text timeline; ``limit`` keeps the tail."""
    rows = _span_rows(capture)
    if not spans_only:
        rows.extend(_event_rows(capture))
    rows.sort(key=lambda r: (r[0], r[1]))
    if limit is not None and len(rows) > limit:
        skipped = len(rows) - limit
        rows = rows[-limit:]
        header = [f"... ({skipped} earlier timeline rows elided)"]
    else:
        header = []
    lines = list(header)
    for cycle, _order, node, text in rows:
        where = "machine " if node < 0 else f"node {node:>3}"
        lines.append(f"@{cycle:>8} {where} {text}")
    return "\n".join(lines)


def summarize_capture(capture: Dict) -> str:
    """Aggregate statistics for ``repro trace summarize``."""
    meta = capture.get("meta", {})
    lines = [
        f"capture: app={meta.get('app')} protocol={meta.get('protocol')} "
        f"cores={meta.get('num_cores')} cycles={meta.get('cycles')} "
        f"seed={meta.get('seed')}",
    ]
    per_cat: Dict[str, Dict[str, List[int]]] = {}
    orphans = 0
    cancelled = 0
    for span in capture.get("spans", []):
        bucket = per_cat.setdefault(span["cat"], {})
        durations = bucket.setdefault(span["name"], [])
        if span["close"] is not None:
            durations.append(span["close"] - span["open"])
        if span["status"] == "open":
            orphans += 1
        elif span["status"] == "cancelled":
            cancelled += 1
    total_spans = len(capture.get("spans", []))
    lines.append(
        f"spans: {total_spans} total, {cancelled} cancelled, {orphans} orphaned"
    )
    for cat in sorted(per_cat):
        lines.append(f"  [{cat}]")
        for name in sorted(per_cat[cat]):
            durations = sorted(per_cat[cat][name])
            if not durations:
                lines.append(f"    {name:<16} n=0")
                continue
            count = len(durations)
            mean = sum(durations) / count
            p95 = durations[min(count - 1, (95 * count) // 100)]
            lines.append(
                f"    {name:<16} n={count:<6} "
                f"min={durations[0]:<6} mean={mean:<8.1f} "
                f"p95={p95:<6} max={durations[-1]}"
            )
    events = capture.get("events", {}).get("events", [])
    lines.append(
        f"flight recorder: {len(events)} retained events "
        f"({capture.get('events', {}).get('dropped', 0)} aged out)"
    )
    for track in capture.get("counters", []):
        samples = track["samples"]
        if samples:
            values = [v for _c, v in samples]
            lines.append(
                f"counter {track['name']:<24} samples={len(samples):<5} "
                f"last={values[-1]} max={max(values)}"
            )
    return "\n".join(lines)
