"""Chrome/Perfetto ``trace.json`` export and a minimal schema validator.

The exporter turns one observability *capture* (see
:meth:`repro.obs.hooks.Observability.capture`) into the Chrome Trace Event
JSON format that https://ui.perfetto.dev and ``chrome://tracing`` load:

* one process (pid 0, named after the run) with **one thread track per
  node** plus a ``wireless`` track for machine-wide events;
* every transaction/frame/tone span becomes an **async slice** (``ph:
  "b"``/``"e"`` matched by ``cat`` + ``id``), its phases become async
  instants (``ph: "n"``) on the same slice;
* flight-recorder events become thread instants (``ph: "i"``);
* sampled machine metrics (channel utilization, W-line population, MSHR
  occupancy, pending wireless frames) become **counter tracks** (``ph:
  "C"``).

Cycle counts map 1:1 to microseconds of trace time (the paper's 1 GHz
clock makes 1 cycle = 1 ns; scaling into the ``us`` display unit keeps the
Perfetto minimap readable for million-cycle runs).

:func:`validate_chrome_trace` is the CI ``trace-smoke`` check: every ``b``
has a matching ``e`` with a non-negative duration, counter tracks have
monotonically non-decreasing timestamps, and required keys are present.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List, Optional, Tuple

PID = 0

#: ``tid`` used for machine-wide (channel / tone) tracks, placed after the
#: per-node tids.
def _wireless_tid(num_nodes: int) -> int:
    return num_nodes


def export_chrome_trace(capture: Dict) -> Dict:
    """Build the Chrome Trace Event JSON document for one capture."""
    meta = capture.get("meta", {})
    num_nodes = int(meta.get("num_cores", 0))
    wireless_tid = _wireless_tid(num_nodes)
    process_name = (
        f"repro {meta.get('protocol', '?')} x{num_nodes} "
        f"({meta.get('app', 'run')})"
    )
    events: List[Dict] = [
        {
            "ph": "M",
            "pid": PID,
            "tid": 0,
            "name": "process_name",
            "args": {"name": process_name},
        }
    ]
    seen_tids = {wireless_tid}
    events.append(
        {
            "ph": "M",
            "pid": PID,
            "tid": wireless_tid,
            "name": "thread_name",
            "args": {"name": "wireless"},
        }
    )
    for node in range(num_nodes):
        seen_tids.add(node)
        events.append(
            {
                "ph": "M",
                "pid": PID,
                "tid": node,
                "name": "thread_name",
                "args": {"name": f"node{node:02d}"},
            }
        )

    def tid_for(node: int) -> int:
        return node if 0 <= node < num_nodes else wireless_tid

    # ------------------------------------------------------------- spans
    for span in capture.get("spans", []):
        tid = tid_for(span["node"])
        cat = span["cat"]
        sid = str(span["sid"])
        name = span["name"]
        open_ts = span["open"]
        close_ts = span["close"]
        args = {
            "line": f"0x{span['line']:x}" if span["line"] >= 0 else None,
            "node": span["node"],
            "status": span["status"],
        }
        if span.get("reason"):
            args["reason"] = span["reason"]
        events.append(
            {
                "ph": "b",
                "cat": cat,
                "id": sid,
                "name": name,
                "pid": PID,
                "tid": tid,
                "ts": open_ts,
                "args": args,
            }
        )
        for cycle, label in span.get("phases", []):
            events.append(
                {
                    "ph": "n",
                    "cat": cat,
                    "id": sid,
                    "name": label,
                    "pid": PID,
                    "tid": tid,
                    "ts": cycle,
                }
            )
        if close_ts is None:
            # Orphan span (audit failure): still emit a matching end so
            # the document stays loadable; the status arg flags it.
            close_ts = max(open_ts, int(meta.get("cycles", open_ts)))
            args["status"] = "unclosed-at-export"
        events.append(
            {
                "ph": "e",
                "cat": cat,
                "id": sid,
                "name": name,
                "pid": PID,
                "tid": tid,
                "ts": close_ts,
                "args": {"status": args["status"]},
            }
        )

    # ---------------------------------------------------------- instants
    for cycle, node, kind, line, detail in capture.get("events", {}).get(
        "events", []
    ):
        args: Dict = {}
        if line >= 0:
            args["line"] = f"0x{line:x}"
        if detail:
            args["detail"] = detail
        events.append(
            {
                "ph": "i",
                "s": "t",
                "name": kind,
                "pid": PID,
                "tid": tid_for(node),
                "ts": cycle,
                "args": args,
            }
        )

    # ---------------------------------------------------------- counters
    for track in capture.get("counters", []):
        name = track["name"]
        for cycle, value in track["samples"]:
            events.append(
                {
                    "ph": "C",
                    "name": name,
                    "pid": PID,
                    "tid": 0,
                    "ts": cycle,
                    "args": {"value": value},
                }
            )

    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {
            "generator": "repro.obs",
            "app": meta.get("app"),
            "protocol": meta.get("protocol"),
            "cycles": meta.get("cycles"),
            "seed": meta.get("seed"),
        },
    }


def write_chrome_trace(capture: Dict, path) -> Path:
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(export_chrome_trace(capture), sort_keys=True))
    return path


# ------------------------------------------------------------- validation


def validate_chrome_trace(trace: Dict) -> List[str]:
    """Minimal Chrome-trace schema check; returns a list of problems.

    Enforced invariants (the CI ``trace-smoke`` gate):

    * the document has a ``traceEvents`` list and every event has an
      integer ``ts`` >= 0 (metadata ``M`` events excepted) plus ``ph``,
      ``name``, ``pid`` keys;
    * every async begin (``b``) has exactly one matching end (``e``) with
      the same ``(cat, id)`` and ``e.ts >= b.ts``; no end without a begin;
    * async instants (``n``) reference an open-or-closed ``(cat, id)``;
    * per counter-track name, timestamps are monotonically non-decreasing.
    """
    problems: List[str] = []
    events = trace.get("traceEvents")
    if not isinstance(events, list):
        return ["traceEvents missing or not a list"]
    begins: Dict[Tuple[str, str], int] = {}
    ended: Dict[Tuple[str, str], int] = {}
    counter_last: Dict[str, int] = {}
    for index, event in enumerate(events):
        ph = event.get("ph")
        if ph is None or "name" not in event or "pid" not in event:
            problems.append(f"event {index}: missing ph/name/pid")
            continue
        if ph == "M":
            continue
        ts = event.get("ts")
        if not isinstance(ts, int) or ts < 0:
            problems.append(f"event {index} ({ph} {event.get('name')}): bad ts {ts!r}")
            continue
        if ph == "b":
            key = (event.get("cat", ""), str(event.get("id")))
            if key in begins:
                problems.append(f"event {index}: duplicate open async id {key}")
            begins[key] = ts
        elif ph == "e":
            key = (event.get("cat", ""), str(event.get("id")))
            if key in begins:
                if ts < begins[key]:
                    problems.append(
                        f"event {index}: async {key} ends at {ts} before "
                        f"its begin at {begins[key]}"
                    )
                ended[key] = ts
                del begins[key]
            elif key in ended:
                problems.append(f"event {index}: second end for async id {key}")
            else:
                problems.append(f"event {index}: end without begin for {key}")
        elif ph == "n":
            key = (event.get("cat", ""), str(event.get("id")))
            if key not in begins and key not in ended:
                problems.append(f"event {index}: instant for unknown async {key}")
        elif ph == "C":
            name = event["name"]
            last = counter_last.get(name)
            if last is not None and ts < last:
                problems.append(
                    f"event {index}: counter {name!r} ts {ts} < previous {last} "
                    "(not monotonic)"
                )
            counter_last[name] = ts
    for key, ts in begins.items():
        problems.append(f"async {key} opened at {ts} never ended")
    return problems


def validate_chrome_trace_file(path) -> List[str]:
    try:
        trace = json.loads(Path(path).read_text())
    except (OSError, json.JSONDecodeError) as exc:
        return [f"unreadable trace file: {exc}"]
    return validate_chrome_trace(trace)


def counter_track_names(trace: Dict) -> List[str]:
    """Distinct counter-track names in a trace (acceptance: >= 3)."""
    names = {
        e["name"] for e in trace.get("traceEvents", []) if e.get("ph") == "C"
    }
    return sorted(names)
