"""``repro.obs`` — observability: transaction tracing, flight recorder,
Perfetto-exportable protocol timelines.

Modules
-------
:mod:`repro.obs.spans`
    Span records and the :class:`~repro.obs.spans.TransactionTracer`.
:mod:`repro.obs.recorder`
    The bounded per-node :class:`~repro.obs.recorder.FlightRecorder`.
:mod:`repro.obs.hooks`
    The :class:`~repro.obs.hooks.Observability` facade the instrumented
    components call into.
:mod:`repro.obs.perfetto`
    Chrome/Perfetto ``trace.json`` export + schema validation.
:mod:`repro.obs.timeline`
    Compact text timeline rendering and capture summaries.
"""

from repro.obs.hooks import Observability
from repro.obs.perfetto import (
    counter_track_names,
    export_chrome_trace,
    validate_chrome_trace,
    validate_chrome_trace_file,
    write_chrome_trace,
)
from repro.obs.recorder import (
    GLOBAL_NODE,
    TRACE_SCHEMA_VERSION,
    FlightRecorder,
    state_payload,
    synthesize_machine_state,
)
from repro.obs.spans import Span, TransactionTracer
from repro.obs.timeline import render_text_timeline, summarize_capture

__all__ = [
    "Observability",
    "FlightRecorder",
    "TransactionTracer",
    "Span",
    "GLOBAL_NODE",
    "TRACE_SCHEMA_VERSION",
    "export_chrome_trace",
    "write_chrome_trace",
    "validate_chrome_trace",
    "validate_chrome_trace_file",
    "counter_track_names",
    "render_text_timeline",
    "summarize_capture",
    "state_payload",
    "synthesize_machine_state",
]
