"""The canonical on-disk trace format (``.wtr``): chunked, compressed,
CRC-protected, and streamable in O(one chunk) memory.

Layout (all integers little-endian)::

    magic      8 bytes  b"WDTRACE\\x01"
    header     u4 length + that many bytes of UTF-8 JSON
    chunks     zero or more chunk frames, core-major order:
                 u4 core | u4 chunk_index | u4 n_records
                 u4 comp_len | u4 crc32  | comp_len payload bytes
    index      8 bytes  b"WDTRIDX\\x01", then u4 length + JSON
    trailer    u8 index_offset + b"WDTRIDX\\x01"

A chunk payload is ``n_records`` fixed-width records (``RECORD_DTYPE``:
kind u1, blocking u1, address i8, value i8, arg i8 — 26 bytes each),
compressed with the codec named in the header. The CRC32 covers the
*uncompressed* record bytes, so a flipped bit is caught whether it
corrupts the compressed stream (decompression error) or survives it.

The footer index repeats every chunk's frame coordinates plus its
*barrier count* — the per-chunk cumulative barrier information that
barrier-safe segment cuts (:mod:`repro.traces.sharding`) are computed
from without touching the chunk payloads. ``trace_id`` is a sha256 over
the header and every chunk's (core, index, n_records, crc) tuple: a
content digest that names the reference stream independent of file path,
codec, or chunk size boundaries being rewritten byte-identically.

Codec selection is stdlib-safe: ``zstd`` via the ``zstandard`` package or
the Python 3.14+ ``compression.zstd`` module when importable, else
``zlib`` (always available). A reader needs the codec a file was written
with; asking for a zstd file on a zlib-only interpreter raises
:class:`TraceFormatError` naming the missing dependency rather than
producing garbage.

Reading the trailer requires a seekable file; everything else streams.
"""

from __future__ import annotations

import json
import struct
import zlib
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Tuple, Union

from repro.cpu.trace import (
    KIND_CODES,
    OP_BARRIER,
    OP_LOAD,
    OP_RMW,
    OP_STORE,
    OP_THINK,
    TraceChunk,
)

MAGIC = b"WDTRACE\x01"
INDEX_MAGIC = b"WDTRIDX\x01"
FORMAT_VERSION = 1

#: Records per chunk unless the writer is told otherwise. 8192 records
#: is ~208 KiB uncompressed — small enough that a reader holding one
#: chunk per core stays in cache, large enough to amortize frame
#: overhead and compression startup.
DEFAULT_CHUNK_RECORDS = 8192

_CHUNK_HEADER = struct.Struct("<IIIII")  # core, index, n_records, comp_len, crc
_TRAILER = struct.Struct("<Q")  # index offset

#: Code -> interned kind constant, aligned with KIND_CODES. Using the
#: module-level constants keeps the strings interned so the core's
#: dispatch compares stay pointer compares after a round trip.
_CODE_TO_KIND = [OP_THINK, OP_LOAD, OP_STORE, OP_RMW, OP_BARRIER]
assert all(KIND_CODES[k] == i for i, k in enumerate(_CODE_TO_KIND))

#: The fixed-width record layout, also spelled out in the header so a
#: reader can reject a file whose writer disagreed about the schema.
RECORD_FIELDS = (
    ("kind", "u1"),
    ("blocking", "u1"),
    ("address", "<i8"),
    ("value", "<i8"),
    ("arg", "<i8"),
)
RECORD_BYTES = 1 + 1 + 8 + 8 + 8


class TraceFormatError(RuntimeError):
    """The file is not a readable trace (bad magic, version, codec, ...)."""


class TraceCorruptionError(TraceFormatError):
    """The file parsed but a chunk failed its integrity check."""


# ----------------------------------------------------------------- codecs


def _zstd_module():
    """The first importable zstd binding, or ``None``."""
    try:
        import zstandard  # type: ignore

        return zstandard
    except ImportError:
        pass
    try:  # Python 3.14+ stdlib
        from compression import zstd  # type: ignore

        return zstd
    except ImportError:
        return None


def available_codec() -> str:
    """The best codec this interpreter can write: ``zstd`` or ``zlib``."""
    return "zstd" if _zstd_module() is not None else "zlib"


def _compress(codec: str, data: bytes) -> bytes:
    if codec == "zlib":
        return zlib.compress(data, 6)
    if codec == "zstd":
        module = _zstd_module()
        if module is None:
            raise TraceFormatError(
                "codec 'zstd' requested but no zstd module is importable "
                "(install 'zstandard', or write with codec='zlib')"
            )
        if hasattr(module, "ZstdCompressor"):  # the zstandard package
            return module.ZstdCompressor().compress(data)
        return module.compress(data)  # compression.zstd
    raise TraceFormatError(f"unknown trace codec {codec!r}")


def _decompress(codec: str, data: bytes) -> bytes:
    if codec == "zlib":
        try:
            return zlib.decompress(data)
        except zlib.error as error:
            raise TraceCorruptionError(f"zlib payload corrupt: {error}") from None
    if codec == "zstd":
        module = _zstd_module()
        if module is None:
            raise TraceFormatError(
                "this trace was written with codec 'zstd' but no zstd "
                "module is importable here (install 'zstandard')"
            )
        try:
            if hasattr(module, "ZstdDecompressor"):
                return module.ZstdDecompressor().decompress(data)
            return module.decompress(data)
        except Exception as error:  # zstd bindings raise their own types
            raise TraceCorruptionError(f"zstd payload corrupt: {error}") from None
    raise TraceFormatError(f"unknown trace codec {codec!r}")


# ------------------------------------------------------------ record codec


def chunk_to_records(chunk: TraceChunk) -> bytes:
    """Serialize a chunk's columns as fixed-width records (numpy)."""
    import numpy as np

    n = len(chunk.kinds)
    records = np.empty(n, dtype=_record_dtype())
    codes = KIND_CODES
    records["kind"] = np.fromiter(
        (codes[k] for k in chunk.kinds), dtype=np.uint8, count=n
    )
    records["blocking"] = np.asarray(chunk.blocking, dtype=np.uint8)
    records["address"] = np.asarray(chunk.addresses, dtype=np.int64)
    records["value"] = np.asarray(chunk.values, dtype=np.int64)
    records["arg"] = np.asarray(chunk.args, dtype=np.int64)
    return records.tobytes()


def records_to_chunk(data: bytes) -> TraceChunk:
    """Rebuild a :class:`TraceChunk` from fixed-width record bytes.

    Columns come back as plain Python scalars (``tolist``), and kinds as
    the interned module constants, so a round-tripped chunk is
    indistinguishable from a generator-built one to every consumer.
    """
    import numpy as np

    if len(data) % RECORD_BYTES:
        raise TraceCorruptionError(
            f"record payload is {len(data)} bytes, "
            f"not a multiple of {RECORD_BYTES}"
        )
    records = np.frombuffer(data, dtype=_record_dtype())
    kinds = _CODE_TO_KIND
    chunk = TraceChunk()
    try:
        chunk.kinds = [kinds[code] for code in records["kind"].tolist()]
    except IndexError:
        raise TraceCorruptionError("record payload contains an unknown op kind")
    chunk.blocking = [bool(b) for b in records["blocking"].tolist()]
    chunk.addresses = records["address"].tolist()
    chunk.values = records["value"].tolist()
    chunk.args = records["arg"].tolist()
    return chunk


def _record_dtype():
    import numpy as np

    return np.dtype([(name, spec) for name, spec in RECORD_FIELDS])


def _barrier_count(chunk: TraceChunk) -> int:
    kinds = chunk.kinds
    return sum(1 for k in kinds if k is OP_BARRIER or k == OP_BARRIER)


# ----------------------------------------------------------------- writer


class TraceWriter:
    """Streaming trace writer: feed per-core ops, get a canonical file.

    Appends buffer per core and flush to disk every ``chunk_records``
    records, so memory stays O(num_cores × chunk) regardless of trace
    length. The file is assembled at a temporary path and atomically
    renamed into place on :meth:`close` — a killed writer never leaves a
    half-written file where a reader would look.

    Use as a context manager::

        with TraceWriter(path, num_cores=16, app="radiosity") as writer:
            writer.append_chunk(core, chunk)
        writer.trace_id  # content digest, available after close
    """

    def __init__(
        self,
        path: Union[str, Path],
        num_cores: int,
        chunk_records: int = DEFAULT_CHUNK_RECORDS,
        codec: Optional[str] = None,
        app: str = "",
        metadata: Optional[Dict] = None,
    ) -> None:
        import hashlib
        import os

        if num_cores <= 0:
            raise ValueError("num_cores must be positive")
        if chunk_records <= 0:
            raise ValueError("chunk_records must be positive")
        self.path = Path(path)
        self.num_cores = num_cores
        self.chunk_records = chunk_records
        self.codec = codec if codec is not None else available_codec()
        self.app = app
        self.metadata = dict(metadata or {})
        self.trace_id: Optional[str] = None
        self._tmp_path = self.path.with_name(
            f"{self.path.name}.tmp.{os.getpid()}"
        )
        self._pending: List[TraceChunk] = [TraceChunk() for _ in range(num_cores)]
        self._chunk_counts = [0] * num_cores
        self._record_counts = [0] * num_cores
        self._index: List[List[int]] = []
        self._digest = hashlib.sha256()
        self._closed = False
        header = {
            "version": FORMAT_VERSION,
            "codec": self.codec,
            "num_cores": num_cores,
            "chunk_records": chunk_records,
            "record_fields": [list(field) for field in RECORD_FIELDS],
            "app": app,
            "metadata": self.metadata,
        }
        header_blob = json.dumps(
            header, sort_keys=True, separators=(",", ":")
        ).encode("utf-8")
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._file = open(self._tmp_path, "wb")
        self._file.write(MAGIC)
        self._file.write(struct.pack("<I", len(header_blob)))
        self._file.write(header_blob)
        self._digest.update(header_blob)

    # ------------------------------------------------------------- appends

    def append_chunk(self, core: int, chunk: TraceChunk) -> None:
        """Append a chunk of ops for ``core`` (any length; re-chunked)."""
        if self._closed:
            raise TraceFormatError("writer is closed")
        if not 0 <= core < self.num_cores:
            raise ValueError(f"core {core} out of range [0, {self.num_cores})")
        pending = self._pending[core]
        pending.kinds.extend(chunk.kinds)
        pending.addresses.extend(chunk.addresses)
        pending.values.extend(chunk.values)
        pending.args.extend(chunk.args)
        pending.blocking.extend(chunk.blocking)
        while len(pending.kinds) >= self.chunk_records:
            self._flush_chunk(core, self.chunk_records)

    def append_op(
        self,
        core: int,
        kind: str,
        address: int = 0,
        value: int = 0,
        arg: int = 0,
        blocking: bool = True,
    ) -> None:
        """Append one op (the converter's entry point)."""
        if kind not in KIND_CODES:
            raise TraceFormatError(f"unknown trace op kind {kind!r}")
        single = TraceChunk()
        single.kinds.append(kind)
        single.addresses.append(int(address))
        single.values.append(int(value))
        single.args.append(int(arg))
        single.blocking.append(bool(blocking))
        self.append_chunk(core, single)

    def _flush_chunk(self, core: int, take: int) -> None:
        pending = self._pending[core]
        piece = TraceChunk()
        piece.kinds = pending.kinds[:take]
        piece.addresses = pending.addresses[:take]
        piece.values = pending.values[:take]
        piece.args = pending.args[:take]
        piece.blocking = pending.blocking[:take]
        del pending.kinds[:take]
        del pending.addresses[:take]
        del pending.values[:take]
        del pending.args[:take]
        del pending.blocking[:take]

        raw = chunk_to_records(piece)
        crc = zlib.crc32(raw) & 0xFFFFFFFF
        payload = _compress(self.codec, raw)
        index = self._chunk_counts[core]
        offset = self._file.tell()
        self._file.write(
            _CHUNK_HEADER.pack(core, index, len(piece.kinds), len(payload), crc)
        )
        self._file.write(payload)
        self._index.append(
            [
                core,
                index,
                len(piece.kinds),
                offset,
                len(payload),
                crc,
                _barrier_count(piece),
            ]
        )
        self._digest.update(
            struct.pack("<IIII", core, index, len(piece.kinds), crc)
        )
        self._chunk_counts[core] = index + 1
        self._record_counts[core] += len(piece.kinds)

    # --------------------------------------------------------------- close

    def close(self) -> str:
        """Flush residues, write the index, atomically land the file.

        Returns the ``trace_id`` content digest.
        """
        import os

        if self._closed:
            return self.trace_id or ""
        for core in range(self.num_cores):
            if self._pending[core].kinds:
                self._flush_chunk(core, len(self._pending[core].kinds))
        self.trace_id = self._digest.hexdigest()
        index_blob = json.dumps(
            {
                "version": FORMAT_VERSION,
                "trace_id": self.trace_id,
                "chunks": self._index,
                "chunk_counts": self._chunk_counts,
                "record_counts": self._record_counts,
            },
            sort_keys=True,
            separators=(",", ":"),
        ).encode("utf-8")
        index_offset = self._file.tell()
        self._file.write(INDEX_MAGIC)
        self._file.write(struct.pack("<I", len(index_blob)))
        self._file.write(index_blob)
        self._file.write(_TRAILER.pack(index_offset))
        self._file.write(INDEX_MAGIC)
        self._file.flush()
        os.fsync(self._file.fileno())
        self._file.close()
        os.replace(self._tmp_path, self.path)
        self._closed = True
        return self.trace_id

    def abort(self) -> None:
        """Discard the partial file (error paths)."""
        if self._closed:
            return
        self._closed = True
        try:
            self._file.close()
        finally:
            try:
                self._tmp_path.unlink()
            except OSError:
                pass

    def __enter__(self) -> "TraceWriter":
        return self

    def __exit__(self, exc_type, _exc, _tb) -> None:
        if exc_type is None:
            self.close()
        else:
            self.abort()


# ----------------------------------------------------------------- reader


class TraceReader:
    """Random-access + streaming reader over a canonical trace file.

    Opening parses only the header and the footer index; chunk payloads
    are read (and CRC-checked) on demand, one at a time, so iterating a
    billion-reference trace holds O(one chunk) in memory.
    """

    def __init__(self, path: Union[str, Path]) -> None:
        self.path = Path(path)
        self._file = open(self.path, "rb")
        try:
            self._parse_header()
            self._parse_index()
        except TraceFormatError:
            self._file.close()
            raise
        except (OSError, ValueError, struct.error) as error:
            self._file.close()
            raise TraceFormatError(
                f"{self.path} is not a readable trace: {error}"
            ) from None

    # -------------------------------------------------------------- parsing

    def _parse_header(self) -> None:
        magic = self._file.read(len(MAGIC))
        if magic != MAGIC:
            raise TraceFormatError(
                f"{self.path}: bad magic {magic!r} (not a trace file)"
            )
        (header_len,) = struct.unpack("<I", self._read_exact(4))
        header = json.loads(self._read_exact(header_len).decode("utf-8"))
        version = header.get("version")
        if version != FORMAT_VERSION:
            raise TraceFormatError(
                f"{self.path}: trace format version {version!r} is not "
                f"supported (expected {FORMAT_VERSION})"
            )
        fields = [tuple(field) for field in header.get("record_fields", [])]
        if fields != [tuple(f) for f in RECORD_FIELDS]:
            raise TraceFormatError(
                f"{self.path}: record schema {fields!r} does not match "
                f"this reader ({RECORD_FIELDS!r})"
            )
        self.codec: str = header["codec"]
        self.num_cores: int = header["num_cores"]
        self.chunk_records: int = header["chunk_records"]
        self.app: str = header.get("app", "")
        self.metadata: Dict = header.get("metadata", {})
        if self.codec == "zstd" and _zstd_module() is None:
            raise TraceFormatError(
                f"{self.path} was written with codec 'zstd' but no zstd "
                "module is importable here (install 'zstandard')"
            )

    def _parse_index(self) -> None:
        trailer_len = _TRAILER.size + len(INDEX_MAGIC)
        self._file.seek(0, 2)
        size = self._file.tell()
        if size < trailer_len:
            raise TraceFormatError(f"{self.path}: truncated (no trailer)")
        self._file.seek(size - trailer_len)
        trailer = self._read_exact(trailer_len)
        if trailer[_TRAILER.size:] != INDEX_MAGIC:
            raise TraceFormatError(
                f"{self.path}: trailer magic missing — file truncated or "
                "written by an interrupted writer"
            )
        (index_offset,) = _TRAILER.unpack(trailer[: _TRAILER.size])
        if index_offset >= size:
            raise TraceFormatError(f"{self.path}: index offset out of range")
        self._file.seek(index_offset)
        if self._read_exact(len(INDEX_MAGIC)) != INDEX_MAGIC:
            raise TraceFormatError(f"{self.path}: index magic mismatch")
        (index_len,) = struct.unpack("<I", self._read_exact(4))
        index = json.loads(self._read_exact(index_len).decode("utf-8"))
        self.trace_id: str = index["trace_id"]
        #: Every chunk: [core, index, n_records, offset, comp_len, crc,
        #: barrier_count], in file order.
        self.chunks: List[List[int]] = index["chunks"]
        self.chunk_counts: List[int] = index["chunk_counts"]
        self.record_counts: List[int] = index["record_counts"]
        self._by_core: Dict[Tuple[int, int], List[int]] = {
            (entry[0], entry[1]): entry for entry in self.chunks
        }

    def _read_exact(self, n: int) -> bytes:
        data = self._file.read(n)
        if len(data) != n:
            raise TraceFormatError(
                f"{self.path}: truncated (wanted {n} bytes, got {len(data)})"
            )
        return data

    # --------------------------------------------------------------- access

    @property
    def total_records(self) -> int:
        return sum(self.record_counts)

    def num_chunks(self, core: int) -> int:
        return self.chunk_counts[core]

    def barrier_counts(self, core: int) -> List[int]:
        """Cumulative barrier count after each of ``core``'s chunks."""
        counts: List[int] = []
        total = 0
        for index in range(self.chunk_counts[core]):
            total += self._by_core[(core, index)][6]
            counts.append(total)
        return counts

    def chunk_length(self, core: int, index: int) -> int:
        """Record count of one chunk, from the index (no payload read)."""
        entry = self._by_core.get((core, index))
        if entry is None:
            raise TraceFormatError(
                f"{self.path}: no chunk {index} for core {core}"
            )
        return entry[2]

    def read_chunk(self, core: int, index: int) -> TraceChunk:
        """Read, integrity-check, and decode one chunk."""
        entry = self._by_core.get((core, index))
        if entry is None:
            raise TraceFormatError(
                f"{self.path}: no chunk {index} for core {core}"
            )
        _, _, n_records, offset, comp_len, crc, _ = entry
        self._file.seek(offset)
        header = _CHUNK_HEADER.unpack(self._read_exact(_CHUNK_HEADER.size))
        if header[:2] != (core, index) or header[3] != comp_len:
            raise TraceCorruptionError(
                f"{self.path}: chunk frame at offset {offset} disagrees "
                "with the index"
            )
        payload = self._read_exact(comp_len)
        raw = _decompress(self.codec, payload)
        if (zlib.crc32(raw) & 0xFFFFFFFF) != crc:
            raise TraceCorruptionError(
                f"{self.path}: CRC mismatch in chunk {index} of core {core}"
            )
        chunk = records_to_chunk(raw)
        if len(chunk.kinds) != n_records:
            raise TraceCorruptionError(
                f"{self.path}: chunk {index} of core {core} decoded "
                f"{len(chunk.kinds)} records, index says {n_records}"
            )
        return chunk

    def iter_core(
        self, core: int, start: int = 0, stop: Optional[int] = None
    ) -> Iterator[TraceChunk]:
        """Yield ``core``'s chunks in ``[start, stop)``, one at a time."""
        end = self.chunk_counts[core] if stop is None else stop
        for index in range(start, end):
            yield self.read_chunk(core, index)

    def close(self) -> None:
        self._file.close()

    def __enter__(self) -> "TraceReader":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()


# ------------------------------------------------------------- diagnostics


def trace_info(path: Union[str, Path]) -> Dict:
    """Header + index summary without touching any chunk payload."""
    with TraceReader(path) as reader:
        size = Path(path).stat().st_size
        raw_bytes = reader.total_records * RECORD_BYTES
        return {
            "path": str(path),
            "version": FORMAT_VERSION,
            "codec": reader.codec,
            "app": reader.app,
            "num_cores": reader.num_cores,
            "chunk_records": reader.chunk_records,
            "chunks": len(reader.chunks),
            "records": reader.total_records,
            "records_per_core": list(reader.record_counts),
            "barriers_per_core": [
                (counts[-1] if counts else 0)
                for counts in (
                    reader.barrier_counts(core)
                    for core in range(reader.num_cores)
                )
            ],
            "file_bytes": size,
            "compression_ratio": (round(raw_bytes / size, 3) if size else 0.0),
            "trace_id": reader.trace_id,
            "metadata": reader.metadata,
        }


def validate_trace(path: Union[str, Path]) -> Dict:
    """Full-scan integrity check: decompress + CRC every chunk.

    Raises :class:`TraceCorruptionError`/:class:`TraceFormatError` on the
    first problem; returns a summary dict when the file is clean.
    """
    with TraceReader(path) as reader:
        records = 0
        for core in range(reader.num_cores):
            for index in range(reader.chunk_counts[core]):
                records += len(reader.read_chunk(core, index).kinds)
        if records != reader.total_records:
            raise TraceCorruptionError(
                f"{path}: index claims {reader.total_records} records, "
                f"chunks decoded {records}"
            )
        return {
            "path": str(path),
            "ok": True,
            "chunks": len(reader.chunks),
            "records": records,
            "trace_id": reader.trace_id,
        }
