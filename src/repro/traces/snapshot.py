"""Quiescent-point machine snapshots for segmented trace replay.

A long recorded trace is replayed as a sequence of *segments*: run a
window of chunks to full event-queue drain, capture the machine's
architectural state here, persist it atomically, and continue — always
by constructing a **fresh** machine and restoring the snapshot into it.
Because the uninterrupted segmented run and a SIGKILL-then-resume run
both execute the identical construct+restore sequence at every segment
boundary, their final results are byte-identical: resumability falls
out of the segmented-execution contract rather than being a separate
best-effort path.

Snapshots are taken only at *quiescent points* — the event queue fully
drained between segments — which keeps the captured surface small and
exact: no in-flight messages, no MSHRs, no busy directory transactions,
no wireless arbitration. :func:`capture_machine` asserts all of that
(raising :class:`SnapshotError` on any violation) rather than trusting
the caller, so a snapshot can never silently drop protocol state.

What *is* captured, exhaustively:

* cache arrays — per-set resident lines in insertion (LRU) order with
  state/dirty/data/update-count, each controller's RNG state and request
  serial (plus rival-backend scalars like ``_phase``/``_hyb_serial``);
* directory arrays — the lazily-allocated set dict in allocation order
  (empty sets included: allocation order is observable via dict order),
  entries in LRU order with the full pointer/overflow/W-state fields;
* main memory lines and per-controller busy horizons;
* mesh link/pair-ordering horizons still relevant to the future (the
  prune-equivalent subset; pruning is semantics-preserving, so the
  prune countdown itself is deliberately *not* state);
* wireless channel busy horizon and per-node backoff RNG states;
* the stats registry — counters/latencies/binned/exact in insertion
  order, so a restored registry reports in the same order it would have
  live (result serialization preserves dict order);
* per-core :class:`~repro.cpu.core.CoreResult` accumulators;
* the clock and the root RNG state.

Persistence goes through :func:`repro.harness.ioutils.atomic_write_json`
(tmp + fsync + rename), so a SIGKILL mid-save leaves the previous
snapshot intact — the resume path simply replays one more segment.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List, Optional, Union

from repro.harness.ioutils import atomic_write_json
from repro.mem.cache_array import CacheLine
from repro.mem.line_data import LineData

#: Bump on any change to the snapshot layout; loads reject other versions.
SNAPSHOT_SCHEMA_VERSION = 1

#: Rival-backend per-controller scalars captured when present (the
#: pluggable backends subclass the stock controllers and add only these).
_EXTRA_SCALARS = ("_phase", "_hyb_serial")


class SnapshotError(RuntimeError):
    """A snapshot cannot be taken, loaded, or restored."""


# --------------------------------------------------------------- quiescence


def _require(condition: bool, what: str) -> None:
    if not condition:
        raise SnapshotError(f"machine not quiescent: {what}")


def assert_quiescent(machine, cores, barrier=None) -> None:
    """Verify nothing is in flight anywhere; raise :class:`SnapshotError`.

    A fully drained event queue implies all of this, but each structure is
    checked independently so a protocol bug (or a future structure that
    self-schedules) fails loudly at the capture site instead of producing
    a snapshot that silently drops state.
    """
    sim = machine.sim
    _require(sim.pending_events == 0, f"{sim.pending_events} events still queued")
    for cache in machine.caches:
        node = cache.node
        _require(len(cache.mshrs) == 0, f"cache {node} has live MSHRs")
        _require(not cache._evicting, f"cache {node} has evictions in flight")
        _require(
            not cache._pending_wireless,
            f"cache {node} has pending wireless writes",
        )
        _require(not cache._rmw_watch, f"cache {node} has RMW watches armed")
        for line in cache.array.lines():
            _require(
                line.pinned == 0,
                f"cache {node} line 0x{line.line:x} is pinned",
            )
    for directory in machine.directories:
        for entry in directory.array.entries():
            _require(
                not entry.busy and entry.transaction is None,
                f"directory {directory.node} entry 0x{entry.line:x} is busy",
            )
            _require(
                not entry.deferred,
                f"directory {directory.node} entry 0x{entry.line:x} has "
                "deferred requests",
            )
    if machine.tone is not None:
        _require(not machine.tone._operations, "tone channel has live operations")
    wireless = machine.wireless
    if wireless is not None:
        _require(not wireless._pending, "wireless channel has queued requests")
        _require(
            wireless._active_request is None, "wireless transmission in flight"
        )
        _require(not wireless._jammed_lines, "wireless lines still jammed")
        _require(
            wireless._arbitration_scheduled_at is None,
            "wireless arbitration scheduled",
        )
    if barrier is not None:
        _require(not barrier._arrived, "cores parked at a phase barrier")
    for core in cores:
        _require(
            core._outstanding_loads == 0 and core._wb_occupancy == 0,
            f"core {core.node} has outstanding memory traffic",
        )


# ------------------------------------------------------------------ capture


def _words_out(data) -> List[List[int]]:
    """A line's sparse words as ``[word, value]`` pairs, insertion order."""
    return [[int(w), int(v)] for w, v in data.items()]


def _extras_out(component) -> Dict[str, int]:
    return {
        name: getattr(component, name)
        for name in _EXTRA_SCALARS
        if hasattr(component, name)
    }


def _capture_cache(cache) -> Dict:
    sets_out = []
    for index, cache_set in enumerate(cache.array._sets):
        if not cache_set:
            continue
        sets_out.append(
            [
                index,
                [
                    [ln.line, ln.state, ln.dirty, _words_out(ln.data), ln.update_count]
                    for ln in cache_set.values()
                ],
            ]
        )
    out = {
        "rng": cache._rng._state,
        "serial": cache._request_serial,
        "sets": sets_out,
    }
    extras = _extras_out(cache)
    if extras:
        out["extra"] = extras
    return out


def _capture_directory(directory) -> Dict:
    # The outer dict's order *is* state: sets are allocated lazily on first
    # reference and victim scans walk per-set dicts in insertion order, so
    # empty-but-allocated sets are saved too.
    sets_out = []
    for index, dir_set in directory.array._sets.items():
        sets_out.append(
            [
                index,
                [
                    [
                        e.line,
                        e.state,
                        e.owner,
                        sorted(e.sharers),
                        e.broadcast,
                        sorted(e.coarse_regions),
                        e.sharer_count,
                        _words_out(e.data),
                        e.has_data,
                        e.dirty,
                    ]
                    for e in dir_set.values()
                ],
            ]
        )
    out: Dict = {"sets": sets_out}
    extras = _extras_out(directory)
    if extras:
        out["extra"] = extras
    return out


def _capture_stats(stats) -> Dict:
    return {
        "counters": [[name, c.value] for name, c in stats._counters.items()],
        "latencies": [
            [name, s.count, s.total, s.min, s.max]
            for name, s in stats._latencies.items()
        ],
        "binned": [
            [name, [list(b) for b in h.bins], list(h.counts), h.overflow]
            for name, h in stats._binned.items()
        ],
        "exact": [
            [name, [[int(v), int(c)] for v, c in h.counts.items()]]
            for name, h in stats._exact.items()
        ],
    }


def _capture_core(core) -> Dict:
    result = core.result
    return {
        "instructions": result.instructions,
        "memory_stall_cycles": result.memory_stall_cycles,
        "sync_stall_cycles": result.sync_stall_cycles,
        "finish_cycle": result.finish_cycle,
        "load_latency": _latency_out(result.load_latency),
        "store_latency": _latency_out(result.store_latency),
        "latency_hist": result.latency_hist.to_dict(),
    }


def _latency_out(stat) -> List:
    return [stat.count, stat.total, stat.min, stat.max]


def _capture_mesh(mesh, now: int) -> Dict:
    # Prune-equivalent dump: entries at or before ``now`` can never
    # influence a future send (see MeshNetwork._prune), so dropping them
    # here is exactly the prune the live machine would eventually perform.
    return {
        "pair_order": [
            [src, dst, t] for (src, dst), t in mesh._pair_order.items() if t + 1 > now
        ],
        "links": [
            [a, b, t] for (a, b), t in mesh._link_busy_until.items() if t > now
        ],
    }


def capture_machine(machine, cores, barrier=None, progress: Optional[Dict] = None) -> Dict:
    """Capture a fully-drained machine's architectural state as a dict.

    ``progress`` is an opaque caller payload (replay cursors, segment
    numbers) stored verbatim under ``"progress"`` — the snapshot module
    itself is agnostic to what drives the machine between snapshots.
    """
    assert_quiescent(machine, cores, barrier)
    sim = machine.sim
    snap: Dict = {
        "schema": SNAPSHOT_SCHEMA_VERSION,
        "now": sim.now,
        "sim_rng": sim.rng._state,
        "caches": [_capture_cache(cache) for cache in machine.caches],
        "directories": [_capture_directory(d) for d in machine.directories],
        "memory": [
            [line, _words_out(data)] for line, data in machine.memory._lines.items()
        ],
        "memory_controllers": [
            mc._busy_until for mc in machine.memory_controllers
        ],
        "mesh": _capture_mesh(machine.mesh, sim.now),
        "stats": _capture_stats(machine.stats),
        "cores": [_capture_core(core) for core in cores],
    }
    if machine.wireless is not None:
        snap["wireless"] = {
            "busy_until": machine.wireless._busy_until,
            "backoff": [p._rng._state for p in machine.wireless._backoff],
            # MAC-specific state beyond the backoff streams (token position,
            # CSMA persistence RNG, FDMA sub-channel horizons; {} for brs).
            "mac": machine.wireless._mac.snapshot(),
        }
        errors = machine.wireless._errors
        if errors is not None:
            snap["wireless"]["errors_rng"] = errors._rng._state
    if progress is not None:
        snap["progress"] = progress
    return snap


# ------------------------------------------------------------------ restore


def _restore_cache(cache, payload: Dict) -> None:
    cache._rng._state = payload["rng"]
    cache._request_serial = payload["serial"]
    array = cache.array
    resident = 0
    for index, lines in payload["sets"]:
        cache_set = array._sets[index]
        for line, state, dirty, words, update_count in lines:
            entry = CacheLine(line, state)
            entry.dirty = dirty
            # Every resident line at a quiescent point has been filled, and
            # fills install LineData (the probe paths call .snapshot()).
            entry.data = LineData({int(w): int(v) for w, v in words})
            entry.update_count = update_count
            cache_set[line] = entry
            resident += 1
    array._resident = resident
    _restore_extras(cache, payload)


def _restore_directory(directory, payload: Dict) -> None:
    from repro.coherence.directory import DirectoryEntry

    array = directory.array
    for index, entries in payload["sets"]:
        dir_set = array._sets[index] = {}
        for (
            line,
            state,
            owner,
            sharers,
            broadcast,
            coarse_regions,
            sharer_count,
            words,
            has_data,
            dirty,
        ) in entries:
            entry = DirectoryEntry(line)
            entry.state = state
            entry.owner = owner
            entry.sharers = set(sharers)
            entry.broadcast = broadcast
            entry.coarse_regions = set(coarse_regions)
            entry.sharer_count = sharer_count
            word_map = {int(w): int(v) for w, v in words}
            # Entries that completed a memory fetch hold LineData (the
            # controller snapshots it into DataE/DataS payloads).
            entry.data = LineData(word_map) if has_data else word_map
            entry.has_data = has_data
            entry.dirty = dirty
            dir_set[line] = entry
    _restore_extras(directory, payload)


def _restore_extras(component, payload: Dict) -> None:
    for name, value in payload.get("extra", {}).items():
        if name not in _EXTRA_SCALARS:
            raise SnapshotError(f"unknown controller extra {name!r} in snapshot")
        if not hasattr(component, name):
            raise SnapshotError(
                f"snapshot carries {name!r} but "
                f"{type(component).__name__} has no such state "
                "(protocol backend mismatch?)"
            )
        setattr(component, name, value)


def _restore_stats(stats, payload: Dict) -> None:
    # Walking the saved lists in order appends any dynamically-created
    # collector in its original creation position; collectors the fresh
    # machine already built keep theirs. Registry report order — which
    # result serialization preserves — therefore matches the live run.
    for name, value in payload["counters"]:
        stats.counter(name).value = value
    for name, count, total, lo, hi in payload["latencies"]:
        stat = stats.latency(name)
        stat.count, stat.total, stat.min, stat.max = count, total, lo, hi
    for name, bins, counts, overflow in payload["binned"]:
        hist = stats.histogram(name, [tuple(b) for b in bins])
        if len(hist.counts) != len(counts):
            raise SnapshotError(f"binned histogram {name!r} bin count changed")
        # In place: components bind the counts list itself (e.g. the mesh's
        # _hop_counts), so rebinding would orphan their writes.
        hist.counts[:] = counts
        hist.overflow = overflow
    for name, items in payload["exact"]:
        hist = stats.exact_histogram(name)
        hist.counts.clear()
        for value, count in items:
            hist.counts[value] = count


def _restore_core(core, payload: Dict) -> None:
    result = core.result
    result.instructions = payload["instructions"]
    result.memory_stall_cycles = payload["memory_stall_cycles"]
    result.sync_stall_cycles = payload["sync_stall_cycles"]
    result.finish_cycle = payload["finish_cycle"]
    _restore_latency(result.load_latency, payload["load_latency"])
    _restore_latency(result.store_latency, payload["store_latency"])
    # In place: the core binds the histogram's record method at construction.
    hist = result.latency_hist
    saved = payload["latency_hist"]
    hist.count = saved["count"]
    hist.total = saved["total"]
    hist.min = saved["min"]
    hist.max = saved["max"]
    hist.buckets[:] = [0] * hist.NUM_BUCKETS
    for key, value in saved.get("buckets", {}).items():
        hist.buckets[int(key)] = int(value)


def _restore_latency(stat, saved: List) -> None:
    stat.count, stat.total, stat.min, stat.max = saved


def restore_machine(machine, cores, snapshot: Dict) -> None:
    """Load ``snapshot`` into a freshly constructed machine + cores.

    The machine must be newly built from the *same* config that produced
    the snapshot (empty arrays, zero clock); restore is purely additive
    and does not clear pre-existing state.
    """
    if snapshot.get("schema") != SNAPSHOT_SCHEMA_VERSION:
        raise SnapshotError(
            f"snapshot schema {snapshot.get('schema')!r} != "
            f"supported {SNAPSHOT_SCHEMA_VERSION}"
        )
    sim = machine.sim
    if sim.now != 0 or sim.pending_events:
        raise SnapshotError("restore target machine is not freshly constructed")
    if len(snapshot["caches"]) != len(machine.caches):
        raise SnapshotError(
            f"snapshot has {len(snapshot['caches'])} caches, "
            f"machine has {len(machine.caches)} (config mismatch?)"
        )
    if len(snapshot["cores"]) != len(cores):
        raise SnapshotError("snapshot core count does not match")
    sim.now = snapshot["now"]
    sim.rng._state = snapshot["sim_rng"]
    for cache, payload in zip(machine.caches, snapshot["caches"]):
        _restore_cache(cache, payload)
    for directory, payload in zip(machine.directories, snapshot["directories"]):
        _restore_directory(directory, payload)
    memory = machine.memory._lines
    for line, words in snapshot["memory"]:
        memory[line] = LineData({int(w): int(v) for w, v in words})
    for mc, busy_until in zip(
        machine.memory_controllers, snapshot["memory_controllers"]
    ):
        mc._busy_until = busy_until
    mesh = machine.mesh
    for src, dst, t in snapshot["mesh"]["pair_order"]:
        mesh._pair_order[(src, dst)] = t
    for a, b, t in snapshot["mesh"]["links"]:
        mesh._link_busy_until[(a, b)] = t
    wireless_saved = snapshot.get("wireless")
    if (wireless_saved is None) != (machine.wireless is None):
        raise SnapshotError("snapshot wireless presence does not match config")
    if wireless_saved is not None:
        machine.wireless._busy_until = wireless_saved["busy_until"]
        for policy, state in zip(
            machine.wireless._backoff, wireless_saved["backoff"]
        ):
            policy._rng._state = state
        # Absent in snapshots recorded before MAC backends were pluggable;
        # those ran brs, whose extra state is empty.
        mac_saved = wireless_saved.get("mac")
        if mac_saved:
            machine.wireless._mac.restore(mac_saved)
        errors_rng = wireless_saved.get("errors_rng")
        if errors_rng is not None and machine.wireless._errors is not None:
            machine.wireless._errors._rng._state = errors_rng
    _restore_stats(machine.stats, snapshot["stats"])
    for core, payload in zip(cores, snapshot["cores"]):
        _restore_core(core, payload)


# -------------------------------------------------------------- persistence


def save_snapshot(path: Union[str, Path], snapshot: Dict) -> None:
    """Atomically persist ``snapshot`` (tmp + fsync + rename)."""
    atomic_write_json(Path(path), snapshot)


def load_snapshot(path: Union[str, Path]) -> Dict:
    """Load and schema-check a snapshot written by :func:`save_snapshot`."""
    path = Path(path)
    try:
        with open(path, "r", encoding="utf-8") as handle:
            snapshot = json.load(handle)
    except (OSError, json.JSONDecodeError) as exc:
        raise SnapshotError(f"cannot load snapshot {path}: {exc}") from None
    if not isinstance(snapshot, dict) or snapshot.get("schema") != SNAPSHOT_SCHEMA_VERSION:
        raise SnapshotError(
            f"{path}: not a version-{SNAPSHOT_SCHEMA_VERSION} snapshot"
        )
    return snapshot
