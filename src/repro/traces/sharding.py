"""Barrier-safe trace partitioning + deterministic result merging.

A cut through a multi-core trace is *safe* only where every core has
completed the same number of barrier operations: a window that hands one
core ops beyond barrier ``B`` while another core's window stops short of
``B`` parks the first core at the barrier forever (its release depends
on ops outside the window). :func:`plan_segments` finds such cuts from
the per-chunk barrier counts in the trace footer index — no payload is
decompressed — by fix-point equalization: propose a cut every ~N chunks,
then advance each core's cut until all cumulative barrier counts agree.

The same plan serves two executions:

* **Segmented replay** (:func:`repro.traces.replay.replay_trace` with
  ``snapshot_every``): machine state flows across cuts via snapshots;
  cuts are quiescent points.
* **Sharded campaigns**: each window from :func:`plan_windows` is
  replayed *cold* (cycle 0, empty caches) on whichever worker claims
  it, and :func:`merge_window_results` folds the per-window results —
  sums of counters and histogram bins, windows in plan order — into one
  result that is identical no matter how many workers ran or in what
  order they finished. Windowed-replay totals are their own
  deterministic quantity (each window cold-starts, so they differ from
  a continuous replay's totals — by design, and by the same reasoning
  as the segmented digest being a function of the snapshot interval).
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from repro.traces.format import TraceFormatError, TraceReader

#: Per-core chunk cut positions for one segment boundary.
Cut = List[int]
#: Per-core (start_chunk, stop_chunk) ranges for one window.
Window = List[Tuple[int, int]]


def plan_segments(reader: TraceReader, chunks_per_segment: int) -> List[Cut]:
    """Cumulative barrier-safe cuts, roughly ``chunks_per_segment`` apart.

    Returns a list of cuts; each cut is a per-core chunk index, strictly
    increasing for at least one core per step, with the final cut always
    the end of the trace. A proposed cut is advanced per-core until every
    core's cumulative barrier count at its cut agrees; if the counts
    cannot be equalized (imported traces with uneven barrier use), the
    remainder of the trace becomes a single final segment.
    """
    if chunks_per_segment <= 0:
        raise ValueError("chunks_per_segment must be positive")
    num_cores = reader.num_cores
    cum = [reader.barrier_counts(core) for core in range(num_cores)]
    totals = [reader.num_chunks(core) for core in range(num_cores)]

    def barriers_before(core: int, index: int) -> int:
        return cum[core][index - 1] if index > 0 else 0

    cuts: List[Cut] = []
    starts = [0] * num_cores
    while any(starts[c] < totals[c] for c in range(num_cores)):
        ends = [
            min(starts[c] + chunks_per_segment, totals[c])
            for c in range(num_cores)
        ]
        # Fix point: lift every core to the running max barrier count.
        # Ends are monotone non-decreasing and bounded by the totals, so
        # this terminates; a core that overshoots (a chunk holding several
        # barriers) raises the max and pulls the others along.
        while True:
            target = max(barriers_before(c, ends[c]) for c in range(num_cores))
            moved = False
            for c in range(num_cores):
                while ends[c] < totals[c] and barriers_before(c, ends[c]) < target:
                    ends[c] += 1
                    moved = True
            if not moved:
                break
        balanced = len({barriers_before(c, ends[c]) for c in range(num_cores)}) == 1
        at_end = all(ends[c] == totals[c] for c in range(num_cores))
        if not balanced and not at_end:
            # No equalizable boundary ahead: finish in one final segment.
            ends = list(totals)
        if ends == starts:  # pragma: no cover - defensive against stalls
            ends = list(totals)
        cuts.append(list(ends))
        starts = ends
    if not cuts:  # empty trace: one no-op segment keeps callers uniform
        cuts.append(list(totals))
    return cuts


def plan_windows(
    path_or_reader, chunks_per_window: int, max_windows: int = 0
) -> List[Window]:
    """Barrier-safe ``(start, stop)`` chunk windows covering the trace.

    Accepts a path or an open :class:`TraceReader`. ``max_windows`` > 0
    re-plans with a coarser stride until the plan fits — the campaign
    frontend uses this to match a requested shard count.
    """
    if isinstance(path_or_reader, TraceReader):
        return _plan_windows(path_or_reader, chunks_per_window, max_windows)
    with TraceReader(path_or_reader) as reader:
        return _plan_windows(reader, chunks_per_window, max_windows)


def _plan_windows(
    reader: TraceReader, chunks_per_window: int, max_windows: int
) -> List[Window]:
    stride = chunks_per_window
    while True:
        cuts = plan_segments(reader, stride)
        if max_windows <= 0 or len(cuts) <= max_windows:
            break
        stride *= 2
    windows: List[Window] = []
    previous = [0] * reader.num_cores
    for cut in cuts:
        windows.append(
            [(previous[c], cut[c]) for c in range(reader.num_cores)]
        )
        previous = cut
    return windows


# ------------------------------------------------------------------ merging


def merge_window_results(results: Sequence, config, app: str = ""):
    """Fold per-window results (in plan order) into one machine-level result.

    Additive fields (instructions, stalls, latency totals, misses,
    counters, histogram bins) sum; ``cycles`` sums too, since every
    window restarts its clock at zero — merged cycles are total simulated
    cycles across the plan, matching a sequential single-box replay of
    the same windows. Collision probability and energy are *recomputed*
    from the merged statistics rather than averaged, so the merge is
    exact, associative, and worker-count-invariant.
    """
    from repro.energy.models import EnergyModel
    from repro.harness.runner import SimulationResult
    from repro.stats.collectors import Histogram, StatsRegistry

    if not results:
        raise ValueError("no window results to merge")
    app = app or results[0].app

    cycles = 0
    counters: Dict[str, int] = {}
    sharer_hist: Dict[str, int] = {}
    hop_hist: Dict[str, int] = {}
    merged_latency = Histogram("memory_latency")
    memory_stalls = sync_stalls = 0
    load_total = store_total = 0
    for result in results:
        cycles += result.cycles
        memory_stalls += result.memory_stall_cycles
        sync_stalls += result.sync_stall_cycles
        load_total += result.load_latency_total
        store_total += result.store_latency_total
        for name, value in result.stats_counters.items():
            counters[name] = counters.get(name, 0) + value
        for label, value in result.sharer_histogram.items():
            sharer_hist[label] = sharer_hist.get(label, 0) + value
        for label, value in result.hop_histogram.items():
            hop_hist[label] = hop_hist.get(label, 0) + value
        if result.latency_histogram:
            merged_latency.merge(Histogram.from_dict(result.latency_histogram))

    registry = StatsRegistry("merged")
    for name, value in counters.items():
        registry.counter(name).value = value
    attempts = counters.get("wnoc.attempts", 0)
    collision_prob = (
        counters.get("wnoc.collisions", 0) / attempts if attempts else 0.0
    )
    energy = EnergyModel().compute(config, registry, cycles)

    return SimulationResult(
        app=app,
        config=config,
        cycles=cycles,
        instructions=counters.get("core.total.instructions", 0),
        memory_stall_cycles=memory_stalls,
        sync_stall_cycles=sync_stalls,
        load_latency_total=load_total,
        store_latency_total=store_total,
        read_misses=counters.get("l1.total.read_misses", 0),
        write_misses=counters.get("l1.total.write_misses", 0),
        wireless_writes=counters.get("l1.total.wireless_writes", 0),
        sharer_histogram=sharer_hist,
        hop_histogram=hop_hist,
        collision_probability=collision_prob,
        energy=energy,
        stats_counters=counters,
        latency_histogram=merged_latency.to_dict(),
    )


def window_to_jsonable(window: Window) -> List[List[int]]:
    """A window as plain JSON lists (grant payloads, campaign specs)."""
    return [[int(start), int(stop)] for start, stop in window]


def window_from_jsonable(payload: Sequence[Sequence[int]]) -> Window:
    """Inverse of :func:`window_to_jsonable` (validating shape)."""
    window: Window = []
    for span in payload:
        if len(span) != 2:
            raise TraceFormatError(f"bad window span {span!r}")
        window.append((int(span[0]), int(span[1])))
    return window
