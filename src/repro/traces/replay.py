"""Replay a recorded trace file through the full machine.

Three execution shapes, one harvest:

* **Continuous** (``snapshot_every == 0``): one machine streams every
  chunk through :meth:`Core.run_trace`'s ``chunk_source`` seam. The
  refill is synchronous — no event is scheduled, no time passes — so the
  event sequence is *identical* to a live ``run_app`` of the same ops,
  and the result digest matches the generator-driven run bit for bit
  (the golden tests lock this across both kernels and every backend).

* **Segmented** (``snapshot_every > 0``): the trace is cut into
  barrier-safe windows of roughly that many chunks per core (see
  :func:`repro.traces.sharding.plan_segments`); each segment runs to
  full event-queue drain on a machine **freshly constructed and
  restored** from the previous segment's snapshot, then captures the
  next snapshot. Because every boundary — interrupted or not — executes
  the same construct+restore sequence, killing the process mid-trace
  and resuming from the last durable snapshot yields a byte-identical
  final digest to the uninterrupted segmented run. (The segmented
  digest is a deterministic function of the snapshot interval; it is
  not required to equal the continuous digest.)

* **Windowed** (:func:`replay_window`): one barrier-safe window replayed
  cold — cycle 0, empty caches — which is the unit a trace-sharded
  campaign fans out across workers;
  :func:`repro.traces.sharding.merge_window_results` folds the per-
  window results back into one, identical to replaying all windows
  sequentially on one box.

Memory stays O(num_cores × chunk) in every shape: the reader hands out
one decompressed chunk at a time and the core drops its previous chunk
on refill.
"""

from __future__ import annotations

import hashlib
import json
import os
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.cpu.trace import TraceChunk
from repro.engine.errors import SimulationError
from repro.traces.format import TraceFormatError, TraceReader
from repro.traces.snapshot import (
    capture_machine,
    load_snapshot,
    restore_machine,
    save_snapshot,
)

#: Matches the harness's per-memop event budget; records >= memops so a
#: per-record budget is strictly more generous than ``run_app``'s.
MAX_EVENTS_PER_RECORD = 600

#: Floor so an (almost) empty segment still gets a workable budget.
_MIN_EVENT_BUDGET = 10_000


def result_digest(result) -> str:
    """Canonical sha256 of a result — the replay-identity currency.

    Hashes the full ``to_dict()`` payload as sorted-key compact JSON, so
    two results are digest-equal iff they are byte-identical under the
    executor's serialization contract.
    """
    blob = json.dumps(
        result.to_dict(), sort_keys=True, separators=(",", ":")
    ).encode("utf-8")
    return hashlib.sha256(blob).hexdigest()


# ------------------------------------------------------------ chunk sources


def _chunk_source(reader: TraceReader, core: int, start: int, stop: int):
    """First chunk + a pull-one-more callable for chunks ``[start, stop)``.

    The pull happens inside the core's own wake-up, so only one chunk per
    core is ever decompressed and bound at a time.
    """
    if start >= stop:
        return TraceChunk(), None
    first = reader.read_chunk(core, start)
    cursor = [start + 1]

    def pull() -> Optional[TraceChunk]:
        index = cursor[0]
        if index >= stop:
            return None
        cursor[0] = index + 1
        return reader.read_chunk(core, index)

    return first, pull


def _window_records(reader: TraceReader, window: Sequence[Tuple[int, int]]) -> int:
    total = 0
    for core, (start, stop) in enumerate(window):
        for index in range(start, stop):
            total += reader.chunk_length(core, index)
    return total


# ----------------------------------------------------------------- execution


def _run_ops(machine, cores, barrier, reader, window, label: str) -> None:
    """Drive one window of chunks to full drain; raise if any core stalls."""
    finished = {"count": 0}

    def on_finish(_core) -> None:
        finished["count"] += 1

    for core_obj, (start, stop) in zip(cores, window):
        first, pull = _chunk_source(reader, core_obj.node, start, stop)
        core_obj.run_trace(first, on_finish, chunk_source=pull)

    budget = max(
        _MIN_EVENT_BUDGET, MAX_EVENTS_PER_RECORD * _window_records(reader, window)
    )
    machine.run(max_events=budget)
    if finished["count"] != len(cores):
        stuck = [c.node for c in cores if not c.finished]
        raise SimulationError(
            f"{label}: cores {stuck} did not finish "
            f"(deadlock or lost wakeup at cycle {machine.sim.now})"
        )


def _harvest(machine, cores, config, app: str):
    """Fold a finished machine into a SimulationResult — ``run_app``'s
    harvest, verbatim, so replay results are digest-comparable to live
    runs."""
    from repro.energy.models import EnergyModel
    from repro.harness.runner import SimulationResult
    from repro.stats.collectors import Histogram

    cycles = max(core.result.finish_cycle for core in cores)
    stats = machine.stats
    sharer_hist = stats.histogram(
        "widir.sharers_per_update",
        (((0, 5), (6, 10), (11, 25), (26, 49), (50, None))),
    )
    hop_hist = stats.histogram(
        "noc.hops_per_leg", ((0, 2), (3, 5), (6, 8), (9, 11), (12, None))
    )
    collision_prob = (
        machine.wireless.collision_probability if machine.wireless else 0.0
    )
    energy = EnergyModel().compute(config, stats, cycles)
    merged_hist = Histogram("memory_latency")
    for core in cores:
        merged_hist.merge(core.result.latency_hist)

    return SimulationResult(
        app=app,
        config=config,
        cycles=cycles,
        instructions=stats.get_counter("core.total.instructions"),
        memory_stall_cycles=sum(c.result.memory_stall_cycles for c in cores),
        sync_stall_cycles=sum(c.result.sync_stall_cycles for c in cores),
        load_latency_total=sum(c.result.load_latency.total for c in cores),
        store_latency_total=sum(c.result.store_latency.total for c in cores),
        read_misses=stats.get_counter("l1.total.read_misses"),
        write_misses=stats.get_counter("l1.total.write_misses"),
        wireless_writes=stats.get_counter("l1.total.wireless_writes"),
        sharer_histogram=dict(zip(sharer_hist.labels(), sharer_hist.counts)),
        hop_histogram=dict(zip(hop_hist.labels(), hop_hist.counts)),
        collision_probability=collision_prob,
        energy=energy,
        stats_counters=stats.counters(),
        latency_histogram=merged_hist.to_dict(),
    )


def _fresh_machine(config):
    from repro.cpu.core import Core
    from repro.cpu.sync import PhaseBarrier
    from repro.system import Manycore

    machine = Manycore(config)
    barrier = PhaseBarrier(config.num_cores)
    cores = [
        Core(machine.sim, node, machine.caches[node], config, machine.stats, barrier)
        for node in range(config.num_cores)
    ]
    return machine, cores, barrier


def _check_reader(reader: TraceReader, config, expect_trace_id: str = "") -> None:
    if reader.num_cores != config.num_cores:
        raise TraceFormatError(
            f"trace was recorded for {reader.num_cores} cores; "
            f"config has {config.num_cores}"
        )
    if expect_trace_id and reader.trace_id != expect_trace_id:
        raise TraceFormatError(
            f"{reader.path}: trace_id {reader.trace_id} does not match the "
            f"expected {expect_trace_id} (file re-recorded since planning?)"
        )


# -------------------------------------------------------------- entry points


def replay_trace(
    path: Union[str, Path],
    config,
    snapshot_every: int = 0,
    snapshot_path: Optional[Union[str, Path]] = None,
    check: bool = True,
    machine_sink: Optional[List] = None,
    expect_trace_id: str = "",
):
    """Replay the whole trace at ``path`` on a machine built from ``config``.

    ``snapshot_every`` > 0 selects segmented execution with a snapshot
    roughly every that many chunks per core (cut points are shifted to
    the nearest barrier-safe boundary). ``snapshot_path`` makes each
    boundary durable: if the file already exists and matches this trace,
    replay *resumes* from it — the SIGKILL-recovery path — and the file
    is removed after a completed run.
    """
    from repro.traces.sharding import plan_segments

    with TraceReader(path) as reader:
        _check_reader(reader, config, expect_trace_id)
        app = reader.app or "trace"
        if snapshot_every <= 0:
            machine, cores, barrier = _fresh_machine(config)
            if machine_sink is not None:
                machine_sink.append(machine)
            window = [(0, reader.num_chunks(node)) for node in range(config.num_cores)]
            _run_ops(machine, cores, barrier, reader, window, app)
            if check:
                machine.check_coherence()
            return _harvest(machine, cores, config, app)

        cuts = plan_segments(reader, snapshot_every)
        start_segment = 0
        snap: Optional[Dict] = None
        if snapshot_path is not None and Path(snapshot_path).exists():
            snap = load_snapshot(snapshot_path)
            progress = snap.get("progress", {})
            if progress.get("trace_id") != reader.trace_id:
                raise TraceFormatError(
                    f"snapshot {snapshot_path} belongs to trace "
                    f"{progress.get('trace_id')}, not {reader.trace_id}"
                )
            if progress.get("snapshot_every") != snapshot_every:
                raise TraceFormatError(
                    f"snapshot {snapshot_path} was taken with "
                    f"snapshot_every={progress.get('snapshot_every')}, "
                    f"requested {snapshot_every}"
                )
            start_segment = progress["segment"]

        machine = cores = barrier = None
        previous = [0] * config.num_cores
        if start_segment > 0:
            previous = list(cuts[start_segment - 1])
        for segment in range(start_segment, len(cuts)):
            machine, cores, barrier = _fresh_machine(config)
            if snap is not None:
                restore_machine(machine, cores, snap)
            window = [
                (previous[node], cuts[segment][node])
                for node in range(config.num_cores)
            ]
            _run_ops(
                machine, cores, barrier, reader, window,
                f"{app}[segment {segment}]",
            )
            previous = list(cuts[segment])
            if segment < len(cuts) - 1:
                snap = capture_machine(
                    machine,
                    cores,
                    barrier,
                    progress={
                        "segment": segment + 1,
                        "trace_id": reader.trace_id,
                        "snapshot_every": snapshot_every,
                    },
                )
                if snapshot_path is not None:
                    save_snapshot(snapshot_path, snap)
        if machine_sink is not None:
            machine_sink.append(machine)
        if check:
            machine.check_coherence()
        result = _harvest(machine, cores, config, app)
        if snapshot_path is not None:
            # The run completed; a leftover snapshot would wrongly resume
            # a future identical invocation past its final segment.
            try:
                os.remove(snapshot_path)
            except FileNotFoundError:
                pass
        return result


def replay_window(
    path: Union[str, Path],
    config,
    window: Sequence[Sequence[int]],
    check: bool = True,
    expect_trace_id: str = "",
):
    """Cold-replay one barrier-safe chunk window (the sharded-campaign unit).

    ``window`` is a per-core sequence of ``(start_chunk, stop_chunk)``
    ranges as produced by :func:`repro.traces.sharding.plan_windows`.
    The machine starts empty at cycle 0, so per-window results are
    independent of which worker runs them; merging every window of a
    plan (:func:`~repro.traces.sharding.merge_window_results`) is
    deterministic and worker-count-invariant.
    """
    with TraceReader(path) as reader:
        _check_reader(reader, config, expect_trace_id)
        if len(window) != config.num_cores:
            raise TraceFormatError(
                f"window covers {len(window)} cores, config has "
                f"{config.num_cores}"
            )
        app = reader.app or "trace"
        spans = [(int(start), int(stop)) for start, stop in window]
        machine, cores, barrier = _fresh_machine(config)
        _run_ops(machine, cores, barrier, reader, spans, app)
        if check:
            machine.check_coherence()
        return _harvest(machine, cores, config, app)
