"""``repro.traces`` — the streaming trace-ingestion subsystem.

WiDir's evaluation is driven by application reference streams; this
package makes those streams a first-class, durable input instead of a
transient artifact of the synthetic generators:

:mod:`repro.traces.format`
    The versioned, chunked, compressed canonical trace-file format
    (``.wtr``): magic + JSON header, fixed-width numpy record chunks with
    per-chunk CRCs, a footer index carrying per-chunk barrier counts, and
    a content-digest ``trace_id``. Reading and writing are both bounded
    memory — O(one chunk), never O(trace).

:mod:`repro.traces.record`
    Converters into the canonical format: record any synthetic
    application profile (``repro traces record``) or import the simple
    external CSV/text format (``repro traces convert``).

:mod:`repro.traces.snapshot`
    Versioned, atomic machine-state snapshots taken at quiescent points,
    so a long replay can be killed anywhere and resumed with a final
    digest byte-identical to the uninterrupted run.

:mod:`repro.traces.replay`
    The replay driver: continuous streaming replay (op-stream-identical
    to a live ``run_app`` of the same workload) and segmented
    snapshot/resume replay.

:mod:`repro.traces.sharding`
    Barrier-safe trace-segment windows so campaigns can fan one large
    trace across distributed workers by chunk range, with a
    deterministic merge identical to a single-box windowed replay.

See docs/TRACES.md for the format specification and the replay/resume
contracts.
"""

from repro.traces.format import (
    DEFAULT_CHUNK_RECORDS,
    FORMAT_VERSION,
    TraceCorruptionError,
    TraceFormatError,
    TraceReader,
    TraceWriter,
    available_codec,
    trace_info,
    validate_trace,
)
from repro.traces.record import convert_csv, record_app_trace
from repro.traces.replay import (
    replay_trace,
    replay_window,
    result_digest,
)
from repro.traces.sharding import merge_window_results, plan_windows
from repro.traces.snapshot import SNAPSHOT_SCHEMA_VERSION, SnapshotError

__all__ = [
    "DEFAULT_CHUNK_RECORDS",
    "FORMAT_VERSION",
    "SNAPSHOT_SCHEMA_VERSION",
    "SnapshotError",
    "TraceCorruptionError",
    "TraceFormatError",
    "TraceReader",
    "TraceWriter",
    "available_codec",
    "convert_csv",
    "merge_window_results",
    "plan_windows",
    "record_app_trace",
    "replay_trace",
    "replay_window",
    "result_digest",
    "trace_info",
    "validate_trace",
]
