"""Converters *into* the canonical trace format.

``record_app_trace`` freezes any synthetic application profile into a
trace file: it consumes the generator's chunk-emission seam
(:func:`repro.workloads.generator.iter_core_trace_chunks`), so the
recorded stream is op-for-op identical to what a live ``run_app`` of the
same (profile, cores, memops, seed) would execute — the property the
replay golden-digest tests lock across both kernels and every protocol
backend.

``convert_csv`` imports the simple external text format, one op per
line::

    core,kind,address,value,arg,blocking

``kind`` is one of think/load/store/rmw/barrier; ``address`` accepts
decimal or ``0x`` hex; trailing fields may be omitted (value/arg default
0, blocking defaults 1); blank lines and ``#`` comments are skipped.
This is the seam an external core model or pin-style tool writes to.
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict, Optional, Union

from repro.cpu.trace import KIND_CODES
from repro.traces.format import (
    DEFAULT_CHUNK_RECORDS,
    TraceFormatError,
    TraceWriter,
    trace_info,
)


def _resolve_profile(app):
    from repro.workloads.profiles import APP_PROFILES, AppProfile

    if isinstance(app, AppProfile):
        return app
    try:
        return APP_PROFILES[app]
    except KeyError:
        raise KeyError(
            f"unknown application {app!r}; known apps: {sorted(APP_PROFILES)}"
        ) from None


def record_app_trace(
    path: Union[str, Path],
    app,
    num_cores: int,
    memops_per_core: int,
    trace_seed: int = 0,
    chunk_records: int = DEFAULT_CHUNK_RECORDS,
    codec: Optional[str] = None,
    metadata: Optional[Dict] = None,
) -> Dict:
    """Record a synthetic application's reference stream to ``path``.

    Cores are synthesized and written one at a time, so peak memory is
    O(one core's trace) — independent of ``num_cores`` — and the writer
    flushes to disk every ``chunk_records`` records. Returns the
    :func:`~repro.traces.format.trace_info` summary of the written file
    (including its ``trace_id``).
    """
    from repro.workloads.generator import iter_core_trace_chunks

    profile = _resolve_profile(app)
    meta = {
        "source": "generator",
        "memops_per_core": int(memops_per_core),
        "trace_seed": int(trace_seed),
    }
    meta.update(metadata or {})
    with TraceWriter(
        path,
        num_cores=num_cores,
        chunk_records=chunk_records,
        codec=codec,
        app=profile.name,
        metadata=meta,
    ) as writer:
        for core in range(num_cores):
            for chunk in iter_core_trace_chunks(
                profile,
                core,
                num_cores,
                memops_per_core,
                trace_seed,
                chunk_records=chunk_records,
            ):
                writer.append_chunk(core, chunk)
    return trace_info(path)


_TRUE = frozenset({"1", "true", "t", "yes", "y"})
_FALSE = frozenset({"0", "false", "f", "no", "n", ""})


def _parse_int(token: str, path, lineno: int, field: str) -> int:
    token = token.strip()
    try:
        return int(token, 0)  # accepts decimal and 0x hex
    except ValueError:
        raise TraceFormatError(
            f"{path}:{lineno}: bad {field} value {token!r}"
        ) from None


def convert_csv(
    src: Union[str, Path],
    dest: Union[str, Path],
    num_cores: Optional[int] = None,
    app: str = "imported",
    chunk_records: int = DEFAULT_CHUNK_RECORDS,
    codec: Optional[str] = None,
) -> Dict:
    """Convert the external CSV/text op format at ``src`` into ``dest``.

    ``num_cores`` defaults to ``max(core) + 1`` discovered by a cheap
    first text pass (the writer needs the core count up front). Both
    passes stream line-by-line; memory stays O(pending chunks).
    """
    src = Path(src)
    if num_cores is None:
        highest = -1
        with open(src, "r", encoding="utf-8") as handle:
            for lineno, line in enumerate(handle, 1):
                line = line.strip()
                if not line or line.startswith("#"):
                    continue
                core_token = line.split(",", 1)[0]
                highest = max(highest, _parse_int(core_token, src, lineno, "core"))
        if highest < 0:
            raise TraceFormatError(f"{src}: no trace ops found")
        num_cores = highest + 1

    ops = 0
    with TraceWriter(
        dest,
        num_cores=num_cores,
        chunk_records=chunk_records,
        codec=codec,
        app=app,
        metadata={"source": "csv", "src": src.name},
    ) as writer:
        with open(src, "r", encoding="utf-8") as handle:
            for lineno, line in enumerate(handle, 1):
                line = line.strip()
                if not line or line.startswith("#"):
                    continue
                fields = [field.strip() for field in line.split(",")]
                if not 2 <= len(fields) <= 6:
                    raise TraceFormatError(
                        f"{src}:{lineno}: expected "
                        "'core,kind[,address[,value[,arg[,blocking]]]]', "
                        f"got {line!r}"
                    )
                core = _parse_int(fields[0], src, lineno, "core")
                if not 0 <= core < num_cores:
                    raise TraceFormatError(
                        f"{src}:{lineno}: core {core} out of range "
                        f"[0, {num_cores})"
                    )
                kind = fields[1].lower()
                if kind not in KIND_CODES:
                    raise TraceFormatError(
                        f"{src}:{lineno}: unknown op kind {fields[1]!r} "
                        f"(expected one of {sorted(KIND_CODES)})"
                    )
                address = (
                    _parse_int(fields[2], src, lineno, "address")
                    if len(fields) > 2
                    else 0
                )
                value = (
                    _parse_int(fields[3], src, lineno, "value")
                    if len(fields) > 3
                    else 0
                )
                arg = (
                    _parse_int(fields[4], src, lineno, "arg")
                    if len(fields) > 4
                    else 0
                )
                if len(fields) > 5:
                    token = fields[5].lower()
                    if token in _TRUE:
                        blocking = True
                    elif token in _FALSE:
                        blocking = False
                    else:
                        raise TraceFormatError(
                            f"{src}:{lineno}: bad blocking flag {fields[5]!r}"
                        )
                else:
                    blocking = True
                writer.append_op(
                    core, kind, address=address, value=value, arg=arg,
                    blocking=blocking,
                )
                ops += 1
    info = trace_info(dest)
    info["converted_ops"] = ops
    return info
