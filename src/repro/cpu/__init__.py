"""Trace-driven core models.

A :class:`~repro.cpu.core.Core` consumes a per-core operation trace
(:mod:`repro.cpu.trace`) and drives its tile's cache controller, modelling
the out-of-order structures of Table III at the occupancy level: bounded
memory-level parallelism for loads, a store/write buffer, blocking atomics,
and memory-stall attribution (the quantity behind the paper's Figures 7/8).
:class:`~repro.cpu.sync.PhaseBarrier` aligns cores at program phases.
"""

from repro.cpu.core import Core, CoreResult
from repro.cpu.sync import PhaseBarrier
from repro.cpu.trace import (
    OP_BARRIER,
    OP_LOAD,
    OP_RMW,
    OP_STORE,
    OP_THINK,
    TraceOp,
)

__all__ = [
    "Core",
    "CoreResult",
    "OP_BARRIER",
    "OP_LOAD",
    "OP_RMW",
    "OP_STORE",
    "OP_THINK",
    "PhaseBarrier",
    "TraceOp",
]
