"""Trace operation format shared by the workload generators and the cores.

A trace is either a plain list of :class:`TraceOp` or, since the batched
kernel work, a :class:`TraceChunk` — the same operation stream stored
struct-of-arrays (one parallel column per field) so the core's dispatch
loop indexes flat lists instead of walking per-op objects, and so whole
traces export to numpy in one call. Keeping traces flat value data
(rather than callbacks) lets the generators be tested in isolation and
lets one trace drive both the Baseline and the WiDir machine, which is
what makes normalized comparisons meaningful.
"""

from __future__ import annotations

from typing import Iterator, List, Optional, Union

OP_THINK = "think"      # arg: non-memory instruction count
OP_LOAD = "load"        # address; ``blocking`` marks use-dependent loads
OP_STORE = "store"      # address + value
OP_RMW = "rmw"          # address (atomic fetch-and-increment)
OP_BARRIER = "barrier"  # arg: phase id (cross-core alignment point)

_VALID_KINDS = frozenset({OP_THINK, OP_LOAD, OP_STORE, OP_RMW, OP_BARRIER})


class TraceOp:
    """One operation in a core's instruction trace."""

    __slots__ = ("kind", "address", "value", "arg", "blocking")

    def __init__(
        self,
        kind: str,
        address: int = 0,
        value: int = 0,
        arg: int = 0,
        blocking: bool = True,
    ) -> None:
        if kind not in _VALID_KINDS:
            raise ValueError(f"unknown trace op kind {kind!r}")
        self.kind = kind
        self.address = address
        self.value = value
        self.arg = arg
        self.blocking = blocking

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        if self.kind == OP_THINK:
            return f"TraceOp(think {self.arg})"
        if self.kind == OP_BARRIER:
            return f"TraceOp(barrier {self.arg})"
        return f"TraceOp({self.kind} 0x{self.address:x})"


def think(instructions: int) -> TraceOp:
    """Convenience constructor for a non-memory instruction burst."""
    return TraceOp(OP_THINK, arg=instructions)


def load(address: int, blocking: bool = True) -> TraceOp:
    return TraceOp(OP_LOAD, address=address, blocking=blocking)


def store(address: int, value: int = 0) -> TraceOp:
    return TraceOp(OP_STORE, address=address, value=value)


def rmw(address: int) -> TraceOp:
    return TraceOp(OP_RMW, address=address)


def barrier(phase: int) -> TraceOp:
    return TraceOp(OP_BARRIER, arg=phase)


#: Stable small-integer codes for the numpy export of a chunk (the string
#: constants stay the in-memory dispatch values — they are interned, so the
#: core's equality tests are pointer compares).
KIND_CODES = {OP_THINK: 0, OP_LOAD: 1, OP_STORE: 2, OP_RMW: 3, OP_BARRIER: 4}
KIND_NAMES = {code: kind for kind, code in KIND_CODES.items()}


class TraceChunk:
    """A trace stored struct-of-arrays: one parallel column per op field.

    The core's dispatch loop reads ``kinds[pc]`` / ``addresses[pc]`` /
    ... directly (no per-op object, no attribute walks); tests and
    diagnostics iterate a chunk and receive :class:`TraceOp` views built
    on demand, so every existing trace consumer keeps working.

    Columns are plain Python lists of scalars — the hot consumer is the
    interpreter, not numpy — with :meth:`as_arrays` exporting the whole
    chunk as numpy columns (kinds as :data:`KIND_CODES`) for vectorized
    analysis and the batched front end.
    """

    __slots__ = ("kinds", "addresses", "values", "args", "blocking")

    def __init__(self) -> None:
        self.kinds: List[str] = []
        self.addresses: List[int] = []
        self.values: List[int] = []
        self.args: List[int] = []
        self.blocking: List[bool] = []

    # -------------------------------------------------------------- builders

    def append_think(self, instructions: int) -> None:
        self.kinds.append(OP_THINK)
        self.addresses.append(0)
        self.values.append(0)
        self.args.append(instructions)
        self.blocking.append(True)

    def append_load(self, address: int, blocking: bool = True) -> None:
        self.kinds.append(OP_LOAD)
        self.addresses.append(address)
        self.values.append(0)
        self.args.append(0)
        self.blocking.append(blocking)

    def append_store(self, address: int, value: int = 0) -> None:
        self.kinds.append(OP_STORE)
        self.addresses.append(address)
        self.values.append(value)
        self.args.append(0)
        self.blocking.append(True)

    def append_rmw(self, address: int) -> None:
        self.kinds.append(OP_RMW)
        self.addresses.append(address)
        self.values.append(0)
        self.args.append(0)
        self.blocking.append(True)

    def append_barrier(self, phase: int) -> None:
        self.kinds.append(OP_BARRIER)
        self.addresses.append(0)
        self.values.append(0)
        self.args.append(phase)
        self.blocking.append(True)

    def append(self, op: TraceOp) -> None:
        """Destructure one :class:`TraceOp` into the columns."""
        self.kinds.append(op.kind)
        self.addresses.append(op.address)
        self.values.append(op.value)
        self.args.append(op.arg)
        self.blocking.append(op.blocking)

    @classmethod
    def from_ops(cls, ops) -> "TraceChunk":
        """Convert an iterable of :class:`TraceOp` (one pass)."""
        chunk = cls()
        append = chunk.append
        for op in ops:
            append(op)
        return chunk

    def extend(self, other: "TraceChunk") -> None:
        """Append every op of ``other`` (column-wise, no per-op objects)."""
        self.kinds.extend(other.kinds)
        self.addresses.extend(other.addresses)
        self.values.extend(other.values)
        self.args.extend(other.args)
        self.blocking.extend(other.blocking)

    # ------------------------------------------------------------- views

    def __len__(self) -> int:
        return len(self.kinds)

    def slice(self, start: int, stop: int) -> "TraceChunk":
        """A new chunk holding ops ``[start, stop)`` (columns are copies)."""
        piece = TraceChunk()
        piece.kinds = self.kinds[start:stop]
        piece.addresses = self.addresses[start:stop]
        piece.values = self.values[start:stop]
        piece.args = self.args[start:stop]
        piece.blocking = self.blocking[start:stop]
        return piece

    def op(self, index: int) -> TraceOp:
        """Materialize one op as a :class:`TraceOp` view (a copy: mutating
        it does not write back; mutate the columns directly instead)."""
        view = TraceOp.__new__(TraceOp)
        view.kind = self.kinds[index]
        view.address = self.addresses[index]
        view.value = self.values[index]
        view.arg = self.args[index]
        view.blocking = self.blocking[index]
        return view

    def __getitem__(self, index):
        if isinstance(index, slice):
            return [self.op(i) for i in range(*index.indices(len(self.kinds)))]
        return self.op(index)

    def __iter__(self) -> Iterator[TraceOp]:
        for i in range(len(self.kinds)):
            yield self.op(i)

    def to_ops(self) -> List[TraceOp]:
        return list(self)

    def as_arrays(self):
        """Export the chunk as numpy columns (requires numpy).

        Returns a dict with ``kinds`` (int8 :data:`KIND_CODES`),
        ``addresses``/``values``/``args`` (int64) and ``blocking`` (bool).
        """
        import numpy as np

        codes = KIND_CODES
        return {
            "kinds": np.fromiter(
                (codes[k] for k in self.kinds), dtype=np.int8, count=len(self.kinds)
            ),
            "addresses": np.asarray(self.addresses, dtype=np.int64),
            "values": np.asarray(self.values, dtype=np.int64),
            "args": np.asarray(self.args, dtype=np.int64),
            "blocking": np.asarray(self.blocking, dtype=np.bool_),
        }


#: Either trace representation, accepted by ``Core.run_trace``.
Trace = Union[List[TraceOp], TraceChunk]


def count_instructions(trace) -> int:
    """Total instructions a trace represents (memory ops count as one)."""
    total = 0
    for op in trace:
        if op.kind == OP_THINK:
            total += op.arg
        elif op.kind != OP_BARRIER:
            total += 1
    return total
