"""Trace operation format shared by the workload generators and the cores.

A trace is a plain list of :class:`TraceOp`. Keeping it a flat value type
(rather than callbacks) lets the generators be tested in isolation and lets
one trace drive both the Baseline and the WiDir machine, which is what makes
normalized comparisons meaningful.
"""

from __future__ import annotations

from typing import Optional

OP_THINK = "think"      # arg: non-memory instruction count
OP_LOAD = "load"        # address; ``blocking`` marks use-dependent loads
OP_STORE = "store"      # address + value
OP_RMW = "rmw"          # address (atomic fetch-and-increment)
OP_BARRIER = "barrier"  # arg: phase id (cross-core alignment point)

_VALID_KINDS = frozenset({OP_THINK, OP_LOAD, OP_STORE, OP_RMW, OP_BARRIER})


class TraceOp:
    """One operation in a core's instruction trace."""

    __slots__ = ("kind", "address", "value", "arg", "blocking")

    def __init__(
        self,
        kind: str,
        address: int = 0,
        value: int = 0,
        arg: int = 0,
        blocking: bool = True,
    ) -> None:
        if kind not in _VALID_KINDS:
            raise ValueError(f"unknown trace op kind {kind!r}")
        self.kind = kind
        self.address = address
        self.value = value
        self.arg = arg
        self.blocking = blocking

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        if self.kind == OP_THINK:
            return f"TraceOp(think {self.arg})"
        if self.kind == OP_BARRIER:
            return f"TraceOp(barrier {self.arg})"
        return f"TraceOp({self.kind} 0x{self.address:x})"


def think(instructions: int) -> TraceOp:
    """Convenience constructor for a non-memory instruction burst."""
    return TraceOp(OP_THINK, arg=instructions)


def load(address: int, blocking: bool = True) -> TraceOp:
    return TraceOp(OP_LOAD, address=address, blocking=blocking)


def store(address: int, value: int = 0) -> TraceOp:
    return TraceOp(OP_STORE, address=address, value=value)


def rmw(address: int) -> TraceOp:
    return TraceOp(OP_RMW, address=address)


def barrier(phase: int) -> TraceOp:
    return TraceOp(OP_BARRIER, arg=phase)


def count_instructions(trace) -> int:
    """Total instructions a trace represents (memory ops count as one)."""
    total = 0
    for op in trace:
        if op.kind == OP_THINK:
            total += op.arg
        elif op.kind != OP_BARRIER:
            total += 1
    return total
