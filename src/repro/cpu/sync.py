"""Cross-core phase alignment.

Real SPLASH/PARSEC phases are aligned by memory-based barriers; the workload
generators emit that memory traffic (RMW on a barrier word plus spin loads),
but a trace cannot adaptively spin. :class:`PhaseBarrier` provides the
control-flow half: a core reaching a barrier op waits until every core has
arrived, and the wait is charged to its synchronization-stall bucket.
"""

from __future__ import annotations

from typing import Callable, Dict, List


class PhaseBarrier:
    """Reusable count-based barrier over ``num_cores`` participants."""

    def __init__(self, num_cores: int) -> None:
        self.num_cores = num_cores
        self._arrived: Dict[int, List[Callable[[], None]]] = {}

    def arrive(self, phase: int, on_release: Callable[[], None]) -> None:
        """Register arrival at ``phase``; ``on_release`` fires at the last one."""
        waiters = self._arrived.setdefault(phase, [])
        waiters.append(on_release)
        if len(waiters) == self.num_cores:
            del self._arrived[phase]
            for waiter in waiters:
                waiter()

    def pending(self, phase: int) -> int:
        """How many cores are currently parked at ``phase``."""
        return len(self._arrived.get(phase, ()))
