"""The trace-driven core model.

The model reproduces the *occupancy* behaviour of the paper's out-of-order
core (Table III) without simulating a pipeline:

* non-memory instructions retire at ``issue_width`` per cycle;
* loads issue asynchronously up to ``max_outstanding_misses`` in flight
  (memory-level parallelism); a *blocking* load additionally stalls the core
  until its own data returns, modelling a use-dependent consumer nearby;
* stores retire into the write buffer and drain concurrently; the core only
  stalls when the buffer is full;
* atomics (RMW) drain the write buffer and outstanding loads first, then
  block — the consistency-model behaviour the paper's wireless RMW respects;
* barriers align all cores via a :class:`~repro.cpu.sync.PhaseBarrier`.

Every cycle the core spends blocked on any of the above is attributed to
``memory_stall_cycles`` (barrier waits go to ``sync_stall_cycles``), which is
exactly the decomposition behind the paper's Figure 8 bars. Per-operation
latencies (issue to completion) feed Figure 7.
"""

from __future__ import annotations

from typing import Callable, List, Optional

from repro.config.system import SystemConfig
from repro.cpu.sync import PhaseBarrier
from repro.cpu.trace import (
    OP_BARRIER,
    OP_LOAD,
    OP_RMW,
    OP_STORE,
    OP_THINK,
    TraceChunk,
)
from repro.engine.simulator import Simulator
from repro.stats.collectors import Histogram, LatencyStat, StatsRegistry


class CoreResult:
    """Summary of one core's execution of its trace."""

    __slots__ = (
        "node",
        "finish_cycle",
        "instructions",
        "memory_stall_cycles",
        "sync_stall_cycles",
        "load_latency",
        "store_latency",
        "latency_hist",
    )

    def __init__(self, node: int) -> None:
        self.node = node
        self.finish_cycle = 0
        self.instructions = 0
        self.memory_stall_cycles = 0
        self.sync_stall_cycles = 0
        self.load_latency = LatencyStat(f"core{node}.load_latency")
        self.store_latency = LatencyStat(f"core{node}.store_latency")
        #: Combined load+store+RMW latency distribution (p50/p95/p99 come
        #: from here; the LatencyStats above only keep min/mean/max).
        self.latency_hist = Histogram(f"core{node}.memory_latency")

    @property
    def total_memory_latency(self) -> int:
        return self.load_latency.total + self.store_latency.total


class Core:
    """Executes one trace against one tile's cache controller."""

    def __init__(
        self,
        sim: Simulator,
        node: int,
        cache,
        config: SystemConfig,
        stats: StatsRegistry,
        barrier: Optional[PhaseBarrier] = None,
    ) -> None:
        self.sim = sim
        self.node = node
        self.cache = cache
        self.config = config
        self.barrier = barrier
        self.result = CoreResult(node)
        self._issue_width = config.core.issue_width
        self._max_loads = config.core.max_outstanding_misses
        self._wb_capacity = config.core.write_buffer_entries
        self._trace: TraceChunk = TraceChunk()
        # Column bindings (re-bound by ``run_trace``): _step walks these.
        self._kinds: List[str] = []
        self._addresses: List[int] = []
        self._values: List[int] = []
        self._args: List[int] = []
        self._blocking: List[bool] = []
        self._trace_len = 0
        self._pc = 0
        self._chunk_source: Optional[Callable[[], Optional[TraceChunk]]] = None
        self._outstanding_loads = 0
        self._wb_occupancy = 0
        self._stall_started: Optional[int] = None
        self._stall_bucket: Optional[str] = None
        self._stall_grace = 0
        self._wakeup: Optional[Callable[[], bool]] = None
        self._on_finish: Optional[Callable[["Core"], None]] = None
        self._finished = False
        # Counter objects bumped via direct ``.value +=``:
        # ``_count_instructions`` runs once per trace op and even the bound
        # ``Counter.add`` call was visible in profiles.
        self._instr = stats.counter(f"core.{node}.instructions")
        self._instr_total = stats.counter("core.total.instructions")
        # More hot-path bindings: one attribute hop instead of two or three
        # in the per-operation issue/complete closures.
        self._schedule = sim.schedule
        self._load_record = self.result.load_latency.record
        self._store_record = self.result.store_latency.record
        self._hist_record = self.result.latency_hist.record
        #: L1 hit round trip — the constant latency of the probe fast
        #: paths in ``_issue_load`` / ``_issue_store``.
        self._hit_latency = config.l1.round_trip_cycles
        # Probe/miss entry points, bound once. Cache stand-ins (unit-test
        # mocks, litmus harness stubs) that predate the probe API fall back
        # to the general closure path: the probe reports a guaranteed miss
        # and the miss leg is the stand-in's plain load/store.
        if hasattr(cache, "load_probe"):
            self._load_probe = cache.load_probe
            self._load_miss = cache.load_miss
            self._store_probe = cache.store_probe
            self._store_miss = cache.store_miss
        else:
            self._load_probe = lambda address: None
            self._load_miss = cache.load
            self._store_probe = lambda address, value: False
            self._store_miss = cache.store

    # --------------------------------------------------------------- control

    def run_trace(self, trace, on_finish=None, chunk_source=None) -> None:
        """Begin executing ``trace``; ``on_finish(core)`` fires at completion.

        ``trace`` is a :class:`~repro.cpu.trace.TraceChunk` (the native
        format) or a legacy list of :class:`TraceOp`, converted once here.
        The chunk's columns are bound to attributes so :meth:`_step` walks
        flat scalar lists with no per-op object in sight.

        ``chunk_source``, if given, is a zero-argument callable polled when
        the bound chunk drains: it returns the next :class:`TraceChunk` or
        ``None`` for end-of-stream. The refill happens synchronously inside
        :meth:`_step` — no event is scheduled, no simulated time passes —
        so a streamed trace produces the *identical* event sequence to the
        same ops presented as one monolithic chunk. This is what lets the
        trace-replay frontend drive a billion-reference file in O(chunk)
        memory.
        """
        if not isinstance(trace, TraceChunk):
            trace = TraceChunk.from_ops(trace)
        self._chunk_source = chunk_source
        self._bind_chunk(trace)
        self._finished = False
        self._on_finish = on_finish
        self.sim.schedule(0, self._step)

    def _bind_chunk(self, trace: TraceChunk) -> None:
        self._trace = trace
        self._kinds = trace.kinds
        self._addresses = trace.addresses
        self._values = trace.values
        self._args = trace.args
        self._blocking = trace.blocking
        self._trace_len = len(trace.kinds)
        self._pc = 0

    @property
    def finished(self) -> bool:
        return self._finished

    # ------------------------------------------------------------ execution

    def _step(self) -> None:
        """Advance through trace ops until blocked or done.

        The loop hoists the trace *columns* (struct-of-arrays, see
        :class:`~repro.cpu.trace.TraceChunk`), their length, and the
        scheduler into locals: this method runs once per wake-up across
        every core, and both the repeated attribute walks and the per-op
        ``TraceOp`` indexing dominated its profile. Kind strings are
        interned constants, so each ``==`` below is a pointer compare.
        """
        kinds = self._kinds
        addresses = self._addresses
        trace_len = self._trace_len
        while True:
            while self._pc < trace_len:
                pc = self._pc
                kind = kinds[pc]
                if kind == OP_THINK:
                    self._pc = pc + 1
                    arg = self._args[pc]
                    self.result.instructions += arg
                    self._instr.value += arg
                    self._instr_total.value += arg
                    cycles = max(1, -(-arg // self._issue_width))
                    self._schedule(cycles, self._step)
                    return
                if kind == OP_LOAD:
                    if not self._issue_load(addresses[pc], self._blocking[pc]):
                        return
                    continue
                if kind == OP_STORE:
                    if not self._issue_store(addresses[pc], self._values[pc]):
                        return
                    continue
                if kind == OP_RMW:
                    if not self._issue_rmw(addresses[pc]):
                        return
                    continue
                if kind == OP_BARRIER:
                    if not self._issue_barrier(self._args[pc]):
                        return
                    continue
            # Chunk drained: synchronously pull the next one if streaming.
            # Rebinding inside the wake-up keeps the event stream identical
            # to a monolithic trace — no time passes, nothing is scheduled.
            if self._chunk_source is None:
                break
            chunk = self._chunk_source()
            if chunk is None:
                self._chunk_source = None
                break
            self._bind_chunk(chunk)
            kinds = self._kinds
            addresses = self._addresses
            trace_len = self._trace_len
        # Trace drained: the core retires once all memory traffic lands.
        if self._outstanding_loads or self._wb_occupancy:
            self._block("memory", self._no_outstanding)
            return
        self._finish()

    def _finish(self) -> None:
        if self._finished:
            return
        self._finished = True
        self.result.finish_cycle = self.sim.now
        if self._on_finish is not None:
            self._on_finish(self)

    def _count_instructions(self, count: int) -> None:
        self.result.instructions += count
        self._instr.value += count
        self._instr_total.value += count

    # --------------------------------------------------------------- stalls

    def _block(
        self, bucket: str, can_continue: Callable[[], bool], grace: int = 0
    ) -> None:
        """Park the core until ``can_continue()``; charge the wait to bucket.

        ``grace`` cycles of the wait are considered hidden by the pipeline
        (an L1 hit under a use-dependent load does not stall a real OoO
        core) and are not charged as stall.
        """
        self._stall_started = self.sim.now
        self._stall_bucket = bucket
        self._stall_grace = grace
        self._wakeup = can_continue

    def _maybe_wake(self) -> None:
        if self._wakeup is None or not self._wakeup():
            return
        started = self._stall_started if self._stall_started is not None else self.sim.now
        waited = self.sim.now - started
        waited = max(0, waited - self._stall_grace)
        if self._stall_bucket == "sync":
            self.result.sync_stall_cycles += waited
        else:
            self.result.memory_stall_cycles += waited
        self._wakeup = None
        self._stall_started = None
        self._stall_bucket = None
        self._stall_grace = 0
        self._step()

    def _no_outstanding(self) -> bool:
        return self._outstanding_loads == 0 and self._wb_occupancy == 0

    # ------------------------------------------------------------- load path

    def _issue_load(self, address: int, blocking: bool) -> bool:
        if self._outstanding_loads >= self._max_loads:
            self._block("memory", lambda: self._outstanding_loads < self._max_loads)
            return False
        self._pc += 1
        self._count_instructions(1)
        value = self._load_probe(address)
        if value is not None:
            # L1 read hit: the latency is the constant L1 round trip and
            # the wake-up target is known now, so record at issue (latency
            # records are order-free sums) and schedule the wake directly —
            # no completion closure. The wake event occupies the same
            # ``(time, seq)`` slot the general path's completion would
            # have, so downstream event ordering is unchanged.
            latency = self._hit_latency
            self._load_record(latency)
            self._hist_record(latency)
            if blocking:
                # The general path blocks with ``grace == hit latency`` and
                # therefore charges zero stall for a hit; skipping the
                # block/wake bookkeeping entirely is equivalent.
                self._schedule(latency, self._step)
                return False
            self._outstanding_loads += 1
            self._schedule(latency, self._nb_hit_done)
            return True
        self._outstanding_loads += 1
        issued = self.sim.now
        completed = [False]  # one-slot cell: cheaper than a dict in this hot path

        def on_done(_value: int) -> None:
            completed[0] = True
            self._outstanding_loads -= 1
            latency = self.sim.now - issued
            self._load_record(latency)
            self._hist_record(latency)
            self._maybe_wake()

        self._load_miss(address, on_done)
        if blocking and not completed[0]:
            grace = self.config.l1.round_trip_cycles
            self._block("memory", lambda: completed[0], grace=grace)
            return False
        return True

    def _nb_hit_done(self) -> None:
        """Completion of a non-blocking L1 hit load (latency was recorded
        at issue): release the MLP slot and re-check any stall condition."""
        self._outstanding_loads -= 1
        self._maybe_wake()

    # ------------------------------------------------------------ store path

    def _issue_store(self, address: int, value: int) -> bool:
        if self._wb_occupancy >= self._wb_capacity:
            self._block("memory", lambda: self._wb_occupancy < self._wb_capacity)
            return False
        self._pc += 1
        self._count_instructions(1)
        self._wb_occupancy += 1
        if self._store_probe(address, value):
            # M/E write hit: same record-at-issue + direct wake-up pattern
            # as the load fast path (see ``_issue_load``).
            latency = self._hit_latency
            self._store_record(latency)
            self._hist_record(latency)
            self._schedule(latency, self._st_hit_done)
            return True
        issued = self.sim.now

        def on_done() -> None:
            self._wb_occupancy -= 1
            latency = self.sim.now - issued
            self._store_record(latency)
            self._hist_record(latency)
            self._maybe_wake()

        self._store_miss(address, value, on_done)
        return True

    def _st_hit_done(self) -> None:
        """Completion of an M/E store hit (latency recorded at issue):
        drain the write-buffer slot and re-check any stall condition."""
        self._wb_occupancy -= 1
        self._maybe_wake()

    # -------------------------------------------------------------- RMW path

    def _issue_rmw(self, address: int) -> bool:
        # Atomic: per the consistency model the RMW executes only once older
        # memory operations have drained, and younger ones wait for it.
        if not self._no_outstanding():
            self._block("memory", self._no_outstanding)
            return False
        self._pc += 1
        self._count_instructions(1)
        issued = self.sim.now
        completed = [False]

        def on_done(_old: int) -> None:
            completed[0] = True
            latency = self.sim.now - issued
            self._store_record(latency)
            self._hist_record(latency)
            self._maybe_wake()

        self.cache.rmw(address, on_done)
        if not completed[0]:
            self._block("memory", lambda: completed[0])
            return False
        return True

    # ---------------------------------------------------------- barrier path

    def _issue_barrier(self, phase: int) -> bool:
        if self.barrier is None:
            self._pc += 1
            return True
        if not self._no_outstanding():
            self._block("memory", self._no_outstanding)
            return False
        self._pc += 1
        released = [False]

        def on_release() -> None:
            released[0] = True
            self._maybe_wake()

        self.barrier.arrive(phase, on_release)
        if not released[0]:
            self._block("sync", lambda: released[0])
            return False
        return True
