"""Wired 2D-mesh network on chip.

Messages travel home-to-requester and back over a dimension-ordered (XY)
routed mesh. The model is transaction-level: each message experiences a
per-hop latency, fixed router overhead, and first-order per-link queueing
contention; the harness additionally records the Table V hops-per-leg
distribution from exactly these messages.
"""

from repro.noc.message import Message
from repro.noc.mesh import MeshNetwork
from repro.noc.topology import MeshTopology

__all__ = ["Message", "MeshNetwork", "MeshTopology"]
