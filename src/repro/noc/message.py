"""Coherence messages carried by the wired mesh.

One class covers every wired message; the ``kind`` field names the protocol
action (GetS, GetX, Data, Inv, InvAck, PutS, PutM, WBAck, WirUpgr,
WirUpgrAck, PutW, WirDwgrAck, ...). Size matters only for link occupancy:
control messages are one flit, data-bearing messages carry a line.
"""

from __future__ import annotations

from typing import Any, Dict, Optional


#: Message kinds that carry a full cache line (affects link occupancy).
DATA_BEARING_KINDS = frozenset({"Data", "DataE", "FwdData", "WBData", "WirUpgr"})


class Message:
    """A single wired NoC message.

    Attributes
    ----------
    kind:
        Protocol message name (e.g. ``"GetS"``).
    src, dst:
        Tile ids.
    line:
        Line address the transaction concerns.
    payload:
        Free-form protocol fields (data words, sharer flags, ack counts...).
    """

    __slots__ = ("kind", "src", "dst", "line", "payload", "sent_at")

    def __init__(
        self,
        kind: str,
        src: int,
        dst: int,
        line: int,
        payload: Optional[Dict[str, Any]] = None,
    ) -> None:
        self.kind = kind
        self.src = src
        self.dst = dst
        self.line = line
        self.payload = payload if payload is not None else {}
        self.sent_at: Optional[int] = None

    @property
    def carries_data(self) -> bool:
        return self.kind in DATA_BEARING_KINDS

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Message({self.kind} {self.src}->{self.dst} line=0x{self.line:x})"
