"""Coherence messages carried by the wired mesh.

One class covers every wired message; the ``kind`` field names the protocol
action (GetS, GetX, Data, Inv, InvAck, PutS, PutM, WBAck, WirUpgr,
WirUpgrAck, PutW, WirDwgrAck, ...). Size matters only for link occupancy:
control messages are one flit, data-bearing messages carry a line.

Fast path
---------
Messages store the *interned* kind id (see :mod:`repro.coherence.messages`)
and precompute ``carries_data`` at construction, so the mesh and the
controllers never hash a string per message. ``Message.kind`` remains a
string-valued property for reprs, traces, and tests.

Allocation: the wired network moves hundreds of messages per simulated
memory operation, and almost all of them die the moment their destination
handler returns. :meth:`Message.acquire` hands out recycled instances from
a bounded class-level freelist; :meth:`MeshNetwork._deliver
<repro.noc.mesh.MeshNetwork._deliver>` releases them after dispatch unless
a handler called :meth:`retain` (directory deferred queues and
retry-scheduled handlers do). Messages built through the plain constructor
(tests, external drivers) are never pooled, so objects a test holds on to
cannot be mutated by later simulation traffic.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from repro.coherence import messages as mk

#: Message kinds that carry a full cache line (affects link occupancy).
DATA_BEARING_KINDS = frozenset({"Data", "DataE", "FwdData", "WBData", "WirUpgr"})

#: kind id -> bool, grown lazily as new kinds are interned.
_CARRIES_DATA: List[bool] = []


def _carries_data(kid: int) -> bool:
    table = _CARRIES_DATA
    if kid >= len(table):
        for i in range(len(table), mk.num_kinds()):
            table.append(mk.kind_name(i) in DATA_BEARING_KINDS)
    return table[kid]


class Message:
    """A single wired NoC message.

    Attributes
    ----------
    kind_id:
        Interned protocol kind (dispatch key; see
        :mod:`repro.coherence.messages`).
    kind:
        Protocol message name (e.g. ``"GetS"``) — derived from ``kind_id``.
    src, dst:
        Tile ids.
    line:
        Line address the transaction concerns.
    payload:
        Free-form protocol fields (data words, sharer flags, ack counts...).
    carries_data:
        Whether the message occupies link bandwidth for a full line.
    """

    __slots__ = (
        "kind_id",
        "src",
        "dst",
        "line",
        "payload",
        "sent_at",
        "carries_data",
        "_pooled",
        "_retained",
    )

    #: Bounded freelist of recycled pooled messages.
    _free: List["Message"] = []
    _FREELIST_CAP = 4096

    def __init__(
        self,
        kind,
        src: int,
        dst: int,
        line: int,
        payload: Optional[Dict[str, Any]] = None,
    ) -> None:
        kid = kind if type(kind) is int else mk.intern_kind(kind)
        self.kind_id = kid
        self.src = src
        self.dst = dst
        self.line = line
        self.payload = payload if payload is not None else {}
        self.sent_at: Optional[int] = None
        self.carries_data = _carries_data(kid)
        self._pooled = False
        self._retained = False

    # ------------------------------------------------------------- pooling

    @classmethod
    def acquire(
        cls,
        kind,
        src: int,
        dst: int,
        line: int,
        payload: Optional[Dict[str, Any]] = None,
    ) -> "Message":
        """A pooled message: recycled if the freelist has one, else fresh."""
        free = cls._free
        if free:
            msg = free.pop()
            kid = kind if type(kind) is int else mk.intern_kind(kind)
            msg.kind_id = kid
            msg.src = src
            msg.dst = dst
            msg.line = line
            msg.payload = payload if payload is not None else {}
            msg.sent_at = None
            msg.carries_data = _carries_data(kid)
            msg._retained = False
            return msg
        msg = cls(kind, src, dst, line, payload)
        msg._pooled = True
        return msg

    def retain(self) -> None:
        """Keep this message alive beyond its delivery callback.

        Handlers that stash a message (deferred queues, scheduled retries)
        must call this, or the pool could hand the object out again while
        it is still referenced.
        """
        self._retained = True

    @classmethod
    def release(cls, msg: "Message") -> None:
        """Return a delivered message to the freelist (if eligible)."""
        if msg._pooled and not msg._retained and len(cls._free) < cls._FREELIST_CAP:
            # Drop the payload reference so line data snapshots inside it
            # are not kept alive by the pool.
            msg.payload = None
            cls._free.append(msg)

    # --------------------------------------------------------------- views

    @property
    def kind(self) -> str:
        """Protocol name of this message (debug/trace layer)."""
        return mk.kind_name(self.kind_id)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Message({self.kind} {self.src}->{self.dst} line=0x{self.line:x})"
