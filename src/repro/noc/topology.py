"""2D-mesh geometry and XY (dimension-ordered) routing."""

from __future__ import annotations

from typing import Iterator, List, Tuple

from repro.engine.errors import ConfigurationError

Link = Tuple[int, int]  # directed (from_node, to_node)


class MeshTopology:
    """A width x height mesh; node ``n`` sits at (n % width, n // width).

    The mesh may be ragged (num_nodes < width * height) to support non-square
    core counts like 32; routing only ever visits valid node ids because XY
    paths between valid nodes stay inside the occupied rectangle rows.
    """

    def __init__(self, num_nodes: int, width: int) -> None:
        if num_nodes < 1:
            raise ConfigurationError("mesh needs at least one node")
        if width < 1:
            raise ConfigurationError("mesh width must be >= 1")
        self.num_nodes = num_nodes
        self.width = width
        self.height = (num_nodes + width - 1) // width

    def coordinates_of(self, node: int) -> Tuple[int, int]:
        """(x, y) tile coordinates of a node id."""
        self._check(node)
        return node % self.width, node // self.width

    def node_at(self, x: int, y: int) -> int:
        node = y * self.width + x
        self._check(node)
        return node

    def hops(self, src: int, dst: int) -> int:
        """Manhattan distance — the hop count of the XY route."""
        sx, sy = self.coordinates_of(src)
        dx, dy = self.coordinates_of(dst)
        return abs(sx - dx) + abs(sy - dy)

    def diameter(self) -> int:
        """Worst-case hop count in the occupied region."""
        last = self.num_nodes - 1
        lx, ly = self.coordinates_of(last)
        return max(self.width - 1, lx) + ly

    def route(self, src: int, dst: int) -> List[Link]:
        """The XY route as a list of directed links (X fully, then Y)."""
        self._check(src)
        self._check(dst)
        links: List[Link] = []
        x, y = self.coordinates_of(src)
        dx, dy = self.coordinates_of(dst)
        while x != dx:
            step = 1 if dx > x else -1
            nxt = self.node_at(x + step, y)
            links.append((y * self.width + x, nxt))
            x += step
        while y != dy:
            step = 1 if dy > y else -1
            nxt = y * self.width + x + step * self.width
            self._check(nxt)
            links.append((y * self.width + x, nxt))
            y += step
        return links

    def neighbors(self, node: int) -> Iterator[int]:
        """Valid mesh neighbours of a node."""
        x, y = self.coordinates_of(node)
        for nx, ny in ((x - 1, y), (x + 1, y), (x, y - 1), (x, y + 1)):
            if 0 <= nx < self.width and 0 <= ny < self.height:
                candidate = ny * self.width + nx
                if candidate < self.num_nodes:
                    yield candidate

    def _check(self, node: int) -> None:
        if not 0 <= node < self.num_nodes:
            raise ConfigurationError(
                f"node {node} outside mesh of {self.num_nodes} nodes"
            )
