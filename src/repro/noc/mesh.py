"""Transaction-level mesh network model.

Latency of a message = router/NI overhead
                     + hops * cycles_per_hop
                     + per-link queueing delay (optional)
                     + extra serialization cycles for data-bearing messages.

Contention is modelled per directed link with a "busy-until" reservation
timeline: a message crossing a link must wait for the link's previous
occupant to clear it, and reserves it for its own serialization time. This
first-order model captures the paper's observation that wired coherence legs
on a 64-core mesh are long (Table V) and get slower under load, without
simulating individual flits.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional, Tuple

from repro.config.system import NocConfig
from repro.engine.simulator import Simulator
from repro.noc.message import Message
from repro.noc.topology import MeshTopology
from repro.stats.collectors import StatsRegistry

#: Table V bins for hops per coherence leg.
HOP_BINS = ((0, 2), (3, 5), (6, 8), (9, 11), (12, None))


class MeshNetwork:
    """Delivers :class:`Message` objects between tiles with mesh timing."""

    def __init__(
        self,
        sim: Simulator,
        topology: MeshTopology,
        config: NocConfig,
        stats: StatsRegistry,
        line_bytes: int = 64,
    ) -> None:
        self.sim = sim
        self.topology = topology
        self.config = config
        self.stats = stats
        #: Cycles a data-bearing message occupies each link: line / link width.
        self.data_serialization_cycles = max(
            1, (line_bytes * 8) // config.link_width_bits
        )
        self._link_busy_until: Dict[Tuple[int, int], int] = {}
        #: Last delivery cycle per (src, dst): dimension-ordered routing means
        #: same-pair messages share a path, so delivery is FIFO per pair. The
        #: coherence protocol relies on this (e.g. a response sent before a
        #: forward must arrive first).
        self._pair_order: Dict[Tuple[int, int], int] = {}
        self._handlers: Dict[int, Callable[[Message], None]] = {}
        self._messages = stats.counter("noc.messages")
        self._data_messages = stats.counter("noc.data_messages")
        self._total_hops = stats.counter("noc.total_hops")
        self._queueing = stats.counter("noc.queueing_cycles")
        self._hop_histogram = stats.histogram("noc.hops_per_leg", HOP_BINS)

    def register_handler(self, node: int, handler: Callable[[Message], None]) -> None:
        """Attach the tile-side receive callback for ``node``."""
        self._handlers[node] = handler

    def latency_estimate(self, src: int, dst: int, carries_data: bool = False) -> int:
        """Uncontended latency (used by tests and analytical sanity checks)."""
        hops = self.topology.hops(src, dst)
        latency = self.config.router_overhead_cycles + hops * self.config.cycles_per_hop
        if carries_data:
            latency += self.data_serialization_cycles
        return max(1, latency)

    def send(self, message: Message, extra_delay: int = 0) -> None:
        """Inject ``message``; it is delivered to the destination handler.

        ``extra_delay`` lets callers model local processing time before the
        message reaches the network interface.
        """
        message.sent_at = self.sim.now
        hops = self.topology.hops(message.src, message.dst)
        self._messages.add()
        self._total_hops.add(hops)
        self._hop_histogram.record(hops)
        if message.carries_data:
            self._data_messages.add()

        serialization = (
            self.data_serialization_cycles if message.carries_data else 1
        )
        depart = self.sim.now + extra_delay + self.config.router_overhead_cycles
        if self.config.model_contention and message.src != message.dst:
            arrival = self._traverse(message, depart, serialization)
        else:
            arrival = depart + hops * self.config.cycles_per_hop
            if message.carries_data:
                arrival += self.data_serialization_cycles

        pair = (message.src, message.dst)
        arrival = max(arrival, self.sim.now, self._pair_order.get(pair, 0) + 1)
        self._pair_order[pair] = arrival
        self.sim.schedule_at(arrival, lambda: self._deliver(message))

    def _traverse(self, message: Message, depart: int, serialization: int) -> int:
        """Walk the XY route reserving each link; return the arrival cycle."""
        time = depart
        for link in self.topology.route(message.src, message.dst):
            ready = self._link_busy_until.get(link, 0)
            if ready > time:
                self._queueing.add(ready - time)
                time = ready
            # The head reaches the far side after the hop latency; the link
            # stays occupied while the body (serialization) streams through.
            self._link_busy_until[link] = time + serialization
            time += self.config.cycles_per_hop
        # The tail of a data message lands ``serialization`` cycles later.
        if serialization > 1:
            time += serialization - 1
        return time

    def _deliver(self, message: Message) -> None:
        handler = self._handlers.get(message.dst)
        if handler is None:
            raise KeyError(f"no handler registered for node {message.dst}")
        handler(message)

    def average_hops(self) -> float:
        count = self._messages.value
        return self._total_hops.value / count if count else 0.0
