"""Transaction-level mesh network model.

Latency of a message = router/NI overhead
                     + hops * cycles_per_hop
                     + per-link queueing delay (optional)
                     + extra serialization cycles for data-bearing messages.

Contention is modelled per directed link with a "busy-until" reservation
timeline: a message crossing a link must wait for the link's previous
occupant to clear it, and reserves it for its own serialization time. This
first-order model captures the paper's observation that wired coherence legs
on a 64-core mesh are long (Table V) and get slower under load, without
simulating individual flits.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

from repro.config.system import NocConfig
from repro.engine.simulator import Simulator
from repro.noc.message import Message
from repro.noc.topology import MeshTopology
from repro.stats.collectors import StatsRegistry

#: Table V bins for hops per coherence leg.
HOP_BINS = ((0, 2), (3, 5), (6, 8), (9, 11), (12, None))

#: Sends between prunes of the link-reservation / pair-order timelines.
#: Both maps only ever *grow* in the seed implementation; entries whose
#: timestamps are in the past can never again influence a ``max()`` or a
#: busy-until comparison, so dropping them is semantics-preserving.
PRUNE_INTERVAL = 4096


class MeshNetwork:
    """Delivers :class:`Message` objects between tiles with mesh timing."""

    def __init__(
        self,
        sim: Simulator,
        topology: MeshTopology,
        config: NocConfig,
        stats: StatsRegistry,
        line_bytes: int = 64,
    ) -> None:
        self.sim = sim
        self.topology = topology
        self.config = config
        self.stats = stats
        #: Cycles a data-bearing message occupies each link: line / link width.
        self.data_serialization_cycles = max(
            1, (line_bytes * 8) // config.link_width_bits
        )
        self._link_busy_until: Dict[Tuple[int, int], int] = {}
        #: Last delivery cycle per (src, dst): dimension-ordered routing means
        #: same-pair messages share a path, so delivery is FIFO per pair. The
        #: coherence protocol relies on this (e.g. a response sent before a
        #: forward must arrive first).
        self._pair_order: Dict[Tuple[int, int], int] = {}
        #: (src, dst) -> (hops, route links, hop-histogram bin index).
        #: Dimension-ordered routes are a pure function of the pair; the
        #: seed recomputed them per message. The bin index is resolved once
        #: here so ``send`` can bump the histogram with one list index
        #: instead of re-scanning the bins per message (-1 = overflow).
        self._route_cache: Dict[
            Tuple[int, int], Tuple[int, List[Tuple[int, int]], int]
        ] = {}
        self._sends_until_prune = PRUNE_INTERVAL
        self._handlers: Dict[int, Callable[[Message], None]] = {}
        #: Online invariant monitor hook (duck-typed: needs ``msg_sent`` and
        #: ``msg_delivered``). None — the default — costs one attribute test
        #: per send/delivery and nothing else.
        self.monitor = None
        #: Observability hook (set by Observability.install(); None — the
        #: default — costs one attribute test per send/delivery and nothing
        #: else; see repro.obs.hooks).
        self.obs = None
        self._messages = stats.counter("noc.messages")
        self._data_messages = stats.counter("noc.data_messages")
        self._total_hops = stats.counter("noc.total_hops")
        self._queueing = stats.counter("noc.queueing_cycles")
        self._hop_histogram = stats.histogram("noc.hops_per_leg", HOP_BINS)
        # Hot-path bound methods (send() runs per message).
        self._messages_add = self._messages.add
        self._data_messages_add = self._data_messages.add
        self._total_hops_add = self._total_hops.add
        self._queueing_add = self._queueing.add
        self._hop_record = self._hop_histogram.record
        #: The histogram's counts list (mutated in place, never reassigned).
        self._hop_counts = self._hop_histogram.counts
        # Frozen-config constants hoisted out of the per-message path.
        self._router_overhead = config.router_overhead_cycles
        self._cycles_per_hop = config.cycles_per_hop
        self._model_contention = config.model_contention

    def register_handler(self, node: int, handler: Callable[[Message], None]) -> None:
        """Attach the tile-side receive callback for ``node``."""
        self._handlers[node] = handler

    def latency_estimate(self, src: int, dst: int, carries_data: bool = False) -> int:
        """Uncontended latency (used by tests and analytical sanity checks)."""
        hops = self.topology.hops(src, dst)
        latency = self.config.router_overhead_cycles + hops * self.config.cycles_per_hop
        if carries_data:
            latency += self.data_serialization_cycles
        return max(1, latency)

    def _pair_info(
        self, src: int, dst: int
    ) -> Tuple[int, List[Tuple[int, int]], int]:
        """Cached (hops, route, hop-bin) — routes are static per topology."""
        pair = (src, dst)
        info = self._route_cache.get(pair)
        if info is None:
            route = list(self.topology.route(src, dst))
            hops = self.topology.hops(src, dst)
            bin_idx = -1  # overflow sentinel, matching BinnedHistogram.record
            for i, (low, high) in enumerate(HOP_BINS):
                if hops >= low and (high is None or hops <= high):
                    bin_idx = i
                    break
            info = (hops, route, bin_idx)
            self._route_cache[pair] = info
        return info

    def send(self, message: Message, extra_delay: int = 0) -> None:
        """Inject ``message``; it is delivered to the destination handler.

        ``extra_delay`` lets callers model local processing time before the
        message reaches the network interface.
        """
        now = self.sim.now
        message.sent_at = now
        monitor = self.monitor
        if monitor is not None:
            monitor.msg_sent(message.line)
        obs = self.obs
        if obs is not None:
            obs.noc_send(message)
        src = message.src
        dst = message.dst
        pair = (src, dst)
        info = self._route_cache.get(pair)
        if info is None:
            info = self._pair_info(src, dst)
        hops, route, bin_idx = info
        carries_data = message.carries_data
        self._messages.value += 1
        self._total_hops.value += hops
        if bin_idx >= 0:
            self._hop_counts[bin_idx] += 1
        else:  # pragma: no cover - HOP_BINS currently cover all hop counts
            self._hop_histogram.overflow += 1
        if carries_data:
            self._data_messages.value += 1

        serialization = self.data_serialization_cycles if carries_data else 1
        depart = now + extra_delay + self._router_overhead
        if self._model_contention and src != dst:
            arrival = self._traverse(route, depart, serialization)
        else:
            arrival = depart + hops * self._cycles_per_hop
            if carries_data:
                arrival += self.data_serialization_cycles

        pair_order = self._pair_order
        arrival = max(arrival, now, pair_order.get(pair, 0) + 1)
        pair_order[pair] = arrival
        self.sim.schedule_at(arrival, lambda: self._deliver(message))

        self._sends_until_prune -= 1
        if self._sends_until_prune <= 0:
            self._sends_until_prune = PRUNE_INTERVAL
            self._prune(now)

    def send_multicast(self, messages: List[Message], extra_delay: int = 0) -> None:
        """Inject a fan-out of messages issued back-to-back by one handler.

        Timing-identical to calling :meth:`send` on each message in list
        order — link reservations are walked sequentially per message, the
        per-pair FIFO clamp applies, and deliveries are scheduled in the
        same order (hence the same (time, seq) slots). What is batched is
        the bookkeeping: counters are bumped once for the cohort, hop
        totals and histogram bins accumulate locally, the monitor/obs
        probes are tested once, and the prune countdown is settled after
        the whole fan-out (pruning is semantics-preserving at any point,
        see :meth:`_prune`). This is the vectorized path for directory
        invalidation fan-outs, where one GetX can spray dozens of INVs.
        """
        count = len(messages)
        if not count:
            return
        now = self.sim.now
        monitor = self.monitor
        obs = self.obs
        route_cache = self._route_cache
        pair_order = self._pair_order
        hop_counts = self._hop_counts
        schedule_at = self.sim.schedule_at
        deliver = self._deliver
        model_contention = self._model_contention
        router_overhead = self._router_overhead
        cycles_per_hop = self._cycles_per_hop
        data_cycles = self.data_serialization_cycles
        total_hops = 0
        data_count = 0
        for message in messages:
            message.sent_at = now
            if monitor is not None:
                monitor.msg_sent(message.line)
            if obs is not None:
                obs.noc_send(message)
            src = message.src
            dst = message.dst
            pair = (src, dst)
            info = route_cache.get(pair)
            if info is None:
                info = self._pair_info(src, dst)
            hops, route, bin_idx = info
            total_hops += hops
            if bin_idx >= 0:
                hop_counts[bin_idx] += 1
            else:  # pragma: no cover - HOP_BINS currently cover all hop counts
                self._hop_histogram.overflow += 1
            carries_data = message.carries_data
            if carries_data:
                data_count += 1
                serialization = data_cycles
            else:
                serialization = 1
            depart = now + extra_delay + router_overhead
            if model_contention and src != dst:
                arrival = self._traverse(route, depart, serialization)
            else:
                arrival = depart + hops * cycles_per_hop
                if carries_data:
                    arrival += data_cycles
            floor = pair_order.get(pair, 0) + 1
            if arrival < now:
                arrival = now
            if arrival < floor:
                arrival = floor
            pair_order[pair] = arrival
            schedule_at(arrival, lambda message=message: deliver(message))
        self._messages.value += count
        self._total_hops.value += total_hops
        if data_count:
            self._data_messages.value += data_count
        self._sends_until_prune -= count
        if self._sends_until_prune <= 0:
            self._sends_until_prune = PRUNE_INTERVAL
            self._prune(now)

    def _prune(self, now: int) -> None:
        """Drop stale reservation/ordering entries (unbounded in the seed).

        A pair-order entry only matters through ``value + 1`` (the earliest
        next delivery), and a link reservation only through ``value`` (the
        cycle the link frees up); entries at or before ``now`` can never
        influence a future send, so removing them cannot change timing.
        """
        pair_order = self._pair_order
        for pair in [p for p, t in pair_order.items() if t + 1 <= now]:
            del pair_order[pair]
        busy = self._link_busy_until
        for link in [l for l, t in busy.items() if t <= now]:
            del busy[link]

    def _traverse(self, route, depart: int, serialization: int) -> int:
        """Walk the XY route reserving each link; return the arrival cycle."""
        time = depart
        busy = self._link_busy_until
        cycles_per_hop = self._cycles_per_hop
        queued = 0
        for link in route:
            ready = busy.get(link, 0)
            if ready > time:
                queued += ready - time
                time = ready
            # The head reaches the far side after the hop latency; the link
            # stays occupied while the body (serialization) streams through.
            busy[link] = time + serialization
            time += cycles_per_hop
        if queued:
            # One counter bump for the whole walk (same total as per-hop).
            self._queueing.value += queued
        # The tail of a data message lands ``serialization`` cycles later.
        if serialization > 1:
            time += serialization - 1
        return time

    def _deliver(self, message: Message) -> None:
        monitor = self.monitor
        if monitor is not None:
            monitor.msg_delivered(message.line)
        obs = self.obs
        if obs is not None:
            obs.noc_recv(message)
        handler = self._handlers.get(message.dst)
        if handler is None:
            raise KeyError(f"no handler registered for node {message.dst}")
        handler(message)
        # The message is dead unless the handler retained it (deferred
        # queues, scheduled retries); recycle it through the freelist.
        Message.release(message)

    def average_hops(self) -> float:
        count = self._messages.value
        return self._total_hops.value / count if count else 0.0
