"""Section II-C motivation probe.

The paper motivates WiDir with a measurement taken on a modified model where
writes *update* rather than invalidate sharers: how many sharers does a line
accumulate before leaving the LLC (paper: ~21 on the 64-core machine), and
what fraction of a line's pre-write sharers re-read it after the write
(paper: ~56%)?

The probe replays an application's reference stream through a functional
update-mode sharing model (no timing needed — the quantities are pure
properties of the reference order), which is exactly what the paper's
counting experiment measures.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.stats.report import format_table
from repro.workloads.generator import build_traces
from repro.workloads.profiles import APP_PROFILES, AppProfile


class _LineState:
    __slots__ = ("sharers", "pre_write_sharers", "re_readers")

    def __init__(self) -> None:
        self.sharers: Set[int] = set()
        self.pre_write_sharers: Optional[Set[int]] = None
        self.re_readers: Set[int] = set()


def _merge_rounds(traces: List[List]) -> Iterable[Tuple[int, object]]:
    """Interleave per-core traces round-robin (a canonical order)."""
    cursors = [0] * len(traces)
    remaining = sum(len(t) for t in traces)
    while remaining:
        for core, trace in enumerate(traces):
            if cursors[core] < len(trace):
                yield core, trace[cursors[core]]
                cursors[core] += 1
                remaining -= 1


def section2c_sharing_probe(
    apps: Optional[Iterable[str]] = None,
    num_cores: int = 64,
    memops: int = 1500,
    trace_seed: int = 0,
) -> "MotivationResult":
    """Measure update-mode sharer accumulation and re-read fraction."""
    if apps is None:
        apps = list(APP_PROFILES)
    rows = []
    all_sharer_counts: List[int] = []
    all_reread_fracs: List[float] = []
    for app in apps:
        profile: AppProfile = APP_PROFILES[app]
        traces = build_traces(profile, num_cores, memops, trace_seed)
        lines: Dict[int, _LineState] = {}
        sharer_samples: List[int] = []
        reread_samples: List[float] = []
        for core, op in _merge_rounds(traces):
            if op.kind not in ("load", "store", "rmw"):
                continue
            line = op.address >> 6
            state = lines.setdefault(line, _LineState())
            if op.kind == "load":
                state.sharers.add(core)
                if (
                    state.pre_write_sharers is not None
                    and core in state.pre_write_sharers
                ):
                    state.re_readers.add(core)
            else:
                # A write in update mode: sharers stay; snapshot them and
                # start tracking who re-reads.
                if state.pre_write_sharers is not None and state.pre_write_sharers:
                    reread_samples.append(
                        len(state.re_readers) / len(state.pre_write_sharers)
                    )
                state.sharers.add(core)
                state.pre_write_sharers = set(state.sharers)
                state.re_readers = set()
        # "Sharers accumulated until eviction": sample every line with >1
        # sharer at stream end (the synthetic streams have no LLC evictions
        # of shared lines, so end-of-stream is the eviction point).
        for state in lines.values():
            if len(state.sharers) > 1:
                sharer_samples.append(len(state.sharers))
        mean_sharers = (
            sum(sharer_samples) / len(sharer_samples) if sharer_samples else 0.0
        )
        mean_reread = (
            sum(reread_samples) / len(reread_samples) if reread_samples else 0.0
        )
        all_sharer_counts.append(mean_sharers)
        all_reread_fracs.append(mean_reread)
        rows.append([app, mean_sharers, mean_reread])
    avg_sharers = sum(all_sharer_counts) / len(all_sharer_counts)
    avg_reread = sum(all_reread_fracs) / len(all_reread_fracs)
    rows.append(["average", avg_sharers, avg_reread])
    text = format_table(
        ["app", "sharers accumulated", "re-read fraction"],
        rows,
        title="Section II-C probe (paper: 21 sharers, 0.56 re-read)",
    )
    return MotivationResult(avg_sharers, avg_reread, rows, text)


class MotivationResult:
    """Output of the Section II-C probe."""

    def __init__(self, avg_sharers: float, avg_reread: float, rows, text: str) -> None:
        self.avg_sharers = avg_sharers
        self.avg_reread = avg_reread
        self.rows = rows
        self.text = text

    def __str__(self) -> str:  # pragma: no cover
        return self.text
