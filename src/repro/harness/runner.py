"""Run one application on one machine and collect everything.

``run_app`` assembles a :class:`~repro.system.Manycore`, synthesizes the
application's traces, attaches cores, runs to completion, validates the
coherence invariants, and folds the statistics into a
:class:`SimulationResult`. ``run_pair`` runs the same traces on the Baseline
and the WiDir machine so normalized comparisons share a reference stream.
"""

from __future__ import annotations

import os
from dataclasses import replace
from typing import Dict, List, Optional, Tuple

from repro.config.presets import baseline_config, widir_config
from repro.config.system import SystemConfig
from repro.cpu.core import Core
from repro.cpu.sync import PhaseBarrier
from repro.energy.models import EnergyBreakdown, EnergyModel
from repro.engine.errors import SimulationError
from repro.stats.collectors import Histogram
from repro.system import Manycore
from repro.workloads.generator import build_traces
from repro.workloads.profiles import APP_PROFILES, AppProfile

#: Default memory references per core per run; override with the
#: REPRO_MEMOPS environment variable to trade accuracy for speed.
DEFAULT_MEMOPS = int(os.environ.get("REPRO_MEMOPS", "1500"))

#: Event-count backstop so a harness bug fails fast instead of spinning.
MAX_EVENTS_PER_MEMOP = 600


class SimulationResult:
    """Everything the evaluation needs from one run."""

    def __init__(
        self,
        app: str,
        config: SystemConfig,
        cycles: int,
        instructions: int,
        memory_stall_cycles: int,
        sync_stall_cycles: int,
        load_latency_total: int,
        store_latency_total: int,
        read_misses: int,
        write_misses: int,
        wireless_writes: int,
        sharer_histogram: Dict[str, int],
        hop_histogram: Dict[str, int],
        collision_probability: float,
        energy: EnergyBreakdown,
        stats_counters: Dict[str, int],
        latency_histogram: Optional[Dict] = None,
    ) -> None:
        self.app = app
        self.config = config
        self.cycles = cycles
        self.instructions = instructions
        self.memory_stall_cycles = memory_stall_cycles
        self.sync_stall_cycles = sync_stall_cycles
        self.load_latency_total = load_latency_total
        self.store_latency_total = store_latency_total
        self.read_misses = read_misses
        self.write_misses = write_misses
        self.wireless_writes = wireless_writes
        self.sharer_histogram = sharer_histogram
        self.hop_histogram = hop_histogram
        self.collision_probability = collision_probability
        self.energy = energy
        self.stats_counters = stats_counters
        #: ``Histogram.to_dict()`` of the merged per-core memory-latency
        #: distribution ({} on results loaded from pre-histogram caches).
        self.latency_histogram = latency_histogram or {}

    # -------------------------------------------------------- serialization

    def to_dict(self) -> Dict:
        """Full-fidelity JSON-serializable snapshot of this result.

        Round-tripping through :meth:`from_dict` reproduces a result whose
        ``to_dict()`` output is byte-identical (ints and strings are exact;
        floats survive JSON via ``repr`` round-tripping) — the contract the
        experiment executor's on-disk memoization relies on. The legacy
        human-oriented format lives in :mod:`repro.harness.results_io`.
        """
        return {
            "app": self.app,
            "config": self.config.to_dict(),
            "cycles": self.cycles,
            "instructions": self.instructions,
            "memory_stall_cycles": self.memory_stall_cycles,
            "sync_stall_cycles": self.sync_stall_cycles,
            "load_latency_total": self.load_latency_total,
            "store_latency_total": self.store_latency_total,
            "read_misses": self.read_misses,
            "write_misses": self.write_misses,
            "wireless_writes": self.wireless_writes,
            "sharer_histogram": dict(self.sharer_histogram),
            "hop_histogram": dict(self.hop_histogram),
            "collision_probability": self.collision_probability,
            "energy": self.energy.as_dict(),
            "stats_counters": dict(self.stats_counters),
            "latency_histogram": dict(self.latency_histogram),
        }

    @classmethod
    def from_dict(cls, payload: Dict) -> "SimulationResult":
        """Reconstruct a result saved by :meth:`to_dict`."""
        from repro.energy.models import EnergyBreakdown as _EnergyBreakdown

        return cls(
            app=payload["app"],
            config=SystemConfig.from_dict(payload["config"]),
            cycles=payload["cycles"],
            instructions=payload["instructions"],
            memory_stall_cycles=payload["memory_stall_cycles"],
            sync_stall_cycles=payload["sync_stall_cycles"],
            load_latency_total=payload["load_latency_total"],
            store_latency_total=payload["store_latency_total"],
            read_misses=payload["read_misses"],
            write_misses=payload["write_misses"],
            wireless_writes=payload["wireless_writes"],
            sharer_histogram=dict(payload["sharer_histogram"]),
            hop_histogram=dict(payload["hop_histogram"]),
            collision_probability=payload["collision_probability"],
            energy=_EnergyBreakdown(**payload["energy"]),
            stats_counters=dict(payload["stats_counters"]),
            # Tolerate caches written before the histogram existed.
            latency_histogram=dict(payload.get("latency_histogram", {})),
        )

    # ------------------------------------------------------ derived metrics

    @property
    def misses(self) -> int:
        return self.read_misses + self.write_misses

    @property
    def mpki(self) -> float:
        """L1 misses per kilo-instruction (Figure 6 / Table IV)."""
        if self.instructions == 0:
            return 0.0
        return 1000.0 * self.misses / self.instructions

    @property
    def read_mpki(self) -> float:
        if self.instructions == 0:
            return 0.0
        return 1000.0 * self.read_misses / self.instructions

    @property
    def write_mpki(self) -> float:
        if self.instructions == 0:
            return 0.0
        return 1000.0 * self.write_misses / self.instructions

    @property
    def total_memory_latency(self) -> int:
        """Summed per-operation latency (Figure 7)."""
        return self.load_latency_total + self.store_latency_total

    @property
    def total_stall_cycles(self) -> int:
        """Memory stall incl. synchronization waits (Figure 8 breakdown)."""
        return self.memory_stall_cycles + self.sync_stall_cycles

    @property
    def rest_cycles(self) -> int:
        total = self.cycles * self.config.num_cores
        return max(0, total - self.total_stall_cycles)

    @property
    def memory_stall_fraction(self) -> float:
        total = self.cycles * self.config.num_cores
        return self.total_stall_cycles / total if total else 0.0

    def latency_percentiles(self) -> Dict[str, float]:
        """p50/p95/p99 (plus mean/min/max) of per-op memory latency.

        Empty for results deserialized from caches that predate the
        histogram field.
        """
        if not self.latency_histogram:
            return {}
        from repro.stats.report import percentile_summary

        return percentile_summary(Histogram.from_dict(self.latency_histogram))


def _resolve_profile(app) -> AppProfile:
    if isinstance(app, AppProfile):
        return app
    try:
        return APP_PROFILES[app]
    except KeyError:
        raise KeyError(
            f"unknown application {app!r}; known apps: {sorted(APP_PROFILES)}"
        ) from None


def run_app(
    app,
    config: SystemConfig,
    memops_per_core: Optional[int] = None,
    trace_seed: int = 0,
    check: bool = True,
    machine_sink: Optional[List] = None,
) -> SimulationResult:
    """Run one application to completion on one machine.

    ``machine_sink``, if given, receives the :class:`Manycore` instance so
    callers that need post-run access to live machine state (the trace CLI
    exporting an observability capture) can retrieve it without changing
    the return type.
    """
    profile = _resolve_profile(app)
    memops = memops_per_core if memops_per_core is not None else DEFAULT_MEMOPS
    machine = Manycore(config)
    if machine_sink is not None:
        machine_sink.append(machine)
    barrier = PhaseBarrier(config.num_cores)
    traces = build_traces(profile, config.num_cores, memops, trace_seed)

    cores: List[Core] = []
    finished = {"count": 0}

    def on_finish(_core: Core) -> None:
        finished["count"] += 1

    for node in range(config.num_cores):
        core = Core(
            machine.sim, node, machine.caches[node], config, machine.stats, barrier
        )
        cores.append(core)
        core.run_trace(traces[node], on_finish)

    budget = MAX_EVENTS_PER_MEMOP * memops * config.num_cores
    machine.run(max_events=budget)
    if finished["count"] != config.num_cores:
        stuck = [c.node for c in cores if not c.finished]
        raise SimulationError(
            f"{profile.name}: cores {stuck} did not finish "
            f"(deadlock or lost wakeup at cycle {machine.sim.now})"
        )
    if check:
        machine.check_coherence()

    cycles = max(core.result.finish_cycle for core in cores)
    stats = machine.stats
    sharer_hist = stats.histogram(
        "widir.sharers_per_update",
        (((0, 5), (6, 10), (11, 25), (26, 49), (50, None))),
    )
    hop_hist = stats.histogram(
        "noc.hops_per_leg", ((0, 2), (3, 5), (6, 8), (9, 11), (12, None))
    )
    collision_prob = (
        machine.wireless.collision_probability if machine.wireless else 0.0
    )
    energy = EnergyModel().compute(config, stats, cycles)
    merged_hist = Histogram("memory_latency")
    for core in cores:
        merged_hist.merge(core.result.latency_hist)

    return SimulationResult(
        app=profile.name,
        config=config,
        cycles=cycles,
        instructions=stats.get_counter("core.total.instructions"),
        memory_stall_cycles=sum(c.result.memory_stall_cycles for c in cores),
        sync_stall_cycles=sum(c.result.sync_stall_cycles for c in cores),
        load_latency_total=sum(c.result.load_latency.total for c in cores),
        store_latency_total=sum(c.result.store_latency.total for c in cores),
        read_misses=stats.get_counter("l1.total.read_misses"),
        write_misses=stats.get_counter("l1.total.write_misses"),
        wireless_writes=stats.get_counter("l1.total.wireless_writes"),
        sharer_histogram=dict(zip(sharer_hist.labels(), sharer_hist.counts)),
        hop_histogram=dict(zip(hop_hist.labels(), hop_hist.counts)),
        collision_probability=collision_prob,
        energy=energy,
        stats_counters=stats.counters(),
        latency_histogram=merged_hist.to_dict(),
    )


def run_pair(
    app,
    num_cores: int = 64,
    memops_per_core: Optional[int] = None,
    trace_seed: int = 0,
    max_wired_sharers: int = 3,
    seed: int = 42,
) -> Tuple[SimulationResult, SimulationResult]:
    """Run the same traces on Baseline and WiDir; returns (baseline, widir)."""
    base = run_app(
        app,
        baseline_config(num_cores=num_cores, seed=seed),
        memops_per_core,
        trace_seed,
    )
    widir = run_app(
        app,
        widir_config(
            num_cores=num_cores, max_wired_sharers=max_wired_sharers, seed=seed
        ),
        memops_per_core,
        trace_seed,
    )
    return base, widir


def scaled_config(config: SystemConfig, num_cores: int) -> SystemConfig:
    """The same machine at a different core count (Figure 10 sweeps)."""
    return replace(config, num_cores=num_cores)
