"""Experiment harness.

:mod:`~repro.harness.runner` executes one (application, machine) pair and
returns a :class:`~repro.harness.runner.SimulationResult` with every metric
the paper reports. :mod:`~repro.harness.figures` builds each table/figure of
the evaluation section from those results, and
:mod:`~repro.harness.motivation` reproduces the Section II-C measurement
that motivates the design.

Fault tolerance: :mod:`~repro.harness.campaign` runs whole sweeps as
crash-safe-resumable campaigns on top of the
:mod:`~repro.harness.supervisor` worker pool (per-run timeouts,
heartbeats, seeded retry/backoff, graceful degradation). Those two
modules — and everything they pull in (``multiprocessing`` plumbing,
campaign telemetry) — resolve lazily on first attribute access so that
``import repro.harness`` (and therefore ``import repro.api``) stays as
cheap as it was before the campaign layer existed.
"""

from repro.harness.runner import SimulationResult, run_app, run_pair
from repro.harness.executor import (
    Executor,
    ExperimentPlan,
    RunRequest,
    default_executor,
    run_key,
)
from repro.harness.report_gen import generate_report
from repro.harness.results_io import load_results, save_results
from repro.harness.sweeps import (
    sweep_core_counts,
    sweep_protocols,
    sweep_thresholds,
)
from repro.harness.validate import validate_result
from repro.harness.figures import (
    figure10_scalability,
    figure5_sharer_histogram,
    figure6_mpki,
    figure7_memory_latency,
    figure8_execution_time,
    figure9_energy,
    table4_mpki_characterization,
    table5_hop_distribution,
    table6_sensitivity,
)
from repro.harness.motivation import section2c_sharing_probe

#: Lazily resolved exports: name -> (module, attribute). The campaign /
#: supervisor layer is only needed by campaign workflows, never by a plain
#: ``api.simulate`` call.
_LAZY = {
    "Campaign": ("repro.harness.campaign", "Campaign"),
    "CampaignError": ("repro.harness.campaign", "CampaignError"),
    "CampaignReport": ("repro.harness.campaign", "CampaignReport"),
    "CampaignResultSource": ("repro.harness.campaign", "CampaignResultSource"),
    "CampaignSpec": ("repro.harness.campaign", "CampaignSpec"),
    "CampaignStatus": ("repro.harness.campaign", "CampaignStatus"),
    "run_campaign": ("repro.harness.campaign", "run_campaign"),
    "Coordinator": ("repro.harness.distributed", "Coordinator"),
    "DistributedError": ("repro.harness.distributed", "DistributedError"),
    "DistributedReport": ("repro.harness.distributed", "DistributedReport"),
    "TokenBucket": ("repro.harness.distributed", "TokenBucket"),
    "WorkerAgent": ("repro.harness.distributed", "WorkerAgent"),
    "run_distributed": ("repro.harness.distributed", "run_distributed"),
    "RpcClient": ("repro.harness.protocol", "RpcClient"),
    "RpcError": ("repro.harness.protocol", "RpcError"),
    "ProtocolError": ("repro.harness.protocol", "ProtocolError"),
    "ResultStore": ("repro.harness.resultstore", "ResultStore"),
    "ResultStoreError": ("repro.harness.resultstore", "ResultStoreError"),
    "RetryPolicy": ("repro.harness.supervisor", "RetryPolicy"),
    "ScriptedFaults": ("repro.harness.supervisor", "ScriptedFaults"),
    "SeededFaults": ("repro.harness.supervisor", "SeededFaults"),
    "WorkerSupervisor": ("repro.harness.supervisor", "WorkerSupervisor"),
}

__all__ = [
    "Campaign",
    "CampaignError",
    "CampaignReport",
    "CampaignResultSource",
    "CampaignSpec",
    "CampaignStatus",
    "Coordinator",
    "DistributedError",
    "DistributedReport",
    "Executor",
    "ExperimentPlan",
    "ProtocolError",
    "ResultStore",
    "ResultStoreError",
    "RetryPolicy",
    "RpcClient",
    "RpcError",
    "RunRequest",
    "ScriptedFaults",
    "SeededFaults",
    "SimulationResult",
    "TokenBucket",
    "WorkerAgent",
    "WorkerSupervisor",
    "default_executor",
    "run_campaign",
    "run_distributed",
    "run_key",
    "generate_report",
    "load_results",
    "save_results",
    "sweep_core_counts",
    "sweep_protocols",
    "sweep_thresholds",
    "validate_result",
    "figure10_scalability",
    "figure5_sharer_histogram",
    "figure6_mpki",
    "figure7_memory_latency",
    "figure8_execution_time",
    "figure9_energy",
    "run_app",
    "run_pair",
    "section2c_sharing_probe",
    "table4_mpki_characterization",
    "table5_hop_distribution",
    "table6_sensitivity",
]


def __getattr__(name):
    """PEP 562: resolve the campaign/supervisor layer on first touch."""
    try:
        module_name, attribute = _LAZY[name]
    except KeyError:
        raise AttributeError(
            f"module 'repro.harness' has no attribute {name!r}"
        ) from None
    import importlib

    value = getattr(importlib.import_module(module_name), attribute)
    globals()[name] = value  # cache: subsequent access skips __getattr__
    return value


def __dir__():
    return sorted(set(__all__) | set(globals()))
