"""Experiment harness.

:mod:`~repro.harness.runner` executes one (application, machine) pair and
returns a :class:`~repro.harness.runner.SimulationResult` with every metric
the paper reports. :mod:`~repro.harness.figures` builds each table/figure of
the evaluation section from those results, and
:mod:`~repro.harness.motivation` reproduces the Section II-C measurement
that motivates the design.
"""

from repro.harness.runner import SimulationResult, run_app, run_pair
from repro.harness.executor import (
    Executor,
    ExperimentPlan,
    RunRequest,
    default_executor,
    run_key,
)
from repro.harness.report_gen import generate_report
from repro.harness.results_io import load_results, save_results
from repro.harness.sweeps import (
    sweep_core_counts,
    sweep_protocols,
    sweep_thresholds,
)
from repro.harness.validate import validate_result
from repro.harness.figures import (
    figure10_scalability,
    figure5_sharer_histogram,
    figure6_mpki,
    figure7_memory_latency,
    figure8_execution_time,
    figure9_energy,
    table4_mpki_characterization,
    table5_hop_distribution,
    table6_sensitivity,
)
from repro.harness.motivation import section2c_sharing_probe

__all__ = [
    "Executor",
    "ExperimentPlan",
    "RunRequest",
    "SimulationResult",
    "default_executor",
    "run_key",
    "generate_report",
    "load_results",
    "save_results",
    "sweep_core_counts",
    "sweep_protocols",
    "sweep_thresholds",
    "validate_result",
    "figure10_scalability",
    "figure5_sharer_histogram",
    "figure6_mpki",
    "figure7_memory_latency",
    "figure8_execution_time",
    "figure9_energy",
    "run_app",
    "run_pair",
    "section2c_sharing_probe",
    "table4_mpki_characterization",
    "table5_hop_distribution",
    "table6_sensitivity",
]
