"""Parallel experiment executor with on-disk memoization.

The evaluation harness regenerates the paper's figures from grids of
independent ``(app, machine, memops, trace_seed)`` simulations. Those runs
are embarrassingly parallel (like the SST parallel-component execution the
paper relied on) and massively redundant across figures: fig6 (MPKI), fig7
(latency) and fig8 (execution time) all re-simulate the same Baseline/WiDir
pairs. This module provides the execution layer that removes both kinds of
waste:

``RunRequest`` / ``run_key``
    A canonical description of one simulation and its content hash. The key
    covers the app name, *every* :class:`~repro.config.system.SystemConfig`
    field, the per-core memop count, the trace seed, and a schema version —
    two requests with the same key are guaranteed (by the repo's determinism
    contract) to produce byte-identical results.

``ExperimentPlan``
    An ordered run matrix. Figures declare what they need; the executor
    figures out what actually has to be simulated.

``Executor``
    Deduplicates a plan by :func:`run_key`, satisfies requests from an
    on-disk JSON cache (``$REPRO_CACHE_DIR`` or ``~/.cache/repro``), fans
    the remaining unique runs out over a ``multiprocessing`` pool
    (``$REPRO_WORKERS`` / ``--workers``; ``workers=1`` is a deterministic
    in-process serial fallback), and returns results in plan order.

Every result — fresh, pooled, or cached — is canonicalized through
``SimulationResult.to_dict()``/``from_dict()`` so parallel, serial, and
warm-cache execution are *byte-identical*, which the determinism tests
assert.
"""

from __future__ import annotations

import hashlib
import json
import logging
import os
import time
from dataclasses import dataclass
from pathlib import Path
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple, Union

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.harness.resultstore import ResultStore

from repro.config.presets import baseline_config, widir_config
from repro.config.system import SystemConfig
from repro.harness.ioutils import atomic_write_json, quarantine
from repro.harness.runner import DEFAULT_MEMOPS, SimulationResult, run_app

log = logging.getLogger("repro.harness.executor")

#: Bump on ANY change that alters simulation results or their serialized
#: shape (protocol semantics, stats counters, energy constants, trace
#: synthesis, ...). Stale cache entries from earlier schemas are simply
#: never looked up again; ``Executor.prune_cache`` garbage-collects them.
CACHE_SCHEMA_VERSION = 2  # v2: SimulationResult grew latency_histogram

_ENV_WORKERS = "REPRO_WORKERS"
_ENV_CACHE_DIR = "REPRO_CACHE_DIR"
_ENV_CACHE = "REPRO_CACHE"


# ------------------------------------------------------------------ run keys


@dataclass(frozen=True)
class RunRequest:
    """One simulation the harness wants: app on machine for memops refs.

    A request either *synthesizes* its reference stream (the default:
    ``app``/``memops``/``trace_seed`` drive the workload generator) or
    *replays* a recorded trace file: ``trace_path`` names the file,
    ``trace_id`` pins its content digest (verified before the run — a
    re-recorded file at the same path misses the cache instead of
    silently serving stale results), and ``trace_window`` optionally
    narrows the run to one barrier-safe chunk window (the sharded-
    campaign unit, replayed cold).
    """

    app: str
    config: SystemConfig
    memops: int
    trace_seed: int = 0
    trace_path: str = ""
    trace_id: str = ""
    trace_window: Optional[Tuple[Tuple[int, int], ...]] = None

    def canonical(self) -> Dict:
        """JSON-stable description; the hash input for :func:`run_key`.

        Trace fields are included only when set, so the keys (and the
        on-disk cache entries) of every pre-existing generator-driven
        request are byte-identical to before trace replay existed. The
        key covers ``trace_id`` — the content digest — not the file
        path: the same reference stream is the same run wherever the
        file lives.
        """
        payload = {
            "schema": CACHE_SCHEMA_VERSION,
            "app": self.app,
            "config": self.config.to_dict(),
            "memops": self.memops,
            "trace_seed": self.trace_seed,
        }
        if self.trace_path:
            payload["trace_id"] = self.trace_id
            if self.trace_window is not None:
                payload["trace_window"] = [list(span) for span in self.trace_window]
        return payload


def run_key(request: RunRequest) -> str:
    """Content hash identifying a request's result (cache file stem)."""
    blob = json.dumps(request.canonical(), sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


# ------------------------------------------------------------------- plans


class ExperimentPlan:
    """An ordered matrix of runs, declared up front and executed at once.

    Figures build a plan, hand it to :meth:`Executor.map_runs`, and read
    results back positionally (``add`` returns the request's index).
    Duplicate requests are legal — the executor deduplicates by
    :func:`run_key` before dispatch, so declaring the natural matrix is
    always correct and never wasteful.
    """

    def __init__(self) -> None:
        self.requests: List[RunRequest] = []

    def __len__(self) -> int:
        return len(self.requests)

    def add(
        self,
        app: str,
        config: SystemConfig,
        memops: Optional[int] = None,
        trace_seed: int = 0,
    ) -> int:
        """Append one run; returns its index into ``map_runs`` output."""
        resolved = memops if memops is not None else DEFAULT_MEMOPS
        self.requests.append(RunRequest(app, config, resolved, trace_seed))
        return len(self.requests) - 1

    def add_pair(
        self,
        app: str,
        num_cores: int = 64,
        memops: Optional[int] = None,
        trace_seed: int = 0,
        max_wired_sharers: int = 3,
        seed: int = 42,
    ) -> Tuple[int, int]:
        """Append a Baseline/WiDir pair on the same traces (``run_pair``)."""
        base = self.add(
            app, baseline_config(num_cores=num_cores, seed=seed), memops, trace_seed
        )
        widir = self.add(
            app,
            widir_config(
                num_cores=num_cores, max_wired_sharers=max_wired_sharers, seed=seed
            ),
            memops,
            trace_seed,
        )
        return base, widir

    def add_trace(
        self,
        trace_path: Union[str, Path],
        config: SystemConfig,
        trace_id: str = "",
        window: Optional[Tuple[Tuple[int, int], ...]] = None,
        app: str = "",
    ) -> int:
        """Append a recorded-trace replay run; returns its index.

        ``trace_id`` is read from the file when not supplied (one cheap
        header+index parse). ``window`` restricts the run to one
        barrier-safe chunk window, replayed cold (see
        :mod:`repro.traces.sharding`).
        """
        from repro.traces.format import TraceReader

        path = str(trace_path)
        if not trace_id or not app:
            with TraceReader(path) as reader:
                trace_id = trace_id or reader.trace_id
                app = app or reader.app or "trace"
        span = None
        if window is not None:
            span = tuple((int(a), int(b)) for a, b in window)
        self.requests.append(
            RunRequest(
                app,
                config,
                0,
                0,
                trace_path=path,
                trace_id=trace_id,
                trace_window=span,
            )
        )
        return len(self.requests) - 1

    def unique_keys(self) -> List[str]:
        """Distinct run keys in first-occurrence order."""
        seen: Dict[str, None] = {}
        for request in self.requests:
            seen.setdefault(run_key(request), None)
        return list(seen)


# ------------------------------------------------------------- worker side

#: ``sys.path`` entries the pool initializer replays in workers, so spawned
#: children can import ``repro`` even when the repo is used uninstalled via
#: ``PYTHONPATH=src`` (fork inherits the path; spawn does not).
def _pool_init(paths: List[str]) -> None:  # pragma: no cover - worker side
    import sys

    for entry in reversed(paths):
        if entry not in sys.path:
            sys.path.insert(0, entry)


def _simulate(request: RunRequest) -> Tuple[Dict, float]:
    """Execute one request; returns (canonical payload, wall seconds).

    Module-level so it pickles into pool workers. The payload (not the
    ``SimulationResult``) crosses the process boundary: it is exactly what
    the cache stores, so every execution mode shares one canonical form.
    """
    started = time.perf_counter()
    if request.trace_path:
        from repro.traces.replay import replay_trace, replay_window

        if request.trace_window is not None:
            result = replay_window(
                request.trace_path,
                request.config,
                request.trace_window,
                expect_trace_id=request.trace_id,
            )
        else:
            result = replay_trace(
                request.trace_path,
                request.config,
                expect_trace_id=request.trace_id,
            )
    else:
        result = run_app(
            request.app, request.config, request.memops, request.trace_seed
        )
    return result.to_dict(), time.perf_counter() - started


# --------------------------------------------------------------- executor


@dataclass
class ExecutorStats:
    """Cumulative accounting for one :class:`Executor` (bench telemetry)."""

    requested: int = 0  #: runs asked for across all plans
    deduplicated: int = 0  #: requests satisfied by another request's result
    cache_hits: int = 0  #: unique runs satisfied from the on-disk cache
    executed: int = 0  #: simulations actually run
    sim_seconds: float = 0.0  #: summed per-simulation wall time ("serial cost")
    wall_seconds: float = 0.0  #: summed ``map_runs`` wall time

    @property
    def hit_rate(self) -> float:
        served = self.cache_hits + self.executed
        return self.cache_hits / served if served else 0.0

    def as_dict(self) -> Dict:
        return {
            "requested": self.requested,
            "deduplicated": self.deduplicated,
            "cache_hits": self.cache_hits,
            "executed": self.executed,
            "cache_hit_rate": self.hit_rate,
            "sim_seconds": self.sim_seconds,
            "wall_seconds": self.wall_seconds,
        }


def _default_workers() -> int:
    raw = os.environ.get(_ENV_WORKERS, "").strip()
    if raw:
        return max(1, int(raw))
    return os.cpu_count() or 1


def _default_cache_dir() -> Path:
    raw = os.environ.get(_ENV_CACHE_DIR, "").strip()
    if raw:
        return Path(raw)
    return Path.home() / ".cache" / "repro"


def _cache_enabled_by_env() -> bool:
    return os.environ.get(_ENV_CACHE, "1").strip().lower() not in ("0", "no", "off")


class Executor:
    """Deduplicating, memoizing, optionally parallel experiment runner.

    Parameters
    ----------
    workers:
        Process count for the fan-out pool. ``None`` reads ``REPRO_WORKERS``
        and falls back to ``os.cpu_count()``. ``1`` never creates a pool:
        runs execute in-process, in plan order (the deterministic serial
        fallback — bit-identical to the parallel path by construction).
    cache_dir:
        Where memoized results live, one ``<run_key>.json`` per unique run.
        ``None`` reads ``REPRO_CACHE_DIR`` and falls back to
        ``~/.cache/repro``.
    use_cache:
        Disable to force re-simulation (also ``REPRO_CACHE=0``).
    store:
        Optional :class:`~repro.harness.resultstore.ResultStore`. When
        given, the content-addressed objects plane becomes an extra memo
        layer: loads consult it (after the flat dir cache), and every
        payload this executor produces is published to it — so campaigns,
        figures, and distributed fleets sharing one store dedupe across
        tenants. Explicit opt-in: unaffected by ``use_cache``/``--no-cache``,
        which only govern the flat per-user cache.
    """

    def __init__(
        self,
        workers: Optional[int] = None,
        cache_dir: Optional[Union[str, Path]] = None,
        use_cache: Optional[bool] = None,
        store: Optional["ResultStore"] = None,
    ) -> None:
        self.workers = _default_workers() if workers is None else max(1, int(workers))
        self.cache_dir = Path(cache_dir) if cache_dir is not None else _default_cache_dir()
        self.use_cache = _cache_enabled_by_env() if use_cache is None else bool(use_cache)
        self.store = store
        self.stats = ExecutorStats()

    # ------------------------------------------------------------- cache

    def _cache_path(self, key: str) -> Path:
        return self.cache_dir / f"{key}.json"

    def _cache_load(self, key: str) -> Optional[Dict]:
        payload = self._dir_cache_load(key)
        if payload is not None:
            return payload
        if self.store is not None:
            return self.store.get(key)
        return None

    def _dir_cache_load(self, key: str) -> Optional[Dict]:
        if not self.use_cache:
            return None
        path = self._cache_path(key)
        try:
            raw = path.read_text()
        except OSError:
            return None  # plain miss
        try:
            payload = json.loads(raw)
            if not isinstance(payload, dict):
                raise ValueError("cache entries must be JSON objects")
            return payload
        except ValueError:
            # A corrupt entry (e.g. a pre-hardening writer killed mid-write)
            # must never poison the run: move it aside for post-mortem
            # inspection, log, and recompute.
            log.warning("corrupt cache entry for %s; quarantining", key)
            quarantine(path)
            return None

    def _cache_store(self, key: str, payload: Dict) -> None:
        if self.store is not None:
            try:
                self.store.put(key, payload)
            except OSError:
                pass  # store writes are best-effort, like the dir cache
        if not self.use_cache:
            return
        try:
            # tmp + fsync + rename: a kill mid-write can never leave a torn
            # JSON file at the final path (see repro.harness.ioutils).
            atomic_write_json(self._cache_path(key), payload)
        except OSError:
            pass  # a read-only cache dir degrades to "no memoization"

    def prune_cache(self) -> int:
        """Delete every cached entry (plus quarantined/stale-tmp debris);
        returns the number removed."""
        removed = 0
        if self.cache_dir.is_dir():
            entries = list(self.cache_dir.glob("*.json"))
            entries += self.cache_dir.glob("*.json.corrupt.*")
            entries += self.cache_dir.glob("*.json.tmp.*")
            for entry in entries:
                try:
                    entry.unlink()
                    removed += 1
                except OSError:
                    pass
        return removed

    # ---------------------------------------------------------- execution

    def _execute_unique(
        self, todo: List[Tuple[str, RunRequest]]
    ) -> Dict[str, Dict]:
        """Simulate the cache-missing unique runs; returns key -> payload."""
        payloads: Dict[str, Dict] = {}
        if not todo:
            return payloads
        if self.workers > 1 and len(todo) > 1:
            import multiprocessing
            import sys

            try:
                context = multiprocessing.get_context("fork")
            except ValueError:  # pragma: no cover - non-POSIX fallback
                context = multiprocessing.get_context()
            processes = min(self.workers, len(todo))
            with context.Pool(
                processes, initializer=_pool_init, initargs=(list(sys.path),)
            ) as pool:
                outputs = pool.map(_simulate, [request for _, request in todo])
        else:
            outputs = [_simulate(request) for _, request in todo]
        for (key, _), (payload, elapsed) in zip(todo, outputs):
            payloads[key] = payload
            self.stats.executed += 1
            self.stats.sim_seconds += elapsed
            self._cache_store(key, payload)
        return payloads

    def map_runs(self, plan: ExperimentPlan) -> List[SimulationResult]:
        """Execute a plan; returns results aligned with ``plan.requests``.

        Requests are deduplicated by :func:`run_key`; unique misses are
        simulated (pooled if ``workers > 1``); everything is canonicalized
        through ``SimulationResult.from_dict`` so the output is independent
        of *how* each run was satisfied.
        """
        started = time.perf_counter()
        keys = [run_key(request) for request in plan.requests]
        self.stats.requested += len(keys)

        first_occurrence: Dict[str, RunRequest] = {}
        for key, request in zip(keys, plan.requests):
            if key in first_occurrence:
                self.stats.deduplicated += 1
            else:
                first_occurrence[key] = request

        payloads: Dict[str, Dict] = {}
        todo: List[Tuple[str, RunRequest]] = []
        for key, request in first_occurrence.items():
            cached = self._cache_load(key)
            if cached is not None:
                payloads[key] = cached
                self.stats.cache_hits += 1
            else:
                todo.append((key, request))

        payloads.update(self._execute_unique(todo))
        results = [SimulationResult.from_dict(payloads[key]) for key in keys]
        self.stats.wall_seconds += time.perf_counter() - started
        return results

    # -------------------------------------------------------- conveniences

    def run(
        self,
        app: str,
        config: SystemConfig,
        memops: Optional[int] = None,
        trace_seed: int = 0,
    ) -> SimulationResult:
        """``run_app`` through the dedup/memoize/canonicalize pipeline."""
        plan = ExperimentPlan()
        index = plan.add(app, config, memops, trace_seed)
        return self.map_runs(plan)[index]

    def run_pair(
        self,
        app: str,
        num_cores: int = 64,
        memops_per_core: Optional[int] = None,
        trace_seed: int = 0,
        max_wired_sharers: int = 3,
        seed: int = 42,
    ) -> Tuple[SimulationResult, SimulationResult]:
        """``run_pair`` through the executor; returns (baseline, widir)."""
        plan = ExperimentPlan()
        base, widir = plan.add_pair(
            app,
            num_cores=num_cores,
            memops=memops_per_core,
            trace_seed=trace_seed,
            max_wired_sharers=max_wired_sharers,
            seed=seed,
        )
        results = self.map_runs(plan)
        return results[base], results[widir]


# ------------------------------------------------------- default instance

_DEFAULT_EXECUTOR: Optional[Executor] = None


def default_executor() -> Executor:
    """Process-wide executor the figure functions use when none is passed.

    Its stats accumulate across every figure in the process, which is what
    the benchmark suite's ``BENCH_harness.json`` emitter reports.
    """
    global _DEFAULT_EXECUTOR
    if _DEFAULT_EXECUTOR is None:
        _DEFAULT_EXECUTOR = Executor()
    return _DEFAULT_EXECUTOR


def set_default_executor(executor: Optional[Executor]) -> Optional[Executor]:
    """Swap the process-wide executor (tests, CLI); returns the old one."""
    global _DEFAULT_EXECUTOR
    previous = _DEFAULT_EXECUTOR
    _DEFAULT_EXECUTOR = executor
    return previous
