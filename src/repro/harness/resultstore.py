"""Content-addressed, multi-tenant result store.

The PR-1 executor cache memoizes one flat directory of
``<run_key>.json`` files, where the run key is already a sha256 over the
canonical request (:func:`repro.harness.executor.run_key`). This module
generalizes that idiom into a store that many tenants, campaigns, and
worker fleets can share safely:

* **objects/** — the content-addressed plane: one canonical payload per
  run key, fanned out by the first two hex digits
  (``objects/ab/abcdef....json``) so a million-entry store never puts a
  million files in one directory. Writes are atomic
  (:func:`~repro.harness.ioutils.atomic_write_json`) and idempotent —
  two workers racing to store the same key both win, bit-identically,
  because payloads are a pure function of the key.
* **tenants/** — the naming plane: per-tenant, per-campaign manifests
  mapping labels to run keys. Tenants never duplicate payload bytes;
  a second tenant submitting an already-computed matrix completes
  entirely from the objects plane (the coordinator counts these as
  ``store-hit`` completions and never leases them to a worker).

The store is also executor-compatible: handing ``store=`` to
:class:`~repro.harness.executor.Executor` routes its memo-cache reads and
writes through the objects plane, so interactive figure runs, campaigns,
and distributed fleets all dedupe against the same pool.

Corruption discipline matches the rest of the harness: unreadable objects
are quarantined (``*.corrupt.<pid>``) and recomputed, never trusted.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Tuple, Union

from repro.harness.ioutils import (
    atomic_write_json,
    iter_stale_tmp,
    quarantine,
)

#: Bump on any change to the on-disk layout or manifest shape.
STORE_SCHEMA_VERSION = 1

OBJECTS_DIR = "objects"
TENANTS_DIR = "tenants"
DEFAULT_TENANT = "default"

_KEY_HEX = set("0123456789abcdef")


def _valid_key(key: str) -> bool:
    return len(key) == 64 and set(key) <= _KEY_HEX


class ResultStoreError(RuntimeError):
    """Raised for malformed keys and unusable store directories."""


class ResultStore:
    """One store rooted at ``root`` (``REPRO_STORE_DIR`` for the CLI)."""

    def __init__(self, root: Union[str, Path]) -> None:
        self.root = Path(root)
        #: Monotonic session counters (mirrored into bench telemetry).
        self.stats: Dict[str, int] = {
            "hits": 0,
            "misses": 0,
            "puts": 0,
            "put_dedup": 0,
            "quarantined": 0,
        }

    # ---------------------------------------------------------- object plane

    def object_path(self, key: str) -> Path:
        if not _valid_key(key):
            raise ResultStoreError(f"{key!r} is not a sha256 run key")
        return self.root / OBJECTS_DIR / key[:2] / f"{key}.json"

    def has(self, key: str) -> bool:
        return self.object_path(key).exists()

    def get(self, key: str) -> Optional[Dict]:
        """Fetch one canonical payload; ``None`` on miss.

        A corrupt object is quarantined and reported as a miss, so a torn
        pre-hardening write can never poison a campaign.
        """
        path = self.object_path(key)
        try:
            raw = path.read_text(encoding="utf-8")
        except OSError:
            self.stats["misses"] += 1
            return None
        try:
            payload = json.loads(raw)
            if not isinstance(payload, dict):
                raise ValueError("store objects must be JSON objects")
        except ValueError:
            quarantine(path)
            self.stats["quarantined"] += 1
            self.stats["misses"] += 1
            return None
        self.stats["hits"] += 1
        return payload

    def put(self, key: str, payload: Dict) -> bool:
        """Store one payload; returns ``True`` if the object was new.

        Existing objects are left untouched (content-addressed: same key
        implies same bytes), which keeps concurrent writers cheap — the
        common distributed case is N workers completing one shared key.
        """
        path = self.object_path(key)
        if path.exists():
            self.stats["put_dedup"] += 1
            return False
        atomic_write_json(path, payload)
        self.stats["puts"] += 1
        return True

    def keys(self) -> Iterator[str]:
        objects = self.root / OBJECTS_DIR
        if not objects.is_dir():
            return
        for bucket in sorted(objects.iterdir()):
            if not bucket.is_dir():
                continue
            for entry in sorted(bucket.glob("*.json")):
                stem = entry.name[: -len(".json")]
                if _valid_key(stem):
                    yield stem

    def __len__(self) -> int:
        return sum(1 for _ in self.keys())

    # ---------------------------------------------------------- tenant plane

    def _manifest_path(self, tenant: str, campaign: str) -> Path:
        for part in (tenant, campaign):
            if not part or "/" in part or part.startswith("."):
                raise ResultStoreError(
                    f"invalid tenant/campaign name {part!r}"
                )
        return self.root / TENANTS_DIR / tenant / f"{campaign}.json"

    def publish(
        self,
        tenant: str,
        campaign: str,
        keys_by_label: Dict[str, str],
        digest: str = "",
    ) -> Path:
        """Write (atomically, idempotently) one campaign manifest."""
        path = self._manifest_path(tenant, campaign)
        atomic_write_json(
            path,
            {
                "schema": STORE_SCHEMA_VERSION,
                "tenant": tenant,
                "campaign": campaign,
                "digest": digest,
                "keys": dict(sorted(keys_by_label.items())),
            },
        )
        return path

    def manifest(self, tenant: str, campaign: str) -> Optional[Dict]:
        path = self._manifest_path(tenant, campaign)
        try:
            payload = json.loads(path.read_text(encoding="utf-8"))
        except OSError:
            return None
        except ValueError:
            quarantine(path)
            self.stats["quarantined"] += 1
            return None
        return payload if isinstance(payload, dict) else None

    def tenants(self) -> List[str]:
        tenants = self.root / TENANTS_DIR
        if not tenants.is_dir():
            return []
        return sorted(p.name for p in tenants.iterdir() if p.is_dir())

    def campaigns(self, tenant: str) -> List[str]:
        base = self.root / TENANTS_DIR / tenant
        if not base.is_dir():
            return []
        return sorted(p.name[: -len(".json")] for p in base.glob("*.json"))

    def referenced_keys(self) -> set:
        """Every key any tenant manifest still points at."""
        keys = set()
        for tenant in self.tenants():
            for campaign in self.campaigns(tenant):
                manifest = self.manifest(tenant, campaign)
                if manifest:
                    keys.update(manifest.get("keys", {}).values())
        return keys

    # ------------------------------------------------------------ lifecycle

    def gc(self, keep: Optional[set] = None) -> int:
        """Delete unreferenced objects (plus tmp/quarantine debris).

        ``keep`` defaults to :meth:`referenced_keys`; returns the number
        of files removed.
        """
        keep = self.referenced_keys() if keep is None else set(keep)
        removed = 0
        for key in list(self.keys()):
            if key in keep:
                continue
            try:
                self.object_path(key).unlink()
                removed += 1
            except OSError:  # pragma: no cover - racing cleanup
                pass
        for debris in list(iter_stale_tmp(self.root)):
            try:
                debris.unlink()
                removed += 1
            except OSError:  # pragma: no cover - racing cleanup
                pass
        for corrupt in list(self.root.rglob("*.corrupt.*")):
            try:
                corrupt.unlink()
                removed += 1
            except OSError:  # pragma: no cover - racing cleanup
                pass
        return removed

    def describe(self) -> Dict:
        return {
            "schema": STORE_SCHEMA_VERSION,
            "root": str(self.root),
            "objects": len(self),
            "tenants": {
                tenant: self.campaigns(tenant) for tenant in self.tenants()
            },
            "stats": dict(self.stats),
        }


def default_store_dir() -> Path:
    raw = os.environ.get("REPRO_STORE_DIR", "").strip()
    if raw:
        return Path(raw)
    return Path.home() / ".cache" / "repro-store"


__all__ = [
    "DEFAULT_TENANT",
    "OBJECTS_DIR",
    "STORE_SCHEMA_VERSION",
    "TENANTS_DIR",
    "ResultStore",
    "ResultStoreError",
    "default_store_dir",
]
