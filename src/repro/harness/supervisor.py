"""Supervised worker pool with timeouts, heartbeats, and seeded retries.

The PR-1 :class:`~repro.harness.executor.Executor` fans simulations out
over a plain ``multiprocessing.Pool`` — fine for interactive figure runs,
fatal for multi-hour campaigns: one worker crash, OOM kill, or hang takes
the whole sweep with it. This module supplies the fault-tolerant execution
layer the campaign runner (:mod:`repro.harness.campaign`) sits on:

* every run executes in its **own** child process, so a crash is an
  isolated, observable event instead of a poisoned pool;
* children emit **heartbeats** on a pipe; the supervisor distinguishes a
  *crashed* worker (process died), a *timed-out* worker (wall-clock budget
  exceeded while still beating), and a *hung* worker (alive but silent);
* failed runs are **retried** with seeded exponential backoff. The backoff
  engine is literally the protocol's own
  :class:`~repro.wireless.mac.BackoffPolicy` — the BRS MAC discipline the
  paper applies to wireless collisions, applied here to harness faults —
  driven by a :class:`~repro.engine.rng.DeterministicRng` split per run
  key, so retry schedules are reproducible;
* after ``max_attempts`` the run is reported as *failed* rather than
  raising, letting the campaign layer degrade gracefully.

Fault injection (:class:`ScriptedFaults`, :class:`SeededFaults`) is part of
the public surface: the kill/resume tests and the ``campaign-smoke`` CI job
drive the supervisor through crash/hang/stall/error schedules and assert
the retry ladder heals them.
"""

from __future__ import annotations

import os
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.engine.rng import DeterministicRng
from repro.harness.executor import RunRequest, _simulate
from repro.wireless.mac import BackoffPolicy

#: Fault kinds a worker can be told to exhibit (tests / smoke campaigns).
FAULT_KINDS = ("crash", "hang", "stall", "error")

#: Exit code of an intentionally crashed worker (diagnostics only).
CRASH_EXIT_CODE = 173


# ------------------------------------------------------------- retry policy


class RetryPolicy:
    """Seeded exponential-backoff retry schedule, one stream per run key.

    The delay after the ``n``-th consecutive failure of a run is drawn by a
    :class:`~repro.wireless.mac.BackoffPolicy` (uniform in a window that
    doubles up to ``base * 2**max_exponent`` *backoff units*), from an RNG
    stream split off ``seed`` by the run key — identical inputs always
    yield the identical retry schedule, and no run's draws perturb
    another's.

    ``unit`` converts abstract backoff cycles into seconds; tests set it to
    ``0`` for instant retries.
    """

    def __init__(
        self,
        max_attempts: int = 3,
        base: int = 2,
        max_exponent: int = 5,
        unit: float = 0.05,
        seed: int = 0,
    ) -> None:
        if max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        self.max_attempts = max_attempts
        self.base = base
        self.max_exponent = max_exponent
        self.unit = unit
        self.seed = seed
        self._root = DeterministicRng(seed)
        self._policies: Dict[str, BackoffPolicy] = {}

    def _policy_for(self, key: str) -> BackoffPolicy:
        policy = self._policies.get(key)
        if policy is None:
            policy = BackoffPolicy(
                self.base, self.max_exponent, self._root.split(key)
            )
            self._policies[key] = policy
        return policy

    def delay_seconds(self, key: str, failures: int) -> float:
        """Backoff before retry number ``failures`` of run ``key``."""
        return self._policy_for(key).delay_for_attempt(failures) * self.unit

    def describe(self) -> Dict:
        return {
            "max_attempts": self.max_attempts,
            "base": self.base,
            "max_exponent": self.max_exponent,
            "unit": self.unit,
            "seed": self.seed,
        }


# ---------------------------------------------------------- fault injection


class ScriptedFaults:
    """Exact fault schedule: ``{(key_prefix, attempt): kind}``.

    Key prefixes let tests script faults without computing full run keys.
    """

    def __init__(self, script: Dict[Tuple[str, int], str]) -> None:
        for (_, _), kind in script.items():
            if kind not in FAULT_KINDS:
                raise ValueError(f"unknown fault kind {kind!r}")
        self.script = dict(script)

    def __call__(self, key: str, attempt: int) -> Optional[str]:
        for (prefix, when), kind in self.script.items():
            if attempt == when and key.startswith(prefix):
                return kind
        return None


class SeededFaults:
    """Deterministic random faults, for smoke campaigns and CLI demos.

    Each ``(key, attempt)`` pair draws once from a split RNG stream, so the
    fault pattern is a pure function of ``seed`` — rerunning a campaign
    with the same injection seed reproduces the same crashes. Faults are
    only injected on attempts ``<= max_faulty_attempts`` so the retry
    ladder always heals eventually.
    """

    def __init__(
        self,
        rates: Dict[str, float],
        seed: int = 0,
        max_faulty_attempts: int = 1,
    ) -> None:
        for kind in rates:
            if kind not in FAULT_KINDS:
                raise ValueError(f"unknown fault kind {kind!r}")
        self.rates = {k: float(v) for k, v in rates.items() if v > 0}
        self.seed = seed
        self.max_faulty_attempts = max_faulty_attempts
        self._root = DeterministicRng(seed)

    def __call__(self, key: str, attempt: int) -> Optional[str]:
        if attempt > self.max_faulty_attempts or not self.rates:
            return None
        draw = self._root.split(f"{key}#{attempt}").random()
        threshold = 0.0
        for kind in FAULT_KINDS:  # fixed order => stable partition
            rate = self.rates.get(kind, 0.0)
            if rate <= 0:
                continue
            threshold += rate
            if draw < threshold:
                return kind
        return None

    @classmethod
    def parse(cls, spec: str, seed: int = 0) -> "SeededFaults":
        """Parse a CLI spec like ``"crash=0.2,hang=0.1"``."""
        rates: Dict[str, float] = {}
        for part in spec.split(","):
            part = part.strip()
            if not part:
                continue
            kind, _, value = part.partition("=")
            rates[kind.strip()] = float(value) if value else 1.0
        return cls(rates, seed=seed)


# -------------------------------------------------------------- worker side


def replay_sys_paths(paths: List[str]) -> None:
    """Replay the parent's ``sys.path`` into a child process.

    Fork inherits the path, spawn does not; replaying makes both work when
    the repo runs uninstalled via ``PYTHONPATH=src``. Shared by supervisor
    children and the distributed worker agents.
    """
    import sys

    for entry in reversed(paths):
        if entry not in sys.path:
            sys.path.insert(0, entry)


def start_heartbeat_thread(
    beat: Callable[[], None],
    interval: float,
) -> Callable[[], None]:
    """Run ``beat`` every ``interval`` seconds on a daemon thread.

    Returns a stopper. ``beat`` raising stops the loop silently — a dead
    transport (closed pipe / dropped socket) means the listener already
    treats this process as gone, so there is nobody left to tell. Shared
    by supervisor children (pipe heartbeats) and distributed worker agents
    (RPC heartbeats over a dedicated connection).
    """
    import threading

    stop = threading.Event()

    def loop() -> None:
        while not stop.wait(interval):
            try:
                beat()
            except Exception:  # noqa: BLE001 - transport gone: listener too
                return

    if interval > 0:
        threading.Thread(target=loop, daemon=True).start()
    return stop.set


def _worker_main(
    conn,
    request: RunRequest,
    fault: Optional[str],
    heartbeat_interval: float,
    sys_paths: List[str],
) -> None:  # pragma: no cover - child process
    """Child entry: heartbeat thread + one simulation (or injected fault)."""
    replay_sys_paths(sys_paths)

    if fault == "crash":
        os._exit(CRASH_EXIT_CODE)

    # A "stall" fault suppresses heartbeats entirely: the supervisor must
    # detect the silence, not the (never-arriving) result.
    stop_heartbeat = start_heartbeat_thread(
        lambda: conn.send(("hb", time.monotonic())),
        heartbeat_interval if fault != "stall" else 0.0,
    )

    try:
        if fault in ("hang", "stall"):
            time.sleep(3600.0)  # killed by the supervisor
            return
        if fault == "error":
            conn.send(("err", "injected worker error"))
            return
        payload, elapsed = _simulate(request)
        conn.send(("ok", payload, elapsed))
    except BaseException as exc:  # noqa: BLE001 - report, don't die silently
        try:
            conn.send(("err", f"{type(exc).__name__}: {exc}"))
        except OSError:
            pass
    finally:
        stop_heartbeat()
        try:
            conn.close()
        except OSError:
            pass


# ----------------------------------------------------------------- outcomes


@dataclass
class AttemptRecord:
    """One observed attempt of one run (journaled by the campaign layer)."""

    attempt: int
    status: str  #: ok | crashed | timeout | hung | error
    detail: str = ""
    elapsed: float = 0.0
    backoff: float = 0.0  #: seconds slept before the *next* attempt


@dataclass
class RunOutcome:
    """Terminal state of one supervised run."""

    key: str
    status: str  #: ok | failed
    attempts: int
    payload: Optional[Dict] = None
    detail: str = ""
    history: List[AttemptRecord] = field(default_factory=list)
    sim_seconds: float = 0.0

    @property
    def ok(self) -> bool:
        return self.status == "ok"


@dataclass
class _Pending:
    key: str
    request: RunRequest
    attempt: int
    ready_at: float


@dataclass
class _Active:
    key: str
    request: RunRequest
    attempt: int
    process: object
    conn: object
    started: float
    last_beat: float


# --------------------------------------------------------------- supervisor


class WorkerSupervisor:
    """Run a batch of :class:`RunRequest` s under fault supervision.

    Parameters
    ----------
    workers:
        Maximum concurrently live child processes.
    timeout:
        Per-attempt wall-clock budget in seconds (``None`` = unlimited).
    heartbeat_interval:
        Cadence of child heartbeats; ``0`` disables hang detection.
    heartbeat_grace:
        A child silent for ``heartbeat_interval * heartbeat_grace`` seconds
        is declared hung and killed.
    retry:
        :class:`RetryPolicy`; defaults to 3 attempts with seeded backoff.
    faults:
        Optional callable ``(key, attempt) -> fault kind or None`` applied
        to each launch (:class:`ScriptedFaults` / :class:`SeededFaults`).
    on_event:
        Optional callback receiving progress dicts (``launch``, ``ok``,
        ``retry``, ``giveup``) — the campaign layer journals these and
        feeds the observability counters.
    """

    def __init__(
        self,
        workers: Optional[int] = None,
        timeout: Optional[float] = None,
        heartbeat_interval: float = 0.25,
        heartbeat_grace: float = 40.0,
        retry: Optional[RetryPolicy] = None,
        faults: Optional[Callable[[str, int], Optional[str]]] = None,
        on_event: Optional[Callable[[Dict], None]] = None,
        poll_interval: float = 0.02,
    ) -> None:
        from repro.harness.executor import _default_workers

        self.workers = (
            _default_workers() if workers is None else max(1, int(workers))
        )
        self.timeout = timeout
        self.heartbeat_interval = heartbeat_interval
        self.heartbeat_grace = heartbeat_grace
        self.retry = retry if retry is not None else RetryPolicy()
        self.faults = faults
        self.on_event = on_event
        self.poll_interval = poll_interval

    # ------------------------------------------------------------ plumbing

    def _emit(self, event: Dict) -> None:
        if self.on_event is not None:
            self.on_event(event)

    def _context(self):
        import multiprocessing

        try:
            return multiprocessing.get_context("fork")
        except ValueError:  # pragma: no cover - non-POSIX fallback
            return multiprocessing.get_context()

    def _launch(self, ctx, item: _Pending) -> _Active:
        import sys

        fault = self.faults(item.key, item.attempt) if self.faults else None
        parent_conn, child_conn = ctx.Pipe(duplex=False)
        process = ctx.Process(
            target=_worker_main,
            args=(
                child_conn,
                item.request,
                fault,
                self.heartbeat_interval,
                list(sys.path),
            ),
            daemon=True,
        )
        process.start()
        child_conn.close()
        now = time.monotonic()
        self._emit(
            {
                "event": "launch",
                "key": item.key,
                "attempt": item.attempt,
                "fault": fault,
            }
        )
        return _Active(
            key=item.key,
            request=item.request,
            attempt=item.attempt,
            process=process,
            conn=parent_conn,
            started=now,
            last_beat=now,
        )

    @staticmethod
    def _reap(active: _Active) -> None:
        """Kill (if needed) and join a child, closing its pipe."""
        process = active.process
        if process.is_alive():
            process.terminate()
            process.join(0.5)
        if process.is_alive():  # pragma: no cover - terminate was enough
            process.kill()
            process.join(0.5)
        try:
            active.conn.close()
        except OSError:
            pass

    # ------------------------------------------------------------ main loop

    def run(
        self, todo: List[Tuple[str, RunRequest]]
    ) -> Dict[str, RunOutcome]:
        """Supervise ``todo`` to terminal outcomes; returns key -> outcome.

        Never raises for worker-side faults: every run ends ``ok`` (with a
        canonical payload) or ``failed`` (with its attempt history), and
        the caller decides how to degrade.
        """
        from multiprocessing import connection as mp_connection

        ctx = self._context()
        outcomes: Dict[str, RunOutcome] = {}
        history: Dict[str, List[AttemptRecord]] = {key: [] for key, _ in todo}
        pending = deque(
            _Pending(key, request, 1, 0.0) for key, request in todo
        )

        active: Dict[int, _Active] = {}

        def finish_ok(run: _Active, payload: Dict, elapsed: float) -> None:
            history[run.key].append(
                AttemptRecord(run.attempt, "ok", elapsed=elapsed)
            )
            outcomes[run.key] = RunOutcome(
                key=run.key,
                status="ok",
                attempts=run.attempt,
                payload=payload,
                history=history[run.key],
                sim_seconds=elapsed,
            )
            self._emit(
                {
                    "event": "ok",
                    "key": run.key,
                    "attempt": run.attempt,
                    "elapsed": elapsed,
                }
            )

        def finish_failure(run: _Active, status: str, detail: str) -> None:
            elapsed = time.monotonic() - run.started
            record = AttemptRecord(run.attempt, status, detail, elapsed)
            history[run.key].append(record)
            if run.attempt >= self.retry.max_attempts:
                outcomes[run.key] = RunOutcome(
                    key=run.key,
                    status="failed",
                    attempts=run.attempt,
                    detail=f"{status}: {detail}" if detail else status,
                    history=history[run.key],
                )
                self._emit(
                    {
                        "event": "giveup",
                        "key": run.key,
                        "attempt": run.attempt,
                        "status": status,
                        "detail": detail,
                    }
                )
                return
            delay = self.retry.delay_seconds(run.key, run.attempt)
            record.backoff = delay
            pending.append(
                _Pending(
                    run.key,
                    run.request,
                    run.attempt + 1,
                    time.monotonic() + delay,
                )
            )
            self._emit(
                {
                    "event": "retry",
                    "key": run.key,
                    "attempt": run.attempt,
                    "status": status,
                    "detail": detail,
                    "backoff": delay,
                }
            )

        while pending or active:
            now = time.monotonic()

            # Launch every ready pending run into free slots.
            if pending and len(active) < self.workers:
                still_waiting = deque()
                while pending and len(active) < self.workers:
                    item = pending.popleft()
                    if item.ready_at > now:
                        still_waiting.append(item)
                        continue
                    run = self._launch(ctx, item)
                    active[run.process.pid] = run
                pending.extendleft(reversed(still_waiting))

            if not active:
                # Everything left is backing off; sleep until the earliest.
                wake = min(item.ready_at for item in pending)
                time.sleep(max(0.0, min(wake - now, 0.25)))
                continue

            # Wait for messages from any child (bounded poll so timeout and
            # heartbeat checks still run when everyone is silent).
            conns = {id(run.conn): run for run in active.values()}
            try:
                ready = mp_connection.wait(
                    [run.conn for run in active.values()],
                    timeout=self.poll_interval,
                )
            except OSError:  # pragma: no cover - racing child death
                ready = []

            finished: List[int] = []
            for conn in ready:
                run = conns[id(conn)]
                try:
                    message = conn.recv()
                except (EOFError, OSError):
                    # Pipe closed without a result: the child crashed.
                    run.process.join(0.5)
                    code = run.process.exitcode
                    self._reap(run)
                    finished.append(run.process.pid)
                    finish_failure(
                        run, "crashed", f"worker exited with code {code}"
                    )
                    continue
                kind = message[0]
                if kind == "hb":
                    run.last_beat = time.monotonic()
                elif kind == "ok":
                    self._reap(run)
                    finished.append(run.process.pid)
                    finish_ok(run, message[1], message[2])
                elif kind == "err":
                    self._reap(run)
                    finished.append(run.process.pid)
                    finish_failure(run, "error", message[1])
            for pid in finished:
                active.pop(pid, None)

            # Enforce wall-clock and heartbeat budgets on the survivors.
            now = time.monotonic()
            stalled: List[int] = []
            for pid, run in active.items():
                if not run.process.is_alive() and not run.conn.poll():
                    code = run.process.exitcode
                    self._reap(run)
                    stalled.append(pid)
                    finish_failure(
                        run, "crashed", f"worker exited with code {code}"
                    )
                    continue
                if (
                    self.timeout is not None
                    and now - run.started > self.timeout
                ):
                    self._reap(run)
                    stalled.append(pid)
                    finish_failure(
                        run,
                        "timeout",
                        f"exceeded {self.timeout:.1f}s wall-clock budget",
                    )
                    continue
                if (
                    self.heartbeat_interval > 0
                    and now - run.last_beat
                    > self.heartbeat_interval * self.heartbeat_grace
                ):
                    self._reap(run)
                    stalled.append(pid)
                    finish_failure(
                        run,
                        "hung",
                        "no heartbeat for "
                        f"{now - run.last_beat:.2f}s",
                    )
            for pid in stalled:
                active.pop(pid, None)

        return outcomes
