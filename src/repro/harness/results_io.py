"""Serialization of simulation results.

``result_to_dict`` / ``result_from_dict`` round-trip a
:class:`~repro.harness.runner.SimulationResult` through plain JSON types so
sweeps can be archived, diffed across commits, and re-rendered without
re-simulating. ``save_results`` / ``load_results`` handle files of many
results keyed by an experiment label.
"""

from __future__ import annotations

import json
from dataclasses import asdict
from pathlib import Path
from typing import Dict, List, Union

from repro.config.presets import protocol_config
from repro.energy.models import EnergyBreakdown
from repro.harness.ioutils import atomic_write_text
from repro.harness.runner import SimulationResult

_SCALAR_FIELDS = (
    "app",
    "cycles",
    "instructions",
    "memory_stall_cycles",
    "sync_stall_cycles",
    "load_latency_total",
    "store_latency_total",
    "read_misses",
    "write_misses",
    "wireless_writes",
    "collision_probability",
)


def result_to_dict(result: SimulationResult) -> dict:
    """Flatten a result into JSON-serializable types."""
    payload = {field: getattr(result, field) for field in _SCALAR_FIELDS}
    payload["config"] = {
        "num_cores": result.config.num_cores,
        "protocol": result.config.protocol,
        "max_wired_sharers": result.config.directory.max_wired_sharers,
        "seed": result.config.seed,
    }
    payload["sharer_histogram"] = dict(result.sharer_histogram)
    payload["hop_histogram"] = dict(result.hop_histogram)
    payload["energy"] = result.energy.as_dict()
    payload["stats_counters"] = dict(result.stats_counters)
    # Derived metrics recomputed on load; stored for human inspection only.
    payload["derived"] = {
        "mpki": result.mpki,
        "memory_stall_fraction": result.memory_stall_fraction,
    }
    return payload


def result_from_dict(payload: dict) -> SimulationResult:
    """Reconstruct a :class:`SimulationResult` saved by ``result_to_dict``."""
    config_info = payload["config"]
    config = protocol_config(
        config_info["protocol"],
        num_cores=config_info["num_cores"],
        max_wired_sharers=config_info["max_wired_sharers"],
        seed=config_info["seed"],
    )
    energy = EnergyBreakdown(**payload["energy"])
    return SimulationResult(
        app=payload["app"],
        config=config,
        cycles=payload["cycles"],
        instructions=payload["instructions"],
        memory_stall_cycles=payload["memory_stall_cycles"],
        sync_stall_cycles=payload["sync_stall_cycles"],
        load_latency_total=payload["load_latency_total"],
        store_latency_total=payload["store_latency_total"],
        read_misses=payload["read_misses"],
        write_misses=payload["write_misses"],
        wireless_writes=payload["wireless_writes"],
        sharer_histogram=dict(payload["sharer_histogram"]),
        hop_histogram=dict(payload["hop_histogram"]),
        collision_probability=payload["collision_probability"],
        energy=energy,
        stats_counters=dict(payload["stats_counters"]),
    )


def save_results(
    results: Dict[str, SimulationResult], path: Union[str, Path]
) -> None:
    """Write a label -> result mapping as pretty-printed JSON.

    The write is atomic (tmp + fsync + rename, see
    :mod:`repro.harness.ioutils`): a crash mid-save leaves the previous
    archive intact instead of a torn file.
    """
    payload = {label: result_to_dict(result) for label, result in results.items()}
    atomic_write_text(path, json.dumps(payload, indent=2, sort_keys=True))


def load_results(path: Union[str, Path]) -> Dict[str, SimulationResult]:
    """Load a file written by :func:`save_results`."""
    payload = json.loads(Path(path).read_text())
    return {label: result_from_dict(entry) for label, entry in payload.items()}
