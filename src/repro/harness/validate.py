"""Cross-validation of simulation results against analytical models.

A measured result wildly off the closed-form curve usually means a workload
or MAC modelling bug, not an interesting finding. ``validate_result`` runs
the cheap checks and returns human-readable findings; the test suite runs
it over representative simulations, and users can call it on their own
sweeps.
"""

from __future__ import annotations

from typing import List, NamedTuple

from repro.harness.runner import SimulationResult
from repro.wireless.analysis import estimate_channel


class Finding(NamedTuple):
    severity: str   # "info" | "warn"
    message: str


def validate_result(result: SimulationResult) -> List[Finding]:
    """Sanity-check one run's statistics for internal consistency."""
    findings: List[Finding] = []
    counters = result.stats_counters

    # --- basic accounting identities -----------------------------------
    accesses = counters.get("l1.total.accesses", 0)
    if result.misses > accesses:
        findings.append(
            Finding("warn", f"misses ({result.misses}) exceed accesses ({accesses})")
        )
    total_cycles = result.cycles * result.config.num_cores
    if result.total_stall_cycles > total_cycles:
        findings.append(
            Finding(
                "warn",
                "stall cycles exceed total machine cycles "
                f"({result.total_stall_cycles} > {total_cycles})",
            )
        )

    # --- wireless consistency -------------------------------------------
    if result.config.uses_wireless:
        frames = counters.get("wnoc.frames", 0)
        attempts = counters.get("wnoc.attempts", 0)
        if frames > attempts:
            findings.append(
                Finding("warn", f"delivered frames ({frames}) exceed attempts")
            )
        if result.cycles > 0 and frames > 0:
            offered = frames / result.cycles
            estimate = estimate_channel(result.config.wireless, offered)
            if estimate.utilization > 1.0:
                findings.append(
                    Finding(
                        "warn",
                        f"measured wireless throughput {offered:.4f}/cycle "
                        f"exceeds channel capacity {estimate.capacity:.4f}",
                    )
                )
            # The measured collision rate should not be dramatically *below*
            # the load-implied floor (that would mean collisions are being
            # under-counted), nor absurdly high at negligible load.
            if offered < 0.01 and result.collision_probability > 0.98:
                findings.append(
                    Finding(
                        "warn",
                        "near-total collisions at negligible load: "
                        f"p={result.collision_probability:.2f} at "
                        f"{offered:.4f} frames/cycle",
                    )
                )
            findings.append(
                Finding(
                    "info",
                    f"wireless: offered {offered:.4f}/cyc "
                    f"(utilization {estimate.utilization:.1%}), measured "
                    f"collision p {result.collision_probability:.1%}, "
                    f"analytic {estimate.collision_probability:.1%}",
                )
            )
    else:
        if result.wireless_writes:
            findings.append(
                Finding("warn", "baseline machine reports wireless writes")
            )

    # --- histogram totals -------------------------------------------------
    hist_total = sum(result.sharer_histogram.values())
    if hist_total and not result.config.uses_wireless:
        findings.append(
            Finding("warn", "baseline machine recorded a sharer histogram")
        )
    if result.config.uses_wireless and result.wireless_writes:
        # Every wireless data write lands one histogram sample at the home.
        if hist_total == 0:
            findings.append(
                Finding(
                    "warn",
                    f"{result.wireless_writes} wireless writes but an empty "
                    "sharers-per-update histogram",
                )
            )
    return findings


def warnings_only(findings: List[Finding]) -> List[Finding]:
    """Filter to actionable findings."""
    return [finding for finding in findings if finding.severity == "warn"]
