"""Per-figure / per-table experiment functions.

Each function regenerates one artifact of the paper's evaluation section and
returns a structured result plus a rendered text table (``.text``) printing
the same rows/series the paper plots. The benchmark suite under
``benchmarks/`` calls exactly these functions.

Execution model: every figure *declares* its run matrix as an
:class:`~repro.harness.executor.ExperimentPlan` and hands it to an
:class:`~repro.harness.executor.Executor`, which deduplicates identical
``(app, config, memops, trace_seed)`` requests, satisfies repeats from the
on-disk memo cache, and fans unique simulations out over worker processes.
Row values are computed from the executor's canonicalized results, so a
figure renders byte-identically whether its runs were simulated serially,
in parallel, or recalled from cache. Pass ``executor=`` to control workers
and caching explicitly; the default is the process-wide executor
(``REPRO_WORKERS`` / ``REPRO_CACHE_DIR`` aware).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.config.presets import baseline_config, widir_config
from repro.harness.executor import Executor, ExperimentPlan, default_executor
from repro.harness.runner import SimulationResult
from repro.stats.report import format_table
from repro.workloads.profiles import ALL_APPS

#: Modest default app subset for quick runs; pass apps=ALL_APPS for the
#: full paper set.
DEFAULT_APPS: Tuple[str, ...] = ALL_APPS


class FigureResult:
    """A computed figure: structured rows plus a rendered table.

    ``missing`` lists the grid points that could not be rendered because
    their runs were unavailable (a degraded campaign serving partial
    results through a
    :class:`~repro.harness.campaign.CampaignResultSource`); a plain
    :class:`Executor` always simulates, so it is empty in direct use. When
    non-empty the rendered table carries an explicit partial-output note
    and ``partial`` is True — figures degrade, they never abort.
    """

    def __init__(
        self,
        name: str,
        headers: Sequence[str],
        rows: List[Sequence],
        text: str,
        missing: Optional[Sequence[str]] = None,
    ):
        self.name = name
        self.headers = list(headers)
        self.rows = rows
        self.missing = list(missing or [])
        self.text = _with_partial_note(text, self.missing)

    @property
    def partial(self) -> bool:
        return bool(self.missing)

    def __str__(self) -> str:  # pragma: no cover - convenience
        return self.text


def _with_partial_note(text: str, missing: Sequence[str]) -> str:
    if not missing:
        return text
    return (
        f"{text}\n(PARTIAL: {len(missing)} grid point(s) missing — "
        f"{', '.join(missing)}; see the campaign provenance manifest)"
    )


def _apps_or_default(apps: Optional[Iterable[str]]) -> Tuple[str, ...]:
    return tuple(apps) if apps is not None else DEFAULT_APPS


def _exe(executor: Optional[Executor]) -> Executor:
    return executor if executor is not None else default_executor()


def _geomean(values: List[float]) -> float:
    positives = [v for v in values if v > 0]
    if not positives:
        return 0.0
    product = 1.0
    for value in positives:
        product *= value
    return product ** (1.0 / len(positives))


def _pairs(
    apps: Sequence[str],
    num_cores: int,
    memops: Optional[int],
    executor: Executor,
) -> Tuple[List[Tuple[str, SimulationResult, SimulationResult]], List[str]]:
    """One Baseline/WiDir pair per app, declared as a single plan.

    Returns ``(pairs, missing_apps)``: apps whose baseline or WiDir run the
    executor could not serve (``None`` from a partial campaign source) are
    reported rather than crashed on.
    """
    plan = ExperimentPlan()
    indices = [
        (app, plan.add_pair(app, num_cores=num_cores, memops=memops))
        for app in apps
    ]
    results = executor.map_runs(plan)
    pairs = []
    missing = []
    for app, (b, w) in indices:
        if results[b] is None or results[w] is None:
            missing.append(app)
        else:
            pairs.append((app, results[b], results[w]))
    return pairs, missing


# --------------------------------------------------------------- Table IV

def table4_mpki_characterization(
    apps: Optional[Iterable[str]] = None,
    num_cores: int = 64,
    memops: Optional[int] = None,
    executor: Optional[Executor] = None,
) -> FigureResult:
    """Table IV: per-application Baseline L1 MPKI."""
    apps = _apps_or_default(apps)
    plan = ExperimentPlan()
    for app in apps:
        plan.add(app, baseline_config(num_cores=num_cores), memops)
    results = _exe(executor).map_runs(plan)
    missing = [app for app, result in zip(apps, results) if result is None]
    rows = [
        [app, result.mpki]
        for app, result in zip(apps, results)
        if result is not None
    ]
    text = format_table(
        ["app", "baseline MPKI"], rows, title="Table IV: L1 MPKI in Baseline"
    )
    return FigureResult("table4", ["app", "mpki"], rows, text, missing=missing)


# --------------------------------------------------------------- Figure 5

def figure5_sharer_histogram(
    apps: Optional[Iterable[str]] = None,
    num_cores: int = 64,
    memops: Optional[int] = None,
    executor: Optional[Executor] = None,
) -> FigureResult:
    """Figure 5: sharers updated per wireless write, binned."""
    bins = ["0-5", "6-10", "11-25", "26-49", "50+"]
    apps = _apps_or_default(apps)
    plan = ExperimentPlan()
    for app in apps:
        plan.add(app, widir_config(num_cores=num_cores), memops)
    results = _exe(executor).map_runs(plan)
    missing = [app for app, result in zip(apps, results) if result is None]
    rows = []
    for app, result in zip(apps, results):
        if result is None:
            continue
        total = sum(result.sharer_histogram.values())
        fractions = [
            (result.sharer_histogram.get(b, 0) / total if total else 0.0)
            for b in bins
        ]
        rows.append([app] + fractions)
    text = format_table(
        ["app"] + [f"{b} sharers" for b in bins],
        rows,
        title="Figure 5: sharers updated per wireless write (fraction of writes)",
    )
    return FigureResult("fig5", ["app"] + bins, rows, text, missing=missing)


# --------------------------------------------------------------- Figure 6

def figure6_mpki(
    apps: Optional[Iterable[str]] = None,
    num_cores: int = 64,
    memops: Optional[int] = None,
    executor: Optional[Executor] = None,
) -> FigureResult:
    """Figure 6: MPKI of WiDir vs Baseline, read/write split, normalized."""
    rows = []
    ratios = []
    pairs, missing = _pairs(
        _apps_or_default(apps), num_cores, memops, _exe(executor)
    )
    for app, base, widir in pairs:
        reference = base.mpki or 1.0
        ratio = widir.mpki / reference if base.mpki else 1.0
        ratios.append(ratio)
        rows.append(
            [
                app,
                base.read_mpki / reference,
                base.write_mpki / reference,
                widir.read_mpki / reference,
                widir.write_mpki / reference,
                ratio,
            ]
        )
    rows.append(["geomean", "", "", "", "", _geomean(ratios)])
    text = format_table(
        ["app", "base rd", "base wr", "widir rd", "widir wr", "widir/base"],
        rows,
        title="Figure 6: L1 MPKI normalized to Baseline",
    )
    return FigureResult("fig6", ["app", "ratio"], rows, text, missing=missing)


# --------------------------------------------------------------- Figure 7

def figure7_memory_latency(
    apps: Optional[Iterable[str]] = None,
    num_cores: int = 64,
    memops: Optional[int] = None,
    executor: Optional[Executor] = None,
) -> FigureResult:
    """Figure 7: total memory-operation latency, load/store split, normalized."""
    rows = []
    ratios = []
    pairs, missing = _pairs(
        _apps_or_default(apps), num_cores, memops, _exe(executor)
    )
    for app, base, widir in pairs:
        reference = base.total_memory_latency or 1
        ratio = widir.total_memory_latency / reference
        ratios.append(ratio)
        rows.append(
            [
                app,
                base.load_latency_total / reference,
                base.store_latency_total / reference,
                widir.load_latency_total / reference,
                widir.store_latency_total / reference,
                ratio,
            ]
        )
    rows.append(["geomean", "", "", "", "", _geomean(ratios)])
    text = format_table(
        ["app", "base ld", "base st", "widir ld", "widir st", "widir/base"],
        rows,
        title="Figure 7: memory latency normalized to Baseline",
    )
    return FigureResult("fig7", ["app", "ratio"], rows, text, missing=missing)


# ---------------------------------------------------------------- Table V

def table5_hop_distribution(
    apps: Optional[Iterable[str]] = None,
    num_cores: int = 64,
    memops: Optional[int] = None,
    executor: Optional[Executor] = None,
) -> FigureResult:
    """Table V: wired hops per coherence leg in the 64-core Baseline."""
    bins = ["0-2", "3-5", "6-8", "9-11", "12+"]
    apps = _apps_or_default(apps)
    plan = ExperimentPlan()
    for app in apps:
        plan.add(app, baseline_config(num_cores=num_cores), memops)
    results = _exe(executor).map_runs(plan)
    missing = [app for app, result in zip(apps, results) if result is None]
    totals = {b: 0 for b in bins}
    for result in results:
        if result is None:
            continue
        for b in bins:
            totals[b] += result.hop_histogram.get(b, 0)
    grand = sum(totals.values()) or 1
    rows = [[b, totals[b] / grand] for b in bins]
    text = format_table(
        ["hops per leg", "fraction of messages"],
        rows,
        title="Table V: wired-mesh hop distribution (Baseline, 64 cores)",
    )
    return FigureResult("table5", ["bin", "fraction"], rows, text, missing=missing)


# --------------------------------------------------------------- Figure 8

def figure8_execution_time(
    apps: Optional[Iterable[str]] = None,
    core_counts: Sequence[int] = (64, 32, 16),
    memops: Optional[int] = None,
    executor: Optional[Executor] = None,
) -> Dict[int, FigureResult]:
    """Figure 8: normalized execution time with stall/rest breakdown."""
    apps = _apps_or_default(apps)
    exe = _exe(executor)
    # One plan spanning every machine size: repeats against fig6/fig7 (and
    # between panels) collapse in the executor instead of re-simulating.
    plan = ExperimentPlan()
    indices = {
        (cores, app): plan.add_pair(app, num_cores=cores, memops=memops)
        for cores in core_counts
        for app in apps
    }
    all_results = exe.map_runs(plan)
    results: Dict[int, FigureResult] = {}
    for cores in core_counts:
        rows = []
        ratios = []
        missing = []
        for app in apps:
            b, w = indices[(cores, app)]
            base, widir = all_results[b], all_results[w]
            if base is None or widir is None:
                missing.append(f"{app}@{cores}c")
                continue
            reference = base.cycles or 1
            ratio = widir.cycles / reference
            ratios.append(ratio)
            base_total = max(1, base.cycles * cores)
            widir_total = max(1, widir.cycles * cores)
            # Paper-style stacked bars, normalized to the Baseline bar:
            # each protocol's bar = (memory-stall portion, rest portion).
            base_stall = base.total_stall_cycles / base_total
            widir_stall = ratio * (widir.total_stall_cycles / widir_total)
            rows.append(
                [
                    app,
                    base_stall,
                    1.0 - base_stall,
                    widir_stall,
                    max(0.0, ratio - widir_stall),
                    ratio,
                ]
            )
        rows.append(["geomean", "", "", "", "", _geomean(ratios)])
        text = format_table(
            [
                "app",
                "base stall",
                "base rest",
                "widir stall",
                "widir rest",
                "widir/base",
            ],
            rows,
            title=f"Figure 8 ({cores} cores): execution time normalized to Baseline",
        )
        results[cores] = FigureResult(
            f"fig8_{cores}", ["app", "ratio"], rows, text, missing=missing
        )
    return results


# --------------------------------------------------------------- Figure 9

def figure9_energy(
    apps: Optional[Iterable[str]] = None,
    num_cores: int = 64,
    memops: Optional[int] = None,
    executor: Optional[Executor] = None,
) -> FigureResult:
    """Figure 9: energy by component, normalized to Baseline."""
    rows = []
    ratios = []
    wnoc_shares = []
    pairs, missing = _pairs(
        _apps_or_default(apps), num_cores, memops, _exe(executor)
    )
    for app, base, widir in pairs:
        reference = base.energy.total or 1.0
        ratio = widir.energy.total / reference
        ratios.append(ratio)
        wnoc_shares.append(
            widir.energy.wnoc / widir.energy.total if widir.energy.total else 0.0
        )
        widir_shares = {
            k: v / reference for k, v in widir.energy.as_dict().items()
        }
        base_shares = base.energy.shares()
        rows.append(
            [
                app,
                base_shares["core"],
                base_shares["l1"],
                base_shares["l2_dir"],
                base_shares["noc"],
                ratio,
                widir_shares["wnoc"],
            ]
        )
    rows.append(["geomean", "", "", "", "", _geomean(ratios), ""])
    text = format_table(
        ["app", "b.core", "b.l1", "b.l2+dir", "b.noc", "widir/base", "widir wnoc"],
        rows,
        title="Figure 9: energy normalized to Baseline",
    )
    result = FigureResult("fig9", ["app", "ratio"], rows, text, missing=missing)
    result.mean_wnoc_share = (
        sum(wnoc_shares) / len(wnoc_shares) if wnoc_shares else 0.0
    )
    return result


# -------------------------------------------------------------- Figure 10

def figure10_scalability(
    apps: Optional[Iterable[str]] = None,
    core_counts: Sequence[int] = (4, 8, 16, 32, 64),
    memops: Optional[int] = None,
    executor: Optional[Executor] = None,
) -> FigureResult:
    """Figure 10: speedup vs the 4-core Baseline for both protocols.

    Strong scaling, as in the paper: the *total* problem size is fixed, so
    a machine with 2x the cores runs half the references per core.
    """
    from repro.harness.runner import DEFAULT_MEMOPS

    apps = _apps_or_default(apps)
    base_memops = memops if memops is not None else DEFAULT_MEMOPS
    largest = max(core_counts)

    def per_core_work(cores: int) -> int:
        # Fixed total work: the largest machine runs ``base_memops`` per
        # core; smaller machines run proportionally more per core.
        return max(150, base_memops * largest // cores)

    smallest = core_counts[0]
    plan = ExperimentPlan()
    # The per-app reference machine is the smallest Baseline; it coincides
    # with the smallest sweep point, so the executor runs it exactly once.
    reference_idx = {
        app: plan.add(
            app, baseline_config(num_cores=smallest), per_core_work(smallest)
        )
        for app in apps
    }
    pair_idx = {
        (cores, app): plan.add_pair(app, num_cores=cores, memops=per_core_work(cores))
        for cores in core_counts
        for app in apps
    }
    all_results = _exe(executor).map_runs(plan)

    base_times: Dict[int, List[float]] = {c: [] for c in core_counts}
    widir_times: Dict[int, List[float]] = {c: [] for c in core_counts}
    missing = []
    reference = {
        app: all_results[i].cycles
        for app, i in reference_idx.items()
        if all_results[i] is not None
    }
    for cores in core_counts:
        for app in apps:
            b, w = pair_idx[(cores, app)]
            if (
                app not in reference
                or all_results[b] is None
                or all_results[w] is None
            ):
                missing.append(f"{app}@{cores}c")
                continue
            base_times[cores].append(reference[app] / max(1, all_results[b].cycles))
            widir_times[cores].append(reference[app] / max(1, all_results[w].cycles))
    rows = []
    for cores in core_counts:
        rows.append(
            [
                cores,
                _geomean(base_times[cores]),
                _geomean(widir_times[cores]),
            ]
        )
    text = format_table(
        ["cores", "Baseline speedup", "WiDir speedup"],
        rows,
        title="Figure 10: average speedup over 4-core Baseline",
    )
    return FigureResult(
        "fig10", ["cores", "base", "widir"], rows, text, missing=missing
    )


# ---------------------------------------------------------------- Table VI

def table6_sensitivity(
    apps: Optional[Iterable[str]] = None,
    thresholds: Sequence[int] = (2, 3, 4, 5),
    num_cores: int = 64,
    memops: Optional[int] = None,
    executor: Optional[Executor] = None,
) -> FigureResult:
    """Table VI: MaxWiredSharers sweep — speedup and collision probability."""
    apps = _apps_or_default(apps)
    plan = ExperimentPlan()
    base_idx = {
        app: plan.add(app, baseline_config(num_cores=num_cores), memops)
        for app in apps
    }
    widir_idx = {
        (threshold, app): plan.add(
            app,
            widir_config(num_cores=num_cores, max_wired_sharers=threshold),
            memops,
        )
        for threshold in thresholds
        for app in apps
    }
    all_results = _exe(executor).map_runs(plan)
    base_cycles = {
        app: all_results[i].cycles
        for app, i in base_idx.items()
        if all_results[i] is not None
    }
    missing = [
        app for app, i in base_idx.items() if all_results[i] is None
    ]
    rows = []
    for threshold in thresholds:
        speedups = []
        collisions = []
        for app in apps:
            widir = all_results[widir_idx[(threshold, app)]]
            if widir is None or app not in base_cycles:
                point = f"{app}@t{threshold}"
                if widir is None and point not in missing:
                    missing.append(point)
                continue
            speedups.append(base_cycles[app] / max(1, widir.cycles))
            collisions.append(widir.collision_probability)
        rows.append(
            [
                threshold,
                _geomean(speedups),
                sum(collisions) / len(collisions) if collisions else 0.0,
            ]
        )
    text = format_table(
        ["MaxWiredSharers", "speedup vs Baseline", "collision prob."],
        rows,
        title="Table VI: MaxWiredSharers sensitivity (64 cores)",
    )
    return FigureResult(
        "table6", ["threshold", "speedup", "collisions"], rows, text,
        missing=missing,
    )


# ------------------------------------------------- protocol comparison

def figure_protocol_comparison(
    apps: Optional[Iterable[str]] = None,
    num_cores: int = 16,
    memops: Optional[int] = None,
    executor: Optional[Executor] = None,
    seed: int = 42,
    protocols: Optional[Sequence[str]] = None,
) -> FigureResult:
    """Cross-protocol comparison: every registered backend on one grid.

    One column per backend (default: all of
    :func:`repro.coherence.backend.backend_names`), cycles normalized to
    the first protocol in the list, plus a geomean row. Renders from a
    ``kind="protocols"`` campaign that declared the same ``protocols``
    tuple, or simulates directly.
    """
    from repro.coherence.backend import backend_names
    from repro.config.presets import protocol_config

    names = tuple(protocols) if protocols else backend_names()
    apps = _apps_or_default(apps)
    plan = ExperimentPlan()
    indices = {
        (app, name): plan.add(
            app,
            protocol_config(name, num_cores=num_cores, seed=seed),
            memops,
        )
        for app in apps
        for name in names
    }
    all_results = _exe(executor).map_runs(plan)
    reference_name = names[0]
    rows = []
    ratios: Dict[str, List[float]] = {name: [] for name in names}
    missing = []
    for app in apps:
        reference = all_results[indices[(app, reference_name)]]
        if reference is None:
            missing.append(f"{app}/{reference_name}")
            continue
        row = [app]
        for name in names:
            result = all_results[indices[(app, name)]]
            if result is None:
                missing.append(f"{app}/{name}")
                row.append(float("nan"))
                continue
            ratio = result.cycles / max(1, reference.cycles)
            ratios[name].append(ratio)
            row.append(ratio)
        rows.append(row)
    rows.append(
        ["geomean"] + [_geomean(ratios[name]) for name in names]
    )
    text = format_table(
        ["app"] + [f"{name} cycles" for name in names],
        rows,
        title=(
            f"Protocol comparison ({num_cores} cores): cycles normalized "
            f"to {reference_name}"
        ),
    )
    return FigureResult(
        "protocols", ["app"] + list(names), rows, text, missing=missing
    )


# ------------------------------------------------------ MAC comparison

def figure_mac_comparison(
    apps: Optional[Iterable[str]] = None,
    num_cores: int = 16,
    memops: Optional[int] = None,
    executor: Optional[Executor] = None,
    seed: int = 42,
    protocols: Optional[Sequence[str]] = None,
    macs: Optional[Sequence[str]] = None,
) -> FigureResult:
    """Cross-MAC comparison: every wireless MAC backend on one grid.

    One column per MAC (default: all of
    :func:`repro.wireless.mac.mac_names`), one row per app x wireless
    protocol (wired protocols have no MAC dimension and are skipped),
    cycles normalized to the first MAC in the list. Renders from a
    campaign that declared the same ``macs`` tuple, or simulates
    directly.
    """
    from dataclasses import replace

    from repro.coherence.backend import backend_names, get_backend
    from repro.config.presets import protocol_config
    from repro.wireless.mac import mac_names

    mac_list = tuple(macs) if macs else mac_names()
    wireless = tuple(
        name
        for name in (tuple(protocols) if protocols else backend_names())
        if get_backend(name).uses_wireless
    )
    if not wireless:
        raise ValueError("no wireless protocol in the requested set")
    apps = _apps_or_default(apps)
    plan = ExperimentPlan()
    indices = {}
    for app in apps:
        for protocol in wireless:
            base = protocol_config(protocol, num_cores=num_cores, seed=seed)
            for mac in mac_list:
                config = base if mac == base.mac else replace(base, mac=mac)
                indices[(app, protocol, mac)] = plan.add(app, config, memops)
    all_results = _exe(executor).map_runs(plan)
    reference_mac = mac_list[0]
    rows = []
    ratios: Dict[str, List[float]] = {mac: [] for mac in mac_list}
    missing = []
    for app in apps:
        for protocol in wireless:
            label = f"{app}/{protocol}" if len(wireless) > 1 else app
            reference = all_results[indices[(app, protocol, reference_mac)]]
            if reference is None:
                missing.append(f"{label}/{reference_mac}")
                continue
            row = [label]
            for mac in mac_list:
                result = all_results[indices[(app, protocol, mac)]]
                if result is None:
                    missing.append(f"{label}/{mac}")
                    row.append(float("nan"))
                    continue
                ratio = result.cycles / max(1, reference.cycles)
                ratios[mac].append(ratio)
                row.append(ratio)
            rows.append(row)
    rows.append(["geomean"] + [_geomean(ratios[mac]) for mac in mac_list])
    text = format_table(
        ["app"] + [f"{mac} cycles" for mac in mac_list],
        rows,
        title=(
            f"MAC comparison ({num_cores} cores, "
            f"{'/'.join(wireless)}): cycles normalized to {reference_mac}"
        ),
    )
    return FigureResult(
        "macs", ["app"] + list(mac_list), rows, text, missing=missing
    )
