"""Per-figure / per-table experiment functions.

Each function regenerates one artifact of the paper's evaluation section and
returns a structured result plus a rendered text table (``.text``) printing
the same rows/series the paper plots. The benchmark suite under
``benchmarks/`` calls exactly these functions.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.config.presets import baseline_config, widir_config
from repro.harness.runner import SimulationResult, run_app, run_pair
from repro.stats.report import format_table
from repro.workloads.profiles import ALL_APPS

#: Modest default app subset for quick runs; pass apps=ALL_APPS for the
#: full paper set.
DEFAULT_APPS: Tuple[str, ...] = ALL_APPS


class FigureResult:
    """A computed figure: structured rows plus a rendered table."""

    def __init__(self, name: str, headers: Sequence[str], rows: List[Sequence], text: str):
        self.name = name
        self.headers = list(headers)
        self.rows = rows
        self.text = text

    def __str__(self) -> str:  # pragma: no cover - convenience
        return self.text


def _apps_or_default(apps: Optional[Iterable[str]]) -> Tuple[str, ...]:
    return tuple(apps) if apps is not None else DEFAULT_APPS


def _geomean(values: List[float]) -> float:
    positives = [v for v in values if v > 0]
    if not positives:
        return 0.0
    product = 1.0
    for value in positives:
        product *= value
    return product ** (1.0 / len(positives))


# --------------------------------------------------------------- Table IV

def table4_mpki_characterization(
    apps: Optional[Iterable[str]] = None,
    num_cores: int = 64,
    memops: Optional[int] = None,
) -> FigureResult:
    """Table IV: per-application Baseline L1 MPKI."""
    rows = []
    for app in _apps_or_default(apps):
        result = run_app(app, baseline_config(num_cores=num_cores), memops)
        rows.append([app, result.mpki])
    text = format_table(
        ["app", "baseline MPKI"], rows, title="Table IV: L1 MPKI in Baseline"
    )
    return FigureResult("table4", ["app", "mpki"], rows, text)


# --------------------------------------------------------------- Figure 5

def figure5_sharer_histogram(
    apps: Optional[Iterable[str]] = None,
    num_cores: int = 64,
    memops: Optional[int] = None,
) -> FigureResult:
    """Figure 5: sharers updated per wireless write, binned."""
    bins = ["0-5", "6-10", "11-25", "26-49", "50+"]
    rows = []
    for app in _apps_or_default(apps):
        result = run_app(app, widir_config(num_cores=num_cores), memops)
        total = sum(result.sharer_histogram.values())
        fractions = [
            (result.sharer_histogram.get(b, 0) / total if total else 0.0)
            for b in bins
        ]
        rows.append([app] + fractions)
    text = format_table(
        ["app"] + [f"{b} sharers" for b in bins],
        rows,
        title="Figure 5: sharers updated per wireless write (fraction of writes)",
    )
    return FigureResult("fig5", ["app"] + bins, rows, text)


# --------------------------------------------------------------- Figure 6

def figure6_mpki(
    apps: Optional[Iterable[str]] = None,
    num_cores: int = 64,
    memops: Optional[int] = None,
) -> FigureResult:
    """Figure 6: MPKI of WiDir vs Baseline, read/write split, normalized."""
    rows = []
    ratios = []
    for app in _apps_or_default(apps):
        base, widir = run_pair(app, num_cores, memops)
        reference = base.mpki or 1.0
        ratio = widir.mpki / reference if base.mpki else 1.0
        ratios.append(ratio)
        rows.append(
            [
                app,
                base.read_mpki / reference,
                base.write_mpki / reference,
                widir.read_mpki / reference,
                widir.write_mpki / reference,
                ratio,
            ]
        )
    rows.append(["geomean", "", "", "", "", _geomean(ratios)])
    text = format_table(
        ["app", "base rd", "base wr", "widir rd", "widir wr", "widir/base"],
        rows,
        title="Figure 6: L1 MPKI normalized to Baseline",
    )
    return FigureResult("fig6", ["app", "ratio"], rows, text)


# --------------------------------------------------------------- Figure 7

def figure7_memory_latency(
    apps: Optional[Iterable[str]] = None,
    num_cores: int = 64,
    memops: Optional[int] = None,
) -> FigureResult:
    """Figure 7: total memory-operation latency, load/store split, normalized."""
    rows = []
    ratios = []
    for app in _apps_or_default(apps):
        base, widir = run_pair(app, num_cores, memops)
        reference = base.total_memory_latency or 1
        ratio = widir.total_memory_latency / reference
        ratios.append(ratio)
        rows.append(
            [
                app,
                base.load_latency_total / reference,
                base.store_latency_total / reference,
                widir.load_latency_total / reference,
                widir.store_latency_total / reference,
                ratio,
            ]
        )
    rows.append(["geomean", "", "", "", "", _geomean(ratios)])
    text = format_table(
        ["app", "base ld", "base st", "widir ld", "widir st", "widir/base"],
        rows,
        title="Figure 7: memory latency normalized to Baseline",
    )
    return FigureResult("fig7", ["app", "ratio"], rows, text)


# ---------------------------------------------------------------- Table V

def table5_hop_distribution(
    apps: Optional[Iterable[str]] = None,
    num_cores: int = 64,
    memops: Optional[int] = None,
) -> FigureResult:
    """Table V: wired hops per coherence leg in the 64-core Baseline."""
    bins = ["0-2", "3-5", "6-8", "9-11", "12+"]
    totals = {b: 0 for b in bins}
    for app in _apps_or_default(apps):
        result = run_app(app, baseline_config(num_cores=num_cores), memops)
        for b in bins:
            totals[b] += result.hop_histogram.get(b, 0)
    grand = sum(totals.values()) or 1
    rows = [[b, totals[b] / grand] for b in bins]
    text = format_table(
        ["hops per leg", "fraction of messages"],
        rows,
        title="Table V: wired-mesh hop distribution (Baseline, 64 cores)",
    )
    return FigureResult("table5", ["bin", "fraction"], rows, text)


# --------------------------------------------------------------- Figure 8

def figure8_execution_time(
    apps: Optional[Iterable[str]] = None,
    core_counts: Sequence[int] = (64, 32, 16),
    memops: Optional[int] = None,
) -> Dict[int, FigureResult]:
    """Figure 8: normalized execution time with stall/rest breakdown."""
    results: Dict[int, FigureResult] = {}
    for cores in core_counts:
        rows = []
        ratios = []
        for app in _apps_or_default(apps):
            base, widir = run_pair(app, cores, memops)
            reference = base.cycles or 1
            ratio = widir.cycles / reference
            ratios.append(ratio)
            base_total = max(1, base.cycles * cores)
            widir_total = max(1, widir.cycles * cores)
            # Paper-style stacked bars, normalized to the Baseline bar:
            # each protocol's bar = (memory-stall portion, rest portion).
            base_stall = base.total_stall_cycles / base_total
            widir_stall = ratio * (widir.total_stall_cycles / widir_total)
            rows.append(
                [
                    app,
                    base_stall,
                    1.0 - base_stall,
                    widir_stall,
                    max(0.0, ratio - widir_stall),
                    ratio,
                ]
            )
        rows.append(["geomean", "", "", "", "", _geomean(ratios)])
        text = format_table(
            [
                "app",
                "base stall",
                "base rest",
                "widir stall",
                "widir rest",
                "widir/base",
            ],
            rows,
            title=f"Figure 8 ({cores} cores): execution time normalized to Baseline",
        )
        results[cores] = FigureResult(f"fig8_{cores}", ["app", "ratio"], rows, text)
    return results


# --------------------------------------------------------------- Figure 9

def figure9_energy(
    apps: Optional[Iterable[str]] = None,
    num_cores: int = 64,
    memops: Optional[int] = None,
) -> FigureResult:
    """Figure 9: energy by component, normalized to Baseline."""
    rows = []
    ratios = []
    wnoc_shares = []
    for app in _apps_or_default(apps):
        base, widir = run_pair(app, num_cores, memops)
        reference = base.energy.total or 1.0
        ratio = widir.energy.total / reference
        ratios.append(ratio)
        wnoc_shares.append(
            widir.energy.wnoc / widir.energy.total if widir.energy.total else 0.0
        )
        widir_shares = {
            k: v / reference for k, v in widir.energy.as_dict().items()
        }
        base_shares = base.energy.shares()
        rows.append(
            [
                app,
                base_shares["core"],
                base_shares["l1"],
                base_shares["l2_dir"],
                base_shares["noc"],
                ratio,
                widir_shares["wnoc"],
            ]
        )
    rows.append(["geomean", "", "", "", "", _geomean(ratios), ""])
    text = format_table(
        ["app", "b.core", "b.l1", "b.l2+dir", "b.noc", "widir/base", "widir wnoc"],
        rows,
        title="Figure 9: energy normalized to Baseline",
    )
    result = FigureResult("fig9", ["app", "ratio"], rows, text)
    result.mean_wnoc_share = (
        sum(wnoc_shares) / len(wnoc_shares) if wnoc_shares else 0.0
    )
    return result


# -------------------------------------------------------------- Figure 10

def figure10_scalability(
    apps: Optional[Iterable[str]] = None,
    core_counts: Sequence[int] = (4, 8, 16, 32, 64),
    memops: Optional[int] = None,
) -> FigureResult:
    """Figure 10: speedup vs the 4-core Baseline for both protocols.

    Strong scaling, as in the paper: the *total* problem size is fixed, so
    a machine with 2x the cores runs half the references per core.
    """
    from repro.harness.runner import DEFAULT_MEMOPS

    apps = _apps_or_default(apps)
    base_memops = memops if memops is not None else DEFAULT_MEMOPS
    largest = max(core_counts)

    def per_core_work(cores: int) -> int:
        # Fixed total work: the largest machine runs ``base_memops`` per
        # core; smaller machines run proportionally more per core.
        return max(150, base_memops * largest // cores)

    base_times: Dict[int, List[float]] = {c: [] for c in core_counts}
    widir_times: Dict[int, List[float]] = {c: [] for c in core_counts}
    reference: Dict[str, int] = {}
    smallest = core_counts[0]
    for app in apps:
        base4 = run_app(
            app, baseline_config(num_cores=smallest), per_core_work(smallest)
        )
        reference[app] = base4.cycles
    for cores in core_counts:
        for app in apps:
            base, widir = run_pair(app, cores, per_core_work(cores))
            base_times[cores].append(reference[app] / max(1, base.cycles))
            widir_times[cores].append(reference[app] / max(1, widir.cycles))
    rows = []
    for cores in core_counts:
        rows.append(
            [
                cores,
                _geomean(base_times[cores]),
                _geomean(widir_times[cores]),
            ]
        )
    text = format_table(
        ["cores", "Baseline speedup", "WiDir speedup"],
        rows,
        title="Figure 10: average speedup over 4-core Baseline",
    )
    return FigureResult("fig10", ["cores", "base", "widir"], rows, text)


# ---------------------------------------------------------------- Table VI

def table6_sensitivity(
    apps: Optional[Iterable[str]] = None,
    thresholds: Sequence[int] = (2, 3, 4, 5),
    num_cores: int = 64,
    memops: Optional[int] = None,
) -> FigureResult:
    """Table VI: MaxWiredSharers sweep — speedup and collision probability."""
    apps = _apps_or_default(apps)
    base_cycles: Dict[str, int] = {}
    for app in apps:
        base_cycles[app] = run_app(
            app, baseline_config(num_cores=num_cores), memops
        ).cycles
    rows = []
    for threshold in thresholds:
        speedups = []
        collisions = []
        for app in apps:
            widir = run_app(
                app,
                widir_config(num_cores=num_cores, max_wired_sharers=threshold),
                memops,
            )
            speedups.append(base_cycles[app] / max(1, widir.cycles))
            collisions.append(widir.collision_probability)
        rows.append(
            [
                threshold,
                _geomean(speedups),
                sum(collisions) / len(collisions) if collisions else 0.0,
            ]
        )
    text = format_table(
        ["MaxWiredSharers", "speedup vs Baseline", "collision prob."],
        rows,
        title="Table VI: MaxWiredSharers sensitivity (64 cores)",
    )
    return FigureResult("table6", ["threshold", "speedup", "collisions"], rows, text)
