"""Distributed sharded campaign execution.

One asyncio **coordinator** owns a campaign directory and shards its
pending run keys across N **worker agents** — local forked subprocesses
or remote processes speaking the length-prefixed JSON-RPC protocol of
:mod:`repro.harness.protocol` over TCP. The design goals, in order:

1. **Resume identity.** Every completion lands through the PR 5 campaign
   discipline — payload written atomically in ``runs/`` *before* a
   journal record says "ok" — into per-shard journals
   (``journal-shard<k>.jsonl``, single-writer: the coordinator). The
   final aggregate is :meth:`Campaign.finalize`, a pure function of the
   payloads, so the merged ``results.json`` sha256 is bit-for-bit the
   digest a single-box run produces, no matter how many workers, steals,
   kills, or resumes happened in between.
2. **Work stealing.** Keys are round-robined across more shards than
   workers (default ``2×``); each worker drains its affinity shard via
   ``lease`` and, when dry, calls ``steal`` to pull from the deepest
   foreign shard — fast workers finish slow shards' tails instead of
   idling.
3. **Fault tolerance.** A worker's registration connection dropping
   (SIGKILL, OOM) immediately requeues its leases; a heartbeat-stale but
   connected worker (hung) and an overdue lease are requeued by the
   watchdog. Retries ride the same seeded
   :class:`~repro.harness.supervisor.RetryPolicy` ladder as single-box
   campaigns, and retry exhaustion degrades gracefully (journaled
   ``failed``, listed in ``provenance.json``).
4. **Backpressure.** The ``submit`` RPC is token-bucket rate limited and
   bounded by a queue high-water mark (both reject with error 429, which
   clients absorb by backing off); lease grants are capped per worker.

Cache layers: before enqueueing a key the coordinator consults the PR-1
executor memo cache and, when configured, the content-addressed
multi-tenant :class:`~repro.harness.resultstore.ResultStore` — a run any
tenant already computed completes instantly as a ``store`` hit and never
reaches a worker.

Wire protocol methods (shapes in docs/API.md): ``serve`` ``lease``
``steal`` ``result`` ``fail`` ``heartbeat`` ``status`` ``submit`` ``bye``.
"""

from __future__ import annotations

import asyncio
import json
import os
import signal
import time
from collections import deque
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Deque, Dict, List, Optional, Tuple, Union

from repro.config.system import SystemConfig
from repro.harness.campaign import (
    CHECKPOINT_SCHEMA_VERSION,
    Campaign,
    CampaignError,
    CampaignSpec,
    MANIFEST_NAME,
)
from repro.harness.executor import Executor, RunRequest, _simulate, run_key
from repro.harness.ioutils import atomic_write_json
from repro.harness.protocol import (
    ERR_BAD_REQUEST,
    ERR_INTERNAL,
    ERR_THROTTLED,
    ERR_UNKNOWN_METHOD,
    PROTOCOL_VERSION,
    ProtocolError,
    RpcClient,
    RpcError,
    error_response,
    read_frame_async,
    result_response,
    write_frame_async,
)
from repro.harness.resultstore import ResultStore
from repro.harness.supervisor import (
    RetryPolicy,
    replay_sys_paths,
    start_heartbeat_thread,
)
from repro.obs.campaign import CampaignTelemetry

#: Endpoint advertisement the coordinator drops in the campaign dir.
COORDINATOR_NAME = "coordinator.json"
#: Post-run summary (worker/shard/counter accounting + digest).
SUMMARY_NAME = "distributed.json"

#: Worker-side runner modes the ``serve`` handshake can assign. ``sim``
#: executes the real simulation; ``sleep`` substitutes a deterministic
#: fixed-duration payload — the scheduling-efficiency workload the
#: distributed bench lane uses on low-core boxes (see
#: docs/PERFORMANCE.md).
RUNNER_MODES = ("sim", "sleep")


class DistributedError(RuntimeError):
    """Raised for coordinator misconfiguration (not for worker faults)."""


# ------------------------------------------------------------- token bucket


class TokenBucket:
    """Classic token bucket: ``rate`` tokens/s, burst up to ``capacity``.

    Gates the ``submit`` RPC; the injected clock keeps tests deterministic.
    """

    def __init__(
        self,
        rate: float,
        capacity: float,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if rate <= 0 or capacity <= 0:
            raise ValueError("rate and capacity must be positive")
        self.rate = float(rate)
        self.capacity = float(capacity)
        self._clock = clock
        self._tokens = float(capacity)
        self._stamp = clock()

    def _refill(self) -> None:
        now = self._clock()
        self._tokens = min(
            self.capacity, self._tokens + (now - self._stamp) * self.rate
        )
        self._stamp = now

    def try_acquire(self, tokens: float = 1.0) -> bool:
        """Take ``tokens`` if available; never blocks."""
        self._refill()
        if self._tokens >= tokens:
            self._tokens -= tokens
            return True
        return False

    @property
    def available(self) -> float:
        self._refill()
        return self._tokens


# ------------------------------------------------------------ bookkeeping


@dataclass
class _Entry:
    """One queued run: where it lives and how many attempts it has eaten."""

    key: str
    shard: int  #: home shard (journal + steal accounting)
    attempt: int = 1
    ready_at: float = 0.0  #: monotonic not-before (retry backoff)


@dataclass
class _Lease:
    entry: _Entry
    worker_id: str
    since: float
    stolen: bool = False


@dataclass
class _WorkerState:
    worker_id: str
    pid: int = 0
    shard: int = 0  #: affinity shard
    joined_at: float = 0.0
    last_beat: float = 0.0
    inflight: Dict[str, _Lease] = field(default_factory=dict)
    leases: int = 0
    steals: int = 0
    completed: int = 0
    alive: bool = True
    departed: bool = False  #: said ``bye`` (clean) vs lost (requeue)


@dataclass
class _ShardStats:
    total: int = 0
    done: int = 0
    failed: int = 0
    stolen: int = 0
    retried: int = 0


# -------------------------------------------------------------- coordinator


class Coordinator:
    """Asyncio RPC server sharding one campaign across worker agents.

    All state lives on the event loop thread; handlers are the only
    mutators. Durable writes (payloads, shard journals) are synchronous
    inside handlers — they are small fsynced files, and ordering them
    inside the handler *is* the crash-safety contract.
    """

    def __init__(
        self,
        campaign: Campaign,
        host: str = "127.0.0.1",
        port: int = 0,
        shards: Optional[int] = None,
        expected_workers: int = 2,
        executor: Optional[Executor] = None,
        store: Optional[ResultStore] = None,
        tenant: str = "default",
        retry: Optional[RetryPolicy] = None,
        lease_timeout: float = 120.0,
        heartbeat_interval: float = 0.25,
        heartbeat_grace: float = 40.0,
        max_inflight_per_worker: int = 1,
        submit_rate: float = 16.0,
        submit_burst: float = 8.0,
        max_queue: Optional[int] = None,
        runner: str = "sim",
        runner_seconds: float = 0.0,
        chaos_kill_after: Optional[int] = None,
        telemetry: Optional[CampaignTelemetry] = None,
        on_event: Optional[Callable[[Dict], None]] = None,
        poll_interval: float = 0.25,
    ) -> None:
        if runner not in RUNNER_MODES:
            raise DistributedError(
                f"unknown runner mode {runner!r}; known: {RUNNER_MODES}"
            )
        self.campaign = campaign
        self.host = host
        self.port = port
        self.num_shards = (
            max(1, int(shards))
            if shards is not None
            else max(2, 2 * max(1, expected_workers))
        )
        self.executor = executor if executor is not None else Executor(workers=1)
        # Share the executor's store unless one is given explicitly, so
        # `Executor(store=...)` alone opts a campaign into cross-tenant
        # dedupe + manifest publication.
        self.store = store if store is not None else self.executor.store
        self.tenant = tenant
        self.retry = retry if retry is not None else RetryPolicy()
        self.lease_timeout = lease_timeout
        self.heartbeat_interval = heartbeat_interval
        self.heartbeat_grace = heartbeat_grace
        self.max_inflight = max(1, int(max_inflight_per_worker))
        self.bucket = TokenBucket(submit_rate, submit_burst)
        self.max_queue = max_queue
        self.runner = runner
        self.runner_seconds = runner_seconds
        self.chaos_kill_after = chaos_kill_after
        self.telemetry = (
            telemetry if telemetry is not None else CampaignTelemetry()
        )
        self.on_event = on_event
        self.poll_interval = poll_interval

        # Unique plan: key -> request, first occurrence (campaign order).
        self.requests: Dict[str, RunRequest] = {}
        for key, request in zip(
            campaign.keys, campaign.plan.requests
        ):
            self.requests.setdefault(key, request)
        #: key -> home shard, round-robin in plan order (deterministic).
        self.home_shard: Dict[str, int] = {
            key: index % self.num_shards
            for index, key in enumerate(self.requests)
        }

        self.shards: List[Deque[_Entry]] = [
            deque() for _ in range(self.num_shards)
        ]
        self.shard_stats: List[_ShardStats] = [
            _ShardStats() for _ in range(self.num_shards)
        ]
        for key, shard in self.home_shard.items():
            self.shard_stats[shard].total += 1

        self.payloads: Dict[str, Dict] = {}
        self.failed: List[Dict] = []
        self.attempts: Dict[str, int] = {}
        self.queued: Dict[str, _Entry] = {}
        self.leases: Dict[str, _Lease] = {}
        self.workers: Dict[str, _WorkerState] = {}
        self.local_pids: Dict[int, object] = {}  #: pid -> Process handle

        self.accepted_results = 0
        self._chaos_fired = False
        self._next_worker = 0
        self._server: Optional[asyncio.AbstractServer] = None
        self._conn_tasks: set = set()
        self._watchdog: Optional[asyncio.Task] = None
        self._done = asyncio.Event()
        self.digest: str = ""
        self.started_at = 0.0

    # ------------------------------------------------------------- events

    def _emit(self, event: Dict) -> None:
        self.telemetry.on_event(event)
        if self.on_event is not None:
            self.on_event(event)

    # ----------------------------------------------------------- lifecycle

    async def start(self) -> Tuple[str, int]:
        """Bind, replay journals, advertise the endpoint; returns it."""
        self.started_at = time.monotonic()
        payloads, records, _ = self.campaign._replay_journal()
        self.payloads.update(payloads)
        self._emit({"event": "plan", "total": len(self.campaign.labels)})
        for _ in range(len(payloads)):
            self._emit({"event": "resume-skip"})
        for shard, stats in enumerate(self.shard_stats):
            stats.done = sum(
                1
                for key in self.payloads
                if self.home_shard.get(key) == shard
            )
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]
        atomic_write_json(
            self.campaign.directory / COORDINATOR_NAME,
            {
                "schema": CHECKPOINT_SCHEMA_VERSION,
                "name": self.campaign.spec.name,
                "host": self.host,
                "port": self.port,
                "pid": os.getpid(),
                "protocol": PROTOCOL_VERSION,
            },
        )
        self._watchdog = asyncio.ensure_future(self._watch())
        self._maybe_finish()
        return self.host, self.port

    async def stop(self) -> None:
        if self._watchdog is not None:
            self._watchdog.cancel()
            try:
                await self._watchdog
            except (asyncio.CancelledError, Exception):  # noqa: BLE001
                pass
            self._watchdog = None
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        # Drain connection handlers while the loop is still alive, so a
        # worker blocked between frames doesn't surface a CancelledError
        # at interpreter shutdown.
        for task in list(self._conn_tasks):
            task.cancel()
        if self._conn_tasks:
            await asyncio.gather(*self._conn_tasks, return_exceptions=True)
            self._conn_tasks.clear()
        # Withdraw the advertised endpoint once the campaign is complete so
        # `campaign status --live` reports "no coordinator" instead of a
        # connection error. An *interrupted* run keeps the file: resume
        # rewrites it, and a stale endpoint is detectable via its pid.
        if self.done:
            try:
                (self.campaign.directory / COORDINATOR_NAME).unlink()
            except OSError:  # pragma: no cover - already gone
                pass

    async def wait_done(self, timeout: Optional[float] = None) -> bool:
        try:
            await asyncio.wait_for(self._done.wait(), timeout)
            return True
        except asyncio.TimeoutError:
            return False

    @property
    def done(self) -> bool:
        return self._done.is_set()

    # ------------------------------------------------------------- filling

    def enqueue_pending(self) -> Dict[str, int]:
        """Queue every non-terminal key (cache/store hits complete now).

        The coordinator's own submission path — ``submit`` RPC calls land
        here too, after rate limiting. Returns accounting for the caller.
        """
        accepted = 0
        cache_hits = 0
        store_hits = 0
        for key in self.requests:
            if key in self.payloads or key in self.queued or key in self.leases:
                continue
            if any(entry["key"] == key for entry in self.failed):
                continue
            # Cache/store payloads are real simulation results; a sleep-mode
            # campaign neither reads nor writes them (its synthetic payloads
            # must not masquerade as — or be poisoned by — sim results).
            cached = (
                self.executor._dir_cache_load(key)
                if self.runner == "sim"
                else None
            )
            source = "cache"
            if (
                cached is None
                and self.store is not None
                and self.runner == "sim"
            ):
                cached = self.store.get(key)
                source = "store"
            if cached is not None:
                self._complete(key, cached, source, attempts=0)
                if source == "store":
                    store_hits += 1
                    self._emit({"event": "store-hit", "key": key})
                else:
                    cache_hits += 1
                    self._emit({"event": "cache-hit", "key": key})
                continue
            entry = _Entry(key=key, shard=self.home_shard[key])
            self.queued[key] = entry
            self.shards[entry.shard].append(entry)
            accepted += 1
        self._emit({"event": "queue-depth", "depth": len(self.queued)})
        self._maybe_finish()
        return {
            "accepted": accepted,
            "cache_hits": cache_hits,
            "store_hits": store_hits,
        }

    # ---------------------------------------------------------- completion

    def _complete(
        self, key: str, payload: Dict, source: str, attempts: int
    ) -> None:
        shard = self.home_shard[key]
        self.campaign.record_completion(
            key, payload, source, attempts, shard=shard
        )
        if self.runner == "sim":
            if self.store is not None:
                # The coordinator's store may not be the executor's (e.g.
                # handed to run_distributed directly); populate the objects
                # plane itself — put() is idempotent if both are wired.
                self.store.put(key, payload)
            self.executor._cache_store(key, payload)
        self.payloads[key] = payload
        self.shard_stats[shard].done += 1
        self._maybe_finish()

    def _fail_terminal(self, key: str, detail: str, attempts: int) -> None:
        shard = self.home_shard[key]
        self.campaign.record_failure(key, detail, attempts, shard=shard)
        self.failed.append(
            {"key": key, "reason": detail, "attempts": attempts}
        )
        self.shard_stats[shard].failed += 1
        self._emit(
            {
                "event": "giveup",
                "key": key,
                "attempt": attempts,
                "status": "failed",
                "detail": detail,
            }
        )
        self._maybe_finish()

    def _terminal_count(self) -> int:
        return len(self.payloads) + len(self.failed)

    def _maybe_finish(self) -> None:
        if self._done.is_set():
            return
        if self._terminal_count() < len(self.requests):
            return
        self.digest = self.campaign.finalize(self.payloads, self.failed)
        if self.store is not None and self.runner == "sim":
            self.store.publish(
                self.tenant,
                self.campaign.spec.name,
                self.campaign.key_for_label,
                self.digest,
            )
        self._write_summary()
        self._done.set()

    def _write_summary(self) -> None:
        atomic_write_json(
            self.campaign.directory / SUMMARY_NAME,
            {
                "schema": CHECKPOINT_SCHEMA_VERSION,
                "name": self.campaign.spec.name,
                "digest": self.digest,
                "runner": self.runner,
                "shards": [
                    {
                        "shard": index,
                        "total": stats.total,
                        "done": stats.done,
                        "failed": stats.failed,
                        "stolen": stats.stolen,
                        "retried": stats.retried,
                    }
                    for index, stats in enumerate(self.shard_stats)
                ],
                "workers": {
                    state.worker_id: {
                        "leases": state.leases,
                        "steals": state.steals,
                        "completed": state.completed,
                        "lost": not state.departed and not state.alive,
                    }
                    for state in self.workers.values()
                },
                "counters": dict(self.telemetry.counters),
                "wall_seconds": time.monotonic() - self.started_at,
            },
        )

    # ------------------------------------------------------------- requeue

    def _requeue(self, lease: _Lease, status: str, detail: str) -> None:
        """One failed/killed/expired attempt back onto its home shard."""
        key = lease.entry.key
        self.leases.pop(key, None)
        worker = self.workers.get(lease.worker_id)
        if worker is not None:
            worker.inflight.pop(key, None)
        attempt = lease.entry.attempt
        if attempt >= self.retry.max_attempts:
            self._fail_terminal(
                key,
                f"{status}: {detail}" if detail else status,
                attempt,
            )
            return
        delay = self.retry.delay_seconds(key, attempt)
        entry = _Entry(
            key=key,
            shard=lease.entry.shard,
            attempt=attempt + 1,
            ready_at=time.monotonic() + delay,
        )
        self.queued[key] = entry
        self.shards[entry.shard].append(entry)
        self.shard_stats[entry.shard].retried += 1
        self._emit(
            {
                "event": "retry",
                "key": key,
                "attempt": attempt,
                "status": status,
                "detail": detail,
                "backoff": delay,
                "worker": lease.worker_id,
            }
        )
        self._emit({"event": "requeue", "key": key, "worker": lease.worker_id})

    def _lose_worker(self, worker: _WorkerState, reason: str) -> None:
        if not worker.alive:
            return
        worker.alive = False
        if self.done and not worker.inflight:
            # Shutdown race: the campaign finished and the server is going
            # away before the worker's "bye" lands. Not a loss.
            worker.departed = True
        if worker.departed:
            return
        requeued = list(worker.inflight.values())
        for lease in requeued:
            self._requeue(lease, "crashed", reason)
        self._emit(
            {
                "event": "worker-lost",
                "worker": worker.worker_id,
                "requeued": len(requeued),
                "reason": reason,
            }
        )

    # ------------------------------------------------------------ watchdog

    async def _watch(self) -> None:
        """Requeue overdue leases and leases of heartbeat-stale workers."""
        while True:
            await asyncio.sleep(self.poll_interval)
            now = time.monotonic()
            stale_cutoff = self.heartbeat_interval * self.heartbeat_grace
            for worker in list(self.workers.values()):
                if not worker.alive or not worker.inflight:
                    continue
                if (
                    self.heartbeat_interval > 0
                    and now - worker.last_beat > stale_cutoff
                ):
                    self._lose_worker(
                        worker,
                        f"no heartbeat for {now - worker.last_beat:.2f}s",
                    )
            for lease in list(self.leases.values()):
                if now - lease.since > self.lease_timeout:
                    self._requeue(
                        lease,
                        "timeout",
                        f"lease exceeded {self.lease_timeout:.1f}s",
                    )

    # ------------------------------------------------------------- serving

    async def _handle_connection(self, reader, writer) -> None:
        """One TCP peer: serve requests until EOF.

        If the peer registered via ``serve`` on this connection, EOF means
        the worker died (or said ``bye`` first): its leases requeue
        immediately — the fast path that makes SIGKILLed workers cheap.
        """
        bound_worker: Optional[_WorkerState] = None
        task = asyncio.current_task()
        if task is not None:
            self._conn_tasks.add(task)
        try:
            while True:
                try:
                    request = await read_frame_async(reader)
                except (ProtocolError, asyncio.CancelledError):
                    break
                if request is None:
                    break
                response, bound = self._dispatch(request, bound_worker)
                if bound is not None:
                    bound_worker = bound
                try:
                    await write_frame_async(writer, response)
                except (ConnectionError, OSError):
                    break
                if request.get("method") == "bye":
                    break
        finally:
            if task is not None:
                self._conn_tasks.discard(task)
            if bound_worker is not None:
                self._lose_worker(bound_worker, "connection closed")
            try:
                writer.close()
            except Exception:  # noqa: BLE001 - already torn down
                pass

    def _dispatch(
        self, request: Dict, bound_worker: Optional[_WorkerState]
    ) -> Tuple[Dict, Optional[_WorkerState]]:
        request_id = request.get("id")
        method = request.get("method")
        params = request.get("params") or {}
        if not isinstance(params, dict):
            return (
                error_response(
                    request_id, ERR_BAD_REQUEST, "params must be an object"
                ),
                None,
            )
        handler = getattr(self, f"_rpc_{method}", None)
        if handler is None:
            return (
                error_response(
                    request_id, ERR_UNKNOWN_METHOD, f"unknown method {method!r}"
                ),
                None,
            )
        try:
            result = handler(params)
        except RpcError as exc:
            return error_response(request_id, exc.code, exc.message), None
        except Exception as exc:  # noqa: BLE001 - surface, don't kill server
            return (
                error_response(
                    request_id, ERR_INTERNAL, f"{type(exc).__name__}: {exc}"
                ),
                None,
            )
        bound = None
        if method == "serve":
            bound = self.workers.get(result["worker_id"])
        return result_response(request_id, result), bound

    # -- individual methods ----------------------------------------------

    def _worker_or_400(self, params: Dict) -> _WorkerState:
        worker = self.workers.get(str(params.get("worker_id", "")))
        if worker is None:
            raise RpcError(ERR_BAD_REQUEST, "unknown worker_id (serve first)")
        return worker

    def _rpc_serve(self, params: Dict) -> Dict:
        peer_protocol = int(params.get("protocol", 0))
        if peer_protocol != PROTOCOL_VERSION:
            raise RpcError(
                ERR_BAD_REQUEST,
                f"protocol {peer_protocol} != {PROTOCOL_VERSION}",
            )
        worker_id = f"w{self._next_worker}"
        self._next_worker += 1
        now = time.monotonic()
        state = _WorkerState(
            worker_id=worker_id,
            pid=int(params.get("pid", 0)),
            shard=(self._next_worker - 1) % self.num_shards,
            joined_at=now,
            last_beat=now,
        )
        self.workers[worker_id] = state
        self._emit({"event": "worker-join", "worker": worker_id})
        runner: Dict[str, object] = {"mode": self.runner}
        if self.runner == "sleep":
            runner["seconds"] = self.runner_seconds
        return {
            "worker_id": worker_id,
            "shard": state.shard,
            "heartbeat_interval": self.heartbeat_interval,
            "campaign": self.campaign.spec.name,
            "runner": runner,
        }

    def _pop_ready(self, shard: int) -> Optional[_Entry]:
        queue = self.shards[shard]
        now = time.monotonic()
        for _ in range(len(queue)):
            entry = queue.popleft()
            if entry.ready_at <= now:
                return entry
            queue.append(entry)  # rotate the backing-off entry to the rear
        return None

    def _grant(
        self, worker: _WorkerState, entry: _Entry, stolen: bool
    ) -> Dict:
        self.queued.pop(entry.key, None)
        lease = _Lease(
            entry=entry,
            worker_id=worker.worker_id,
            since=time.monotonic(),
            stolen=stolen,
        )
        self.leases[entry.key] = lease
        worker.inflight[entry.key] = lease
        worker.leases += 1
        if stolen:
            worker.steals += 1
            self.shard_stats[entry.shard].stolen += 1
        request = self.requests[entry.key]
        self._emit(
            {
                "event": "lease",
                "key": entry.key,
                "worker": worker.worker_id,
                "shard": entry.shard,
                "attempt": entry.attempt,
                "stolen": stolen,
            }
        )
        self._emit({"event": "queue-depth", "depth": len(self.queued)})
        spec: Dict[str, object] = {
            "app": request.app,
            "config": request.config.to_dict(),
            "memops": request.memops,
            "trace_seed": request.trace_seed,
        }
        # Trace-replay fields ride along only when set, so grants from
        # generator-driven campaigns are byte-identical to pre-trace peers
        # (older workers reject trace grants via the run-key cross-check).
        if request.trace_path:
            spec["trace_path"] = request.trace_path
            spec["trace_id"] = request.trace_id
            if request.trace_window is not None:
                spec["trace_window"] = [
                    list(span) for span in request.trace_window
                ]
        return {
            "kind": "run",
            "key": entry.key,
            "shard": entry.shard,
            "attempt": entry.attempt,
            "stolen": stolen,
            "request": spec,
        }

    def _empty(self) -> Dict:
        return {
            "kind": "empty",
            "done": self.done,
            "pending": len(self.queued),
            "leased": len(self.leases),
            "retry_after": 0.05 if not self.done else 0.0,
        }

    def _rpc_lease(self, params: Dict) -> Dict:
        worker = self._worker_or_400(params)
        worker.last_beat = time.monotonic()
        if len(worker.inflight) >= self.max_inflight:
            raise RpcError(
                ERR_THROTTLED,
                f"worker holds {len(worker.inflight)} leases "
                f"(max {self.max_inflight})",
            )
        entry = self._pop_ready(worker.shard)
        if entry is None:
            return self._empty()
        return self._grant(worker, entry, stolen=False)

    def _rpc_steal(self, params: Dict) -> Dict:
        worker = self._worker_or_400(params)
        worker.last_beat = time.monotonic()
        if len(worker.inflight) >= self.max_inflight:
            raise RpcError(
                ERR_THROTTLED,
                f"worker holds {len(worker.inflight)} leases "
                f"(max {self.max_inflight})",
            )
        # Deepest foreign shard first; fall back to any shard (including
        # the worker's own — a backoff there may have matured).
        order = sorted(
            range(self.num_shards),
            key=lambda s: (s == worker.shard, -len(self.shards[s])),
        )
        for shard in order:
            entry = self._pop_ready(shard)
            if entry is not None:
                return self._grant(
                    worker, entry, stolen=shard != worker.shard
                )
        return self._empty()

    def _rpc_result(self, params: Dict) -> Dict:
        worker = self._worker_or_400(params)
        worker.last_beat = time.monotonic()
        key = str(params.get("key", ""))
        payload = params.get("payload")
        if key not in self.requests or not isinstance(payload, dict):
            raise RpcError(ERR_BAD_REQUEST, "result needs a known key + payload")
        lease = self.leases.pop(key, None)
        if lease is not None:
            owner = self.workers.get(lease.worker_id)
            if owner is not None:
                owner.inflight.pop(key, None)
        worker.inflight.pop(key, None)
        if key in self.payloads:
            # Duplicate (lease timed out, another worker already finished,
            # or a zombie reported late): idempotently ignored.
            return {"accepted": False, "done": self.done}
        attempt = lease.entry.attempt if lease is not None else 1
        self.attempts[key] = attempt
        self._complete(key, payload, "simulated", attempt)
        worker.completed += 1
        self.accepted_results += 1
        self._emit(
            {
                "event": "ok",
                "key": key,
                "attempt": attempt,
                "elapsed": float(params.get("elapsed", 0.0)),
                "worker": worker.worker_id,
            }
        )
        self._maybe_chaos_kill(reporting=worker)
        return {"accepted": True, "done": self.done}

    def _rpc_fail(self, params: Dict) -> Dict:
        worker = self._worker_or_400(params)
        worker.last_beat = time.monotonic()
        key = str(params.get("key", ""))
        lease = worker.inflight.get(key) or self.leases.get(key)
        if lease is None:
            raise RpcError(ERR_BAD_REQUEST, f"no lease for key {key!r}")
        detail = str(params.get("detail", ""))
        terminal = lease.entry.attempt >= self.retry.max_attempts
        self._requeue(lease, "error", detail)
        return {"requeued": not terminal, "giveup": terminal}

    def _rpc_heartbeat(self, params: Dict) -> Dict:
        worker = self._worker_or_400(params)
        worker.last_beat = time.monotonic()
        return {"ok": True, "done": self.done}

    def _rpc_status(self, params: Dict) -> Dict:
        now = time.monotonic()
        leased_by_shard: Dict[int, int] = {}
        for lease in self.leases.values():
            leased_by_shard[lease.entry.shard] = (
                leased_by_shard.get(lease.entry.shard, 0) + 1
            )
        pending_by_shard: Dict[int, int] = {}
        for entry in self.queued.values():
            pending_by_shard[entry.shard] = (
                pending_by_shard.get(entry.shard, 0) + 1
            )
        return {
            "campaign": self.campaign.spec.name,
            "done": self.done,
            "digest": self.digest,
            "total": len(self.requests),
            "completed": len(self.payloads),
            "failed": len(self.failed),
            "pending": len(self.queued),
            "leased": len(self.leases),
            "shards": [
                {
                    "shard": index,
                    "total": stats.total,
                    "pending": pending_by_shard.get(index, 0),
                    "leased": leased_by_shard.get(index, 0),
                    "done": stats.done,
                    "failed": stats.failed,
                    "stolen": stats.stolen,
                    "retried": stats.retried,
                }
                for index, stats in enumerate(self.shard_stats)
            ],
            "workers": [
                {
                    "worker": state.worker_id,
                    "shard": state.shard,
                    "alive": state.alive,
                    "inflight": len(state.inflight),
                    "leases": state.leases,
                    "steals": state.steals,
                    "completed": state.completed,
                    "beat_age": round(now - state.last_beat, 3),
                }
                for state in self.workers.values()
            ],
            "counters": dict(self.telemetry.counters),
        }

    def _rpc_submit(self, params: Dict) -> Dict:
        if not self.bucket.try_acquire():
            self._emit({"event": "submit-throttled"})
            raise RpcError(ERR_THROTTLED, "submission rate limit exceeded")
        if (
            self.max_queue is not None
            and len(self.queued) >= self.max_queue
        ):
            self._emit({"event": "submit-throttled"})
            raise RpcError(
                ERR_THROTTLED,
                f"queue high-water mark reached ({len(self.queued)} "
                f">= {self.max_queue})",
            )
        keys = params.get("keys")
        if keys is not None and not isinstance(keys, list):
            raise RpcError(ERR_BAD_REQUEST, "keys must be a list")
        if keys is None:
            accounting = self.enqueue_pending()
        else:
            unknown = [key for key in keys if key not in self.requests]
            if unknown:
                raise RpcError(
                    ERR_BAD_REQUEST,
                    f"{len(unknown)} submitted keys are not in this "
                    f"campaign's plan (first: {unknown[0][:16]}...)",
                )
            accounting = {"accepted": 0, "cache_hits": 0, "store_hits": 0}
            wanted = set(keys)
            # Reuse the full fill path, then report only the wanted subset
            # as accepted; per-key submission exists for tests and partial
            # refills, and over-accepting idempotent keys is harmless.
            before = set(self.queued)
            full = self.enqueue_pending()
            accounting["cache_hits"] = full["cache_hits"]
            accounting["store_hits"] = full["store_hits"]
            accounting["accepted"] = len(
                (set(self.queued) - before) & wanted
            )
        self._emit({"event": "submit", "accepted": accounting["accepted"]})
        return dict(accounting, done=self.done, queued=len(self.queued))

    def _rpc_bye(self, params: Dict) -> Dict:
        worker = self._worker_or_400(params)
        worker.departed = True
        worker.alive = False
        return {"ok": True}

    # --------------------------------------------------------------- chaos

    def track_local_worker(self, pid: int, process: object) -> None:
        self.local_pids[pid] = process

    def _maybe_chaos_kill(self, reporting: _WorkerState) -> None:
        """SIGKILL one local worker holding a lease (deterministic drills).

        Fires once, after ``chaos_kill_after`` accepted results, against a
        worker that currently holds a lease — guaranteeing the CI smoke
        job observes a requeue + retry, not a lucky clean finish.
        """
        if (
            self.chaos_kill_after is None
            or self._chaos_fired
            or self.accepted_results < self.chaos_kill_after
        ):
            return
        victims = [
            state
            for state in self.workers.values()
            if state.alive
            and state.inflight
            and state.pid in self.local_pids
            and state.worker_id != reporting.worker_id
        ] or [
            state
            for state in self.workers.values()
            if state.alive and state.inflight and state.pid in self.local_pids
        ]
        if not victims:
            return
        victim = victims[0]
        self._chaos_fired = True
        self._emit(
            {
                "event": "chaos-kill",
                "worker": victim.worker_id,
                "pid": victim.pid,
            }
        )
        try:
            os.kill(victim.pid, signal.SIGKILL)
        except OSError:
            pass


# ------------------------------------------------------------ worker agent


def _connect_with_retry(
    host: str, port: int, deadline: float = 10.0
) -> RpcClient:
    """Connect, retrying while the coordinator is still binding."""
    client = RpcClient(host, port)
    give_up = time.monotonic() + deadline
    while True:
        try:
            return client.connect()
        except OSError:
            if time.monotonic() >= give_up:
                raise
            time.sleep(0.05)


class WorkerAgent:
    """Synchronous lease/execute/report loop against one coordinator.

    Two connections: the registration connection carries the request
    loop (its EOF is the coordinator's fast death-detection path), and
    the heartbeat thread owns a second connection so beats never
    interleave with a lease in flight.
    """

    def __init__(self, host: str, port: int, name: str = "") -> None:
        self.host = host
        self.port = port
        self.name = name
        self.worker_id = ""
        self.completed = 0
        self.stolen = 0

    # -- runner ----------------------------------------------------------

    @staticmethod
    def _execute(grant: Dict, runner: Dict) -> Tuple[Dict, float]:
        mode = runner.get("mode", "sim")
        if mode == "sleep":
            seconds = float(runner.get("seconds", 0.0))
            time.sleep(seconds)
            # Deterministic payload: digests of sleep-mode campaigns are
            # still a pure function of the plan, so worker-count A/B runs
            # in the bench lane can assert digest identity too.
            return (
                {
                    "schema": CHECKPOINT_SCHEMA_VERSION,
                    "mode": "sleep",
                    "key": grant["key"],
                },
                seconds,
            )
        spec = grant["request"]
        window = spec.get("trace_window")
        request = RunRequest(
            app=spec["app"],
            config=SystemConfig.from_dict(spec["config"]),
            memops=int(spec["memops"]),
            trace_seed=int(spec.get("trace_seed", 0)),
            trace_path=str(spec.get("trace_path", "")),
            trace_id=str(spec.get("trace_id", "")),
            trace_window=(
                tuple((int(a), int(b)) for a, b in window)
                if window is not None
                else None
            ),
        )
        expected = run_key(request)
        if expected != grant["key"]:
            raise DistributedError(
                f"request reconstruction drifted: {expected[:12]} != "
                f"{grant['key'][:12]} (schema skew between peers?)"
            )
        return _simulate(request)

    # -- main loop -------------------------------------------------------

    def run(self) -> int:
        """Serve until the campaign is done; returns runs completed."""
        client = _connect_with_retry(self.host, self.port)
        hello = client.call(
            "serve",
            worker=self.name,
            pid=os.getpid(),
            protocol=PROTOCOL_VERSION,
        )
        self.worker_id = hello["worker_id"]
        runner = hello.get("runner") or {"mode": "sim"}
        heartbeat_interval = float(hello.get("heartbeat_interval", 0.25))

        beat_client = _connect_with_retry(self.host, self.port)
        stop_heartbeat = start_heartbeat_thread(
            lambda: beat_client.call("heartbeat", worker_id=self.worker_id),
            heartbeat_interval,
        )
        try:
            while True:
                grant = client.call("lease", worker_id=self.worker_id)
                if grant.get("kind") == "empty":
                    if grant.get("done"):
                        break
                    grant = client.call("steal", worker_id=self.worker_id)
                    if grant.get("kind") == "empty":
                        if grant.get("done"):
                            break
                        time.sleep(float(grant.get("retry_after", 0.05)))
                        continue
                    self.stolen += int(bool(grant.get("stolen")))
                key = grant["key"]
                try:
                    payload, elapsed = self._execute(grant, runner)
                except Exception as exc:  # noqa: BLE001 - report, continue
                    client.call(
                        "fail",
                        worker_id=self.worker_id,
                        key=key,
                        detail=f"{type(exc).__name__}: {exc}",
                    )
                    continue
                reply = client.call(
                    "result",
                    worker_id=self.worker_id,
                    key=key,
                    payload=payload,
                    elapsed=elapsed,
                )
                self.completed += 1
                if reply.get("done"):
                    break
            try:
                client.call("bye", worker_id=self.worker_id)
            except (RpcError, ProtocolError, OSError):
                pass
        finally:
            stop_heartbeat()
            beat_client.close()
            client.close()
        return self.completed


def _local_worker_main(
    host: str, port: int, sys_paths: List[str], name: str
) -> None:  # pragma: no cover - child process
    replay_sys_paths(sys_paths)
    try:
        WorkerAgent(host, port, name=name).run()
    except (RpcError, ProtocolError, OSError):
        # Coordinator gone (or we were raced by shutdown): nothing to do.
        pass


# ----------------------------------------------------------------- reports


@dataclass
class DistributedReport:
    """Outcome of one distributed campaign execution."""

    name: str
    directory: Path
    total: int
    completed: int
    failed: List[Dict]
    digest: str
    workers: int
    shards: int
    stolen: int
    retried: int
    store_hits: int
    wall_seconds: float
    summary: Dict = field(default_factory=dict)
    telemetry: Optional[Dict] = None

    @property
    def ok(self) -> bool:
        return not self.failed

    def render(self) -> str:
        lines = [
            f"campaign {self.name}: {self.completed}/{self.total} runs "
            f"complete across {self.workers} workers / {self.shards} shards "
            f"({self.stolen} stolen, {self.retried} requeued, "
            f"{self.store_hits} store hits) in {self.wall_seconds:.2f}s",
            f"  digest : {self.digest}",
            f"  summary: {self.directory / SUMMARY_NAME}",
        ]
        if self.failed:
            lines.append(
                f"  DEGRADED: {len(self.failed)} runs failed after retry "
                "exhaustion"
            )
        return "\n".join(lines)


# ------------------------------------------------------------------ facade


def _load_or_create(
    directory: Union[str, Path], spec: Optional[CampaignSpec]
) -> Campaign:
    directory = Path(directory)
    if (directory / MANIFEST_NAME).exists():
        campaign = Campaign.load(directory)
        if spec is not None and campaign.spec != spec:
            raise CampaignError(
                f"campaign at {directory} was declared with a different "
                "spec; use a fresh --out directory"
            )
        return campaign
    if spec is None:
        raise CampaignError(
            f"{directory} is not a campaign directory (missing "
            f"{MANIFEST_NAME})"
        )
    return Campaign.create(directory, spec)


def run_distributed(
    directory: Union[str, Path],
    spec: Optional[CampaignSpec] = None,
    workers: int = 2,
    shards: Optional[int] = None,
    host: str = "127.0.0.1",
    port: int = 0,
    executor: Optional[Executor] = None,
    store: Optional[ResultStore] = None,
    tenant: str = "default",
    retry: Optional[RetryPolicy] = None,
    lease_timeout: float = 120.0,
    heartbeat_interval: float = 0.25,
    heartbeat_grace: float = 40.0,
    submit_rate: float = 16.0,
    submit_burst: float = 8.0,
    max_queue: Optional[int] = None,
    runner: str = "sim",
    runner_seconds: float = 0.0,
    chaos_kill_after: Optional[int] = None,
    timeout: Optional[float] = None,
    telemetry: Optional[CampaignTelemetry] = None,
    on_event: Optional[Callable[[Dict], None]] = None,
) -> DistributedReport:
    """Create-or-resume a campaign and drive it over ``workers`` agents.

    ``workers`` local agents are forked; ``workers=0`` serves remote
    agents only (the ``repro campaign serve`` path — pair it with
    ``repro campaign worker --connect``). Blocks until every run is
    terminal, then merges the shard journals into the single-box-identical
    aggregate and returns the report.
    """
    import multiprocessing
    import sys

    campaign = _load_or_create(directory, spec)
    telemetry = telemetry if telemetry is not None else CampaignTelemetry()
    coordinator = Coordinator(
        campaign,
        host=host,
        port=port,
        shards=shards,
        expected_workers=max(1, workers),
        executor=executor,
        store=store,
        tenant=tenant,
        retry=retry,
        lease_timeout=lease_timeout,
        heartbeat_interval=heartbeat_interval,
        heartbeat_grace=heartbeat_grace,
        submit_rate=submit_rate,
        submit_burst=submit_burst,
        max_queue=max_queue,
        runner=runner,
        runner_seconds=runner_seconds,
        chaos_kill_after=chaos_kill_after,
        telemetry=telemetry,
        on_event=on_event,
    )

    try:
        context = multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-POSIX fallback
        context = multiprocessing.get_context()
    processes: List[object] = []
    started = time.perf_counter()

    async def _main() -> bool:
        bind_host, bind_port = await coordinator.start()
        for index in range(workers):
            process = context.Process(
                target=_local_worker_main,
                args=(bind_host, bind_port, list(sys.path), f"local{index}"),
                daemon=True,
            )
            process.start()
            processes.append(process)
            coordinator.track_local_worker(process.pid, process)
        coordinator.enqueue_pending()
        finished = await coordinator.wait_done(timeout)
        await coordinator.stop()
        return finished

    try:
        finished = asyncio.run(_main())
    finally:
        deadline = time.monotonic() + 5.0
        for process in processes:
            process.join(max(0.0, deadline - time.monotonic()))
        for process in processes:
            if process.is_alive():  # pragma: no cover - hung worker
                process.terminate()
                process.join(1.0)
    if not finished:
        raise DistributedError(
            f"campaign did not reach a terminal state within {timeout}s"
        )

    wall = time.perf_counter() - started
    summary = {}
    summary_path = campaign.directory / SUMMARY_NAME
    if summary_path.exists():
        summary = json.loads(summary_path.read_text(encoding="utf-8"))
    counters = telemetry.counters
    return DistributedReport(
        name=campaign.spec.name,
        directory=campaign.directory,
        total=len(coordinator.requests),
        completed=len(coordinator.payloads),
        failed=list(coordinator.failed),
        digest=coordinator.digest,
        workers=max(workers, len(coordinator.workers)),
        shards=coordinator.num_shards,
        stolen=sum(stats.stolen for stats in coordinator.shard_stats),
        retried=sum(stats.retried for stats in coordinator.shard_stats),
        store_hits=counters.get("runs.store_hits", 0),
        wall_seconds=wall,
        summary=summary,
        telemetry=telemetry.snapshot(),
    )


# --------------------------------------------------------------- live status


def coordinator_endpoint(
    directory: Union[str, Path]
) -> Optional[Tuple[str, int]]:
    """Read the endpoint a live coordinator advertised, if any."""
    path = Path(directory) / COORDINATOR_NAME
    try:
        payload = json.loads(path.read_text(encoding="utf-8"))
        return str(payload["host"]), int(payload["port"])
    except (OSError, ValueError, KeyError):
        return None


def live_status(host: str, port: int, timeout: float = 3.0) -> Dict:
    """One ``status`` RPC against a running coordinator."""
    client = RpcClient(host, port, timeout=timeout)
    with client:
        return client.call("status")


def render_live_status(status: Dict) -> str:
    """Human-readable live coordinator status (``repro campaign status``)."""
    state = "complete" if status.get("done") else "running"
    lines = [
        f"campaign {status.get('campaign')} [live, {state}] — "
        f"{status.get('completed')}/{status.get('total')} runs complete, "
        f"{status.get('failed')} failed, {status.get('pending')} queued, "
        f"{status.get('leased')} leased",
    ]
    for shard in status.get("shards", []):
        lines.append(
            f"  shard {shard['shard']}: {shard['done']}/{shard['total']} done"
            f", {shard['leased']} leased, {shard['pending']} pending, "
            f"{shard['stolen']} stolen, {shard['retried']} retried"
            + (f", {shard['failed']} failed" if shard.get("failed") else "")
        )
    for worker in status.get("workers", []):
        lines.append(
            f"  worker {worker['worker']}"
            f" [{'alive' if worker['alive'] else 'gone'}]"
            f": {worker['completed']} done, {worker['steals']} steals, "
            f"{worker['inflight']} inflight, beat {worker['beat_age']:.2f}s ago"
        )
    if status.get("digest"):
        lines.append(f"  digest : {status['digest']}")
    return "\n".join(lines)


__all__ = [
    "COORDINATOR_NAME",
    "Coordinator",
    "DistributedError",
    "DistributedReport",
    "RUNNER_MODES",
    "SUMMARY_NAME",
    "TokenBucket",
    "WorkerAgent",
    "coordinator_endpoint",
    "live_status",
    "render_live_status",
    "run_distributed",
]
