"""Crash-safe filesystem primitives shared by the harness.

Every durable artifact the harness writes — memoized executor cache
entries, campaign checkpoints, aggregate result files — goes through one
of two disciplines:

``atomic_write_text`` / ``atomic_write_json``
    Write to a same-directory temporary file, flush, ``fsync``, then
    ``os.replace`` onto the destination. A reader (or a resumed campaign)
    observes either the old file or the complete new one, never a torn
    write — a SIGKILL mid-write leaves at worst a uniquely named ``*.tmp.*``
    file that :func:`remove_stale_tmp` garbage-collects.

``append_jsonl`` / ``read_jsonl``
    An append-only journal of one JSON object per line, fsynced per
    record. Appends are not atomic across a crash, so the reader treats a
    torn or non-JSON *final* line as "the record that died with the
    writer" and drops it; torn lines anywhere else are reported so real
    corruption is not silently eaten.

``quarantine``
    Move an unreadable file aside (``<name>.corrupt.<pid>``) instead of
    deleting it, so a poisoned cache entry can be inspected post mortem
    while the caller simply recomputes.
"""

from __future__ import annotations

import json
import logging
import os
from pathlib import Path
from typing import Dict, Iterator, List, Tuple, Union

log = logging.getLogger("repro.harness.io")

#: Infix every temporary file carries; CI greps for leftovers.
TMP_INFIX = ".tmp."


def _fsync_dir(path: Path) -> None:
    """Best-effort fsync of a directory (persists the rename itself)."""
    try:
        fd = os.open(path, os.O_RDONLY)
    except OSError:  # pragma: no cover - platform without dir-open
        return
    try:
        os.fsync(fd)
    except OSError:  # pragma: no cover - fs without dir fsync
        pass
    finally:
        os.close(fd)


def atomic_write_text(path: Union[str, Path], text: str) -> None:
    """Durably replace ``path`` with ``text`` (tmp + fsync + rename)."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = path.with_name(f"{path.name}{TMP_INFIX}{os.getpid()}")
    with open(tmp, "w", encoding="utf-8") as handle:
        handle.write(text)
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(tmp, path)
    _fsync_dir(path.parent)


def atomic_write_json(path: Union[str, Path], payload: Dict) -> None:
    """Canonical (sorted, compact) durable JSON write via tmp+fsync+rename."""
    atomic_write_text(
        path, json.dumps(payload, sort_keys=True, separators=(",", ":"))
    )


def append_jsonl(path: Union[str, Path], record: Dict) -> None:
    """Append one JSON record (plus newline) to a journal, fsynced.

    The record is written in a single ``write`` call so a crash tears at
    most the final line, which :func:`read_jsonl` tolerates.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    line = json.dumps(record, sort_keys=True, separators=(",", ":")) + "\n"
    with open(path, "a", encoding="utf-8") as handle:
        handle.write(line)
        handle.flush()
        os.fsync(handle.fileno())


def read_jsonl(path: Union[str, Path]) -> Tuple[List[Dict], List[int]]:
    """Read a journal written by :func:`append_jsonl`.

    Returns ``(records, bad_line_numbers)``. A torn/invalid *last* line is
    expected after a crash and is dropped silently; invalid lines earlier
    in the file are also dropped but reported in ``bad_line_numbers`` (and
    logged) because they indicate corruption beyond a mid-append kill.
    """
    path = Path(path)
    records: List[Dict] = []
    bad: List[int] = []
    try:
        raw = path.read_text(encoding="utf-8")
    except OSError:
        return records, bad
    lines = raw.split("\n")
    if lines and lines[-1] == "":
        lines.pop()
    last = len(lines) - 1
    for number, line in enumerate(lines):
        try:
            record = json.loads(line)
            if not isinstance(record, dict):
                raise ValueError("journal records must be JSON objects")
        except ValueError:
            if number != last:
                bad.append(number + 1)
                log.warning(
                    "journal %s: dropping corrupt line %d", path, number + 1
                )
            continue
        records.append(record)
    return records, bad


def read_jsonl_many(
    paths: Iterator[Union[str, Path]],
) -> Tuple[List[Dict], List[int]]:
    """Concatenated replay of several journals (main + shard journals).

    Records keep per-file order, files keep the order given; bad line
    numbers are aggregated across files. Missing files read as empty, so
    a single-box campaign (no shard journals) and a distributed one share
    one replay path.
    """
    records: List[Dict] = []
    bad: List[int] = []
    for path in paths:
        file_records, file_bad = read_jsonl(path)
        records.extend(file_records)
        bad.extend(file_bad)
    return records, bad


def quarantine(path: Union[str, Path]) -> Path:
    """Move an unreadable file aside; returns the quarantine path.

    Never raises: if the rename itself fails the original path is
    returned and the caller proceeds as if the entry were missing.
    """
    path = Path(path)
    target = path.with_name(f"{path.name}.corrupt.{os.getpid()}")
    try:
        os.replace(path, target)
        log.warning("quarantined corrupt file %s -> %s", path, target.name)
        return target
    except OSError:
        return path


def iter_stale_tmp(root: Union[str, Path]) -> Iterator[Path]:
    """Yield leftover ``*.tmp.*`` files under ``root`` (crashed writers)."""
    root = Path(root)
    if root.is_dir():
        yield from root.rglob(f"*{TMP_INFIX}*")


def remove_stale_tmp(root: Union[str, Path]) -> int:
    """Delete leftover temporary files under ``root``; returns the count."""
    removed = 0
    for entry in list(iter_stale_tmp(root)):
        try:
            entry.unlink()
            removed += 1
        except OSError:  # pragma: no cover - racing cleanup
            pass
    return removed
