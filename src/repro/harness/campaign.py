"""Fault-tolerant, crash-safe-resumable experiment campaigns.

A *campaign* is a declared sweep (an
:class:`~repro.harness.executor.ExperimentPlan` built deterministically
from a :class:`CampaignSpec`) executed under the
:class:`~repro.harness.supervisor.WorkerSupervisor` with durable
checkpoints, so the harness survives the same fault classes the WiDir
protocol itself is built around (collisions -> BRS backoff; here: worker
crashes / hangs / timeouts -> seeded retry with the same
:class:`~repro.wireless.mac.BackoffPolicy` shape).

On-disk layout (all writes crash-safe; see :mod:`repro.harness.ioutils`)::

    <dir>/campaign.json     spec + expected run keys (atomic, versioned)
    <dir>/journal.jsonl     append-only checkpoint journal: one fsynced
                            record per completed run and per failed
                            attempt; a torn final line (SIGKILL mid-append)
                            is dropped on replay
    <dir>/runs/<key>.json   canonical result payloads (atomic, written
                            *before* the journal records completion)
    <dir>/results.json      aggregate label -> payload map (atomic)
    <dir>/digest.txt        sha256 of results.json — the resume-identity
                            contract: interrupted+resumed == uninterrupted
    <dir>/provenance.json   which runs made it, which are missing and why

The aggregate is a pure function of the completed payloads (sorted labels,
canonical JSON), so *when* and *how often* a campaign was interrupted is
invisible in ``results.json``/``digest.txt`` — the property the kill/resume
tests and the ``campaign-smoke`` CI job assert byte-for-byte.

Graceful degradation: a run that exhausts its retries is recorded as
``failed`` in the journal and listed (with its attempt history) in
``provenance.json``; the aggregate, figures, and sweeps render from the
runs that *did* complete instead of aborting the campaign
(:class:`CampaignResultSource` + the partial-rendering support in
:mod:`repro.harness.figures`).
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, List, Optional, Tuple, Union

from repro.coherence.backend import get_backend
from repro.config.presets import baseline_config, protocol_config, widir_config
from repro.harness.executor import (
    Executor,
    ExperimentPlan,
    RunRequest,
    run_key,
)
from repro.harness.ioutils import (
    append_jsonl,
    atomic_write_json,
    atomic_write_text,
    iter_stale_tmp,
    quarantine,
    read_jsonl,
    read_jsonl_many,
)
from repro.harness.runner import SimulationResult
from repro.harness.supervisor import RetryPolicy, WorkerSupervisor
from repro.harness.sweeps import label_for, mac_variants
from repro.wireless.mac import get_mac
from repro.obs.campaign import CampaignTelemetry

#: Bump on any change to the journal / manifest / aggregate shapes.
CHECKPOINT_SCHEMA_VERSION = 1

MANIFEST_NAME = "campaign.json"
JOURNAL_NAME = "journal.jsonl"
#: Distributed shards journal independently (one writer per file, same
#: record schema); replay merges ``journal.jsonl`` + every shard journal.
SHARD_JOURNAL_PREFIX = "journal-shard"
SHARD_JOURNAL_GLOB = "journal-shard*.jsonl"
RUNS_DIR = "runs"
RESULTS_NAME = "results.json"
DIGEST_NAME = "digest.txt"
PROVENANCE_NAME = "provenance.json"

#: Sweep kinds a spec can declare (each builds its plan deterministically).
SWEEP_KINDS = ("protocols", "thresholds", "trace")


class CampaignError(RuntimeError):
    """Raised for unusable campaign directories (not for worker faults)."""


# ---------------------------------------------------------------- the spec


@dataclass(frozen=True)
class CampaignSpec:
    """Deterministic description of a campaign's run matrix.

    The spec — not the plan — is what the manifest persists: resuming
    rebuilds the plan from the spec and cross-checks the recomputed run
    keys against the manifest, so a resumed campaign provably executes the
    same matrix the interrupted one declared.
    """

    name: str
    kind: str = "protocols"
    apps: Tuple[str, ...] = ()
    cores: Tuple[int, ...] = (16,)
    memops: Optional[int] = None
    seed: int = 42
    thresholds: Tuple[int, ...] = (2, 3, 4, 5)
    trace_seed: int = 0
    #: Backends a ``kind="protocols"`` campaign compares; any subset of
    #: :func:`repro.coherence.backend.backend_names`. Validated at spec
    #: construction so a typo fails before any run is journalled.
    protocols: Tuple[str, ...] = ("baseline", "widir")
    #: MAC backends crossed over every *wireless* protocol in the matrix
    #: (wired protocols run once regardless); any subset of
    #: :func:`repro.wireless.mac.mac_names`. The default single-point
    #: dimension reproduces every pre-MAC-zoo matrix exactly.
    macs: Tuple[str, ...] = ("brs",)
    #: ``kind="trace"`` only: the recorded trace file the campaign fans
    #: out, its pinned content digest (read from the file when empty),
    #: and how many barrier-safe shards to cut it into (<= 1 replays the
    #: whole trace as a single run per protocol).
    trace_path: str = ""
    trace_id: str = ""
    trace_shards: int = 0

    def __post_init__(self) -> None:
        if self.kind not in SWEEP_KINDS:
            raise ValueError(
                f"unknown sweep kind {self.kind!r}; known: {SWEEP_KINDS}"
            )
        if self.kind == "trace":
            if not self.trace_path:
                raise ValueError(
                    "a kind='trace' campaign needs trace_path"
                )
        elif not self.apps:
            raise ValueError("a campaign needs at least one app")
        if not self.protocols:
            raise ValueError("a campaign needs at least one protocol")
        if not self.macs:
            raise ValueError("a campaign needs at least one MAC")
        for protocol in self.protocols:
            get_backend(protocol)  # raises ValueError naming the known set
        for mac in self.macs:
            get_mac(mac)  # raises ValueError naming the known set

    def to_dict(self) -> Dict:
        return {
            "name": self.name,
            "kind": self.kind,
            "apps": list(self.apps),
            "cores": list(self.cores),
            "memops": self.memops,
            "seed": self.seed,
            "thresholds": list(self.thresholds),
            "trace_seed": self.trace_seed,
            "protocols": list(self.protocols),
            "macs": list(self.macs),
            "trace_path": self.trace_path,
            "trace_id": self.trace_id,
            "trace_shards": self.trace_shards,
        }

    @classmethod
    def from_dict(cls, payload: Dict) -> "CampaignSpec":
        return cls(
            name=payload["name"],
            kind=payload["kind"],
            apps=tuple(payload["apps"]),
            cores=tuple(payload["cores"]),
            memops=payload.get("memops"),
            seed=payload.get("seed", 42),
            thresholds=tuple(payload.get("thresholds", (2, 3, 4, 5))),
            trace_seed=payload.get("trace_seed", 0),
            # Manifests written before the pluggable-backend refactor
            # predate this key; they always meant the classic pair.
            protocols=tuple(payload.get("protocols", ("baseline", "widir"))),
            # Manifests written before MAC backends were pluggable predate
            # this key; they always meant the paper's BRS discipline.
            macs=tuple(payload.get("macs", ("brs",))),
            trace_path=payload.get("trace_path", ""),
            trace_id=payload.get("trace_id", ""),
            trace_shards=payload.get("trace_shards", 0),
        )

    def build(self) -> Tuple[ExperimentPlan, List[str]]:
        """The run matrix: an :class:`ExperimentPlan` plus aligned labels."""
        plan = ExperimentPlan()
        labels: List[str] = []

        def add(app: str, config) -> None:
            plan.add(app, config, self.memops, self.trace_seed)
            labels.append(label_for(app, config))

        if self.kind == "trace":
            return self._build_trace()
        if self.kind == "protocols":
            for app in self.apps:
                for cores in self.cores:
                    for protocol in self.protocols:
                        base = protocol_config(
                            protocol, num_cores=cores, seed=self.seed
                        )
                        for config in mac_variants(base, self.macs):
                            add(app, config)
        else:  # thresholds (x MACs: the MAC x protocol x threshold matrix)
            for app in self.apps:
                for cores in self.cores:
                    add(app, baseline_config(num_cores=cores, seed=self.seed))
                    for threshold in self.thresholds:
                        base = widir_config(
                            num_cores=cores,
                            max_wired_sharers=threshold,
                            seed=self.seed,
                        )
                        for config in mac_variants(base, self.macs):
                            add(app, config)
        return plan, labels

    def _build_trace(self) -> Tuple[ExperimentPlan, List[str]]:
        """``kind="trace"``: fan one recorded trace across shard windows.

        Shard boundaries come from the barrier-safe planner over the
        trace's footer index — a pure function of the file and
        ``trace_shards`` — so a resumed (or distributed) campaign
        recomputes the identical matrix. The per-shard runs are replayed
        cold and merge via
        :func:`repro.traces.sharding.merge_window_results`.
        """
        from repro.traces.format import TraceReader
        from repro.traces.sharding import plan_windows

        plan = ExperimentPlan()
        labels: List[str] = []
        with TraceReader(self.trace_path) as reader:
            trace_id = self.trace_id or reader.trace_id
            app = reader.app or "trace"
            num_cores = reader.num_cores
            windows = None
            if self.trace_shards > 1:
                max_chunks = max(
                    reader.num_chunks(core) for core in range(num_cores)
                )
                stride = max(1, max_chunks // self.trace_shards)
                windows = plan_windows(
                    reader, stride, max_windows=self.trace_shards
                )
        stem = Path(self.trace_path).stem or "trace"
        configs = [
            config
            for protocol in self.protocols
            for config in mac_variants(
                protocol_config(protocol, num_cores=num_cores, seed=self.seed),
                self.macs,
            )
        ]
        for config in configs:
            base = label_for(app, config)
            if windows is None:
                plan.add_trace(
                    self.trace_path, config, trace_id=trace_id, app=app
                )
                labels.append(f"{base}/{stem}")
            else:
                for index, window in enumerate(windows):
                    plan.add_trace(
                        self.trace_path,
                        config,
                        trace_id=trace_id,
                        window=tuple(tuple(span) for span in window),
                        app=app,
                    )
                    labels.append(f"{base}/{stem}/shard{index:03d}")
        return plan, labels


# ------------------------------------------------------------------ reports


@dataclass
class CampaignReport:
    """Outcome of one :meth:`Campaign.run` invocation."""

    name: str
    directory: Path
    total: int
    completed: int
    failed: List[Dict] = field(default_factory=list)
    resumed: int = 0
    cache_hits: int = 0
    executed: int = 0
    retries: int = 0
    digest: str = ""
    telemetry: Optional[Dict] = None

    @property
    def ok(self) -> bool:
        return not self.failed

    def render(self) -> str:
        lines = [
            f"campaign {self.name}: {self.completed}/{self.total} runs "
            f"complete ({self.resumed} resumed, {self.cache_hits} cache "
            f"hits, {self.executed} simulated, {self.retries} retries)",
            f"  digest : {self.digest}",
            f"  results: {self.directory / RESULTS_NAME}",
        ]
        if self.failed:
            lines.append(
                f"  DEGRADED: {len(self.failed)} runs failed after retry "
                f"exhaustion (see {PROVENANCE_NAME}):"
            )
            for entry in self.failed:
                lines.append(
                    f"    - {entry['label']}: {entry['reason']} "
                    f"({entry['attempts']} attempts)"
                )
        return "\n".join(lines)


@dataclass
class CampaignStatus:
    """Point-in-time view of a campaign directory (``campaign status``)."""

    name: str
    directory: Path
    total: int
    completed: int
    failed: List[Dict]
    pending: List[str]
    attempts: int
    retries_by_kind: Dict[str, int]
    backoff_seconds: float
    digest: Optional[str]
    journal_bad_lines: List[int]

    @property
    def done(self) -> bool:
        return self.completed == self.total

    def render(self) -> str:
        state = (
            "complete"
            if self.done
            else ("degraded" if self.failed else "in progress")
        )
        lines = [
            f"campaign {self.name} [{state}] — "
            f"{self.completed}/{self.total} runs complete, "
            f"{len(self.failed)} failed, {len(self.pending)} pending",
            f"  attempts  : {self.attempts} "
            f"(retries: {sum(self.retries_by_kind.values())}"
            + (
                " — "
                + ", ".join(
                    f"{kind}={count}"
                    for kind, count in sorted(self.retries_by_kind.items())
                )
                if self.retries_by_kind
                else ""
            )
            + ")",
        ]
        if self.backoff_seconds:
            lines.append(f"  backoff   : {self.backoff_seconds:.3f}s total")
        if self.digest:
            lines.append(f"  digest    : {self.digest}")
        if self.journal_bad_lines:
            lines.append(
                f"  WARNING   : journal lines {self.journal_bad_lines} "
                "were corrupt and ignored"
            )
        for entry in self.failed:
            lines.append(
                f"  failed    : {entry['label']} — {entry['reason']} "
                f"({entry['attempts']} attempts)"
            )
        for label in self.pending[:8]:
            lines.append(f"  pending   : {label}")
        if len(self.pending) > 8:
            lines.append(f"  pending   : ... {len(self.pending) - 8} more")
        if not self.done:
            lines.append(
                f"  resume with: repro campaign resume {self.directory}"
            )
        return "\n".join(lines)


# -------------------------------------------------------------- result source


class CampaignResultSource(Executor):
    """An :class:`Executor` that *serves* campaign results, never simulates.

    Figures and sweeps accept ``executor=``; handing them a result source
    renders them from a campaign's completed payloads. Requests whose run
    is missing (still pending, or failed after retry exhaustion) yield
    ``None`` — the partial-rendering path in :mod:`repro.harness.figures`
    — unless ``strict`` is set.
    """

    def __init__(self, payloads: Dict[str, Dict], strict: bool = False):
        super().__init__(workers=1, use_cache=False)
        self._payloads = dict(payloads)
        self.strict = strict
        #: Run keys requested but not available, in request order.
        self.missing: List[str] = []

    def map_runs(self, plan: ExperimentPlan) -> List[Optional[SimulationResult]]:
        results: List[Optional[SimulationResult]] = []
        for request in plan.requests:
            key = run_key(request)
            payload = self._payloads.get(key)
            if payload is None:
                if self.strict:
                    raise CampaignError(
                        f"campaign is missing run {key} "
                        f"({request.app} on {request.config.protocol})"
                    )
                if key not in self.missing:
                    self.missing.append(key)
                results.append(None)
            else:
                results.append(SimulationResult.from_dict(payload))
        return results


# ----------------------------------------------------------------- campaign


class Campaign:
    """One durable campaign directory: create, run, resume, inspect."""

    def __init__(self, directory: Union[str, Path], spec: CampaignSpec):
        self.directory = Path(directory)
        self.spec = spec
        self.plan, self.labels = spec.build()
        self.keys = [run_key(request) for request in self.plan.requests]
        #: label -> run key, insertion-ordered like the plan.
        self.key_for_label: Dict[str, str] = dict(zip(self.labels, self.keys))
        if len(self.key_for_label) != len(self.labels):
            raise CampaignError("campaign labels must be unique")

    # ------------------------------------------------------------ plumbing

    @property
    def journal_path(self) -> Path:
        return self.directory / JOURNAL_NAME

    def shard_journal_path(self, shard: int) -> Path:
        """Journal for one distributed shard (single-writer: the coordinator)."""
        return self.directory / f"{SHARD_JOURNAL_PREFIX}{shard}.jsonl"

    def journal_paths(self) -> List[Path]:
        """Every journal replay reads: the main one, then shards sorted."""
        paths = [self.journal_path]
        paths.extend(sorted(self.directory.glob(SHARD_JOURNAL_GLOB)))
        return paths

    @property
    def runs_dir(self) -> Path:
        return self.directory / RUNS_DIR

    def _payload_path(self, key: str) -> Path:
        return self.runs_dir / f"{key}.json"

    def _journal(self, record: Dict) -> None:
        append_jsonl(self.journal_path, record)

    # ------------------------------------------------------ create / load

    @classmethod
    def create(
        cls,
        directory: Union[str, Path],
        spec: CampaignSpec,
        exist_ok: bool = False,
    ) -> "Campaign":
        """Initialize a campaign directory (manifest + journal header)."""
        campaign = cls(directory, spec)
        manifest = campaign.directory / MANIFEST_NAME
        if manifest.exists() and not exist_ok:
            raise CampaignError(
                f"campaign already exists at {campaign.directory} "
                "(use resume, or a fresh --out directory)"
            )
        campaign.directory.mkdir(parents=True, exist_ok=True)
        campaign.runs_dir.mkdir(parents=True, exist_ok=True)
        atomic_write_json(
            manifest,
            {
                "schema": CHECKPOINT_SCHEMA_VERSION,
                "spec": spec.to_dict(),
                "keys": campaign.key_for_label,
            },
        )
        if not campaign.journal_path.exists():
            campaign._journal(
                {
                    "type": "header",
                    "schema": CHECKPOINT_SCHEMA_VERSION,
                    "name": spec.name,
                }
            )
        return campaign

    @classmethod
    def load(cls, directory: Union[str, Path]) -> "Campaign":
        """Open an existing campaign directory, validating its manifest."""
        directory = Path(directory)
        manifest_path = directory / MANIFEST_NAME
        try:
            manifest = json.loads(manifest_path.read_text(encoding="utf-8"))
        except OSError:
            raise CampaignError(
                f"{directory} is not a campaign directory "
                f"(missing {MANIFEST_NAME})"
            ) from None
        except ValueError:
            raise CampaignError(
                f"campaign manifest {manifest_path} is corrupt"
            ) from None
        schema = manifest.get("schema")
        if schema != CHECKPOINT_SCHEMA_VERSION:
            raise CampaignError(
                f"campaign schema {schema!r} is not supported "
                f"(expected {CHECKPOINT_SCHEMA_VERSION})"
            )
        campaign = cls(directory, CampaignSpec.from_dict(manifest["spec"]))
        if manifest.get("keys") != campaign.key_for_label:
            raise CampaignError(
                "campaign manifest keys do not match the rebuilt plan — "
                "the code's run-key schema changed underneath this "
                "campaign; re-run it from scratch"
            )
        return campaign

    # ------------------------------------------------------------- journal

    def _replay_journal(self) -> Tuple[Dict[str, Dict], List[Dict], List[int]]:
        """Replay the checkpoint journal.

        Returns ``(payloads, records, bad_lines)`` where ``payloads`` maps
        completed run keys to their canonical payloads (verified readable —
        a journal entry whose payload file is missing or corrupt is
        *demoted* back to pending, with the corrupt file quarantined).

        Distributed campaigns journal per shard; every journal (main +
        ``journal-shard*.jsonl``) feeds one merged replay, so a single-box
        ``campaign resume`` can finish a half-done distributed run and
        vice versa.
        """
        records, bad_lines = read_jsonl_many(self.journal_paths())
        payloads: Dict[str, Dict] = {}
        expected = set(self.keys)
        for record in records:
            if record.get("type") != "run":
                continue
            key = record.get("key")
            if key not in expected:
                continue
            if record.get("status") != "ok":
                continue
            if key in payloads:
                continue
            path = self._payload_path(key)
            try:
                payload = json.loads(path.read_text(encoding="utf-8"))
                if not isinstance(payload, dict):
                    raise ValueError("payload must be a JSON object")
            except OSError:
                continue  # journaled but payload never landed: re-run
            except ValueError:
                quarantine(path)
                continue
            payloads[key] = payload
        return payloads, records, bad_lines

    def completed_payloads(self) -> Dict[str, Dict]:
        """key -> canonical payload for every durably completed run."""
        payloads, _, _ = self._replay_journal()
        return payloads

    # ------------------------------------------------- distributed surface

    def record_completion(
        self,
        key: str,
        payload: Dict,
        source: str,
        attempts: int,
        shard: Optional[int] = None,
    ) -> None:
        """Durably complete one run, optionally into a shard journal.

        Order is the crash-safety contract shared with :meth:`run`: the
        payload lands atomically in ``runs/`` *before* the journal says
        "ok", so a kill between the two re-runs the simulation instead of
        trusting a phantom completion.
        """
        atomic_write_json(self._payload_path(key), payload)
        journal = (
            self.journal_path if shard is None
            else self.shard_journal_path(shard)
        )
        append_jsonl(
            journal,
            {
                "type": "run",
                "schema": CHECKPOINT_SCHEMA_VERSION,
                "key": key,
                "status": "ok",
                "source": source,
                "attempts": attempts,
            },
        )

    def record_failure(
        self,
        key: str,
        detail: str,
        attempts: int,
        shard: Optional[int] = None,
    ) -> None:
        """Journal terminal retry exhaustion for one run."""
        journal = (
            self.journal_path if shard is None
            else self.shard_journal_path(shard)
        )
        append_jsonl(
            journal,
            {
                "type": "run",
                "schema": CHECKPOINT_SCHEMA_VERSION,
                "key": key,
                "status": "failed",
                "attempts": attempts,
                "detail": detail,
            },
        )

    def finalize(
        self, payloads: Dict[str, Dict], failed: List[Dict]
    ) -> str:
        """(Re)write the aggregate artifacts; returns the sha256 digest.

        Public alias of the aggregate writer for coordinators that merge
        shard journals themselves — same pure function of the payloads,
        so a distributed merge is byte-identical to a single-box run.
        """
        return self._write_aggregate(payloads, failed)

    # ----------------------------------------------------------- execution

    def run(
        self,
        supervisor: Optional[WorkerSupervisor] = None,
        executor: Optional[Executor] = None,
        telemetry: Optional[CampaignTelemetry] = None,
        on_event: Optional[Callable[[Dict], None]] = None,
    ) -> CampaignReport:
        """Execute (or resume) the campaign to a terminal state.

        Safe to call again after any interruption — completed runs are
        replayed from the journal, previously *failed* runs get a fresh
        retry budget, and the aggregate artifacts are (re)written
        atomically at the end.
        """
        telemetry = telemetry if telemetry is not None else CampaignTelemetry()
        executor = executor if executor is not None else Executor(workers=1)

        def emit(event: Dict) -> None:
            telemetry.on_event(event)
            if on_event is not None:
                on_event(event)

        emit({"event": "plan", "total": len(self.labels)})
        payloads, _, _ = self._replay_journal()
        resumed = len(payloads)
        for _ in range(resumed):
            emit({"event": "resume-skip"})

        # First-occurrence dedup (a matrix can request one run many times).
        unique: Dict[str, RunRequest] = {}
        for key, request in zip(self.keys, self.plan.requests):
            unique.setdefault(key, request)

        def complete(key: str, payload: Dict, source: str, attempts: int,
                     detail: str = "") -> None:
            # Payload lands durably *before* the journal says "done":
            # a crash between the two re-runs the simulation, never the
            # reverse (a journal entry pointing at nothing is demoted).
            atomic_write_json(self._payload_path(key), payload)
            executor._cache_store(key, payload)
            self._journal(
                {
                    "type": "run",
                    "schema": CHECKPOINT_SCHEMA_VERSION,
                    "key": key,
                    "status": "ok",
                    "source": source,
                    "attempts": attempts,
                }
            )
            payloads[key] = payload

        # Memo-cache pass: anything the PR-1 executor already knows is a
        # completion without spawning a worker.
        cache_hits = 0
        todo: List[Tuple[str, RunRequest]] = []
        for key, request in unique.items():
            if key in payloads:
                continue
            cached = executor._cache_load(key)
            if cached is not None:
                complete(key, cached, "cache", 0)
                emit({"event": "cache-hit", "key": key})
                cache_hits += 1
            else:
                todo.append((key, request))

        # Supervised execution of the remainder.
        executed = 0
        failed: List[Dict] = []
        if todo:
            if supervisor is None:
                supervisor = WorkerSupervisor()
            previous_hook = supervisor.on_event

            def journal_event(event: Dict) -> None:
                if event["event"] in ("retry", "giveup"):
                    self._journal(
                        {
                            "type": "attempt",
                            "schema": CHECKPOINT_SCHEMA_VERSION,
                            "key": event["key"],
                            "attempt": event["attempt"],
                            "status": event.get("status", ""),
                            "detail": event.get("detail", ""),
                            "backoff": event.get("backoff", 0.0),
                        }
                    )
                emit(event)
                if previous_hook is not None:
                    previous_hook(event)

            supervisor.on_event = journal_event
            try:
                outcomes = supervisor.run(todo)
            finally:
                supervisor.on_event = previous_hook
            for key, outcome in outcomes.items():
                if outcome.ok:
                    complete(key, outcome.payload, "simulated",
                             outcome.attempts)
                    executed += 1
                else:
                    self._journal(
                        {
                            "type": "run",
                            "schema": CHECKPOINT_SCHEMA_VERSION,
                            "key": key,
                            "status": "failed",
                            "attempts": outcome.attempts,
                            "detail": outcome.detail,
                        }
                    )
                    failed.append({"key": key, "reason": outcome.detail,
                                   "attempts": outcome.attempts})

        digest = self._write_aggregate(payloads, failed)
        failed_labels = [
            {
                "label": label,
                "key": self.key_for_label[label],
                **{k: v for k, v in entry.items() if k != "key"},
            }
            for label in self.labels
            for entry in failed
            if self.key_for_label[label] == entry["key"]
        ]
        return CampaignReport(
            name=self.spec.name,
            directory=self.directory,
            total=len(self.labels),
            completed=sum(
                1 for label in self.labels
                if self.key_for_label[label] in payloads
            ),
            failed=failed_labels,
            resumed=resumed,
            cache_hits=cache_hits,
            executed=executed,
            retries=telemetry.counters.get("retries.total", 0),
            digest=digest,
            telemetry=telemetry.snapshot(),
        )

    # ----------------------------------------------------------- aggregate

    def _write_aggregate(
        self, payloads: Dict[str, Dict], failed: List[Dict]
    ) -> str:
        """Write ``results.json`` / ``digest.txt`` / ``provenance.json``.

        ``results.json`` is a pure, canonical function of the completed
        payloads — sorted labels, sorted keys, compact separators — so its
        bytes (and hence the digest) are independent of execution order,
        interruptions, retries, and timing.
        """
        completed = {}
        missing = []
        failed_by_key = {entry["key"]: entry for entry in failed}
        for label in sorted(self.labels):
            key = self.key_for_label[label]
            if key in payloads:
                completed[label] = payloads[key]
            else:
                entry = failed_by_key.get(key)
                missing.append(
                    {
                        "label": label,
                        "key": key,
                        "reason": (
                            entry["reason"] if entry else "not yet executed"
                        ),
                        "attempts": entry["attempts"] if entry else 0,
                    }
                )
        results_blob = json.dumps(
            {
                "schema": CHECKPOINT_SCHEMA_VERSION,
                "name": self.spec.name,
                "results": completed,
            },
            sort_keys=True,
            separators=(",", ":"),
        )
        atomic_write_text(self.directory / RESULTS_NAME, results_blob)
        digest = hashlib.sha256(results_blob.encode("utf-8")).hexdigest()
        atomic_write_text(self.directory / DIGEST_NAME, digest + "\n")
        atomic_write_json(
            self.directory / PROVENANCE_NAME,
            {
                "schema": CHECKPOINT_SCHEMA_VERSION,
                "name": self.spec.name,
                "spec": self.spec.to_dict(),
                "total": len(self.labels),
                "completed": sorted(completed),
                "missing": missing,
                "partial": bool(missing),
                "digest": digest,
            },
        )
        return digest

    # -------------------------------------------------------------- status

    def status(self) -> CampaignStatus:
        """Summarize the journal without executing anything."""
        payloads, records, bad_lines = self._replay_journal()
        attempts = 0
        retries_by_kind: Dict[str, int] = {}
        backoff_seconds = 0.0
        failed_by_key: Dict[str, Dict] = {}
        for record in records:
            if record.get("type") == "attempt":
                attempts += 1
                kind = record.get("status") or "error"
                retries_by_kind[kind] = retries_by_kind.get(kind, 0) + 1
                backoff_seconds += float(record.get("backoff", 0.0))
            elif record.get("type") == "run":
                # The terminal successful attempt is not journaled as an
                # "attempt" record; count it here (cache hits cost none).
                attempts += (
                    record.get("status") == "ok"
                    and record.get("source") == "simulated"
                )
                if record.get("status") == "failed":
                    failed_by_key[record["key"]] = record
                elif record.get("status") == "ok":
                    failed_by_key.pop(record.get("key"), None)
        failed = []
        pending = []
        for label in self.labels:
            key = self.key_for_label[label]
            if key in payloads:
                continue
            entry = failed_by_key.get(key)
            if entry is not None:
                failed.append(
                    {
                        "label": label,
                        "key": key,
                        "reason": entry.get("detail", ""),
                        "attempts": entry.get("attempts", 0),
                    }
                )
            else:
                pending.append(label)
        digest_path = self.directory / DIGEST_NAME
        digest = None
        if digest_path.exists():
            digest = digest_path.read_text(encoding="utf-8").strip()
        return CampaignStatus(
            name=self.spec.name,
            directory=self.directory,
            total=len(self.labels),
            completed=sum(
                1 for label in self.labels
                if self.key_for_label[label] in payloads
            ),
            failed=failed,
            pending=pending,
            attempts=attempts,
            retries_by_kind=retries_by_kind,
            backoff_seconds=backoff_seconds,
            digest=digest,
            journal_bad_lines=bad_lines,
        )

    # -------------------------------------------------------------- access

    def result_source(self, strict: bool = False) -> CampaignResultSource:
        """A figures/sweeps-compatible executor over this campaign's runs."""
        return CampaignResultSource(self.completed_payloads(), strict=strict)

    def results(self) -> Dict[str, SimulationResult]:
        """label -> result for every completed run (partial-safe)."""
        payloads = self.completed_payloads()
        out: Dict[str, SimulationResult] = {}
        for label in self.labels:
            payload = payloads.get(self.key_for_label[label])
            if payload is not None:
                out[label] = SimulationResult.from_dict(payload)
        return out

    def stale_tmp_files(self) -> List[Path]:
        """Leftover ``*.tmp.*`` files (should always be empty post-run)."""
        return sorted(iter_stale_tmp(self.directory))


# -------------------------------------------------------------- conveniences


def run_campaign(
    directory: Union[str, Path],
    spec: Optional[CampaignSpec] = None,
    resume: bool = True,
    supervisor: Optional[WorkerSupervisor] = None,
    executor: Optional[Executor] = None,
    telemetry: Optional[CampaignTelemetry] = None,
    on_event: Optional[Callable[[Dict], None]] = None,
) -> CampaignReport:
    """Create-or-resume a campaign in ``directory`` and run it.

    With ``spec`` given: creates the campaign if the directory is fresh,
    otherwise (``resume=True``) validates that the on-disk spec matches and
    resumes. Without ``spec``: loads an existing campaign.
    """
    directory = Path(directory)
    if (directory / MANIFEST_NAME).exists():
        campaign = Campaign.load(directory)
        if spec is not None and campaign.spec != spec:
            raise CampaignError(
                f"campaign at {directory} was declared with a different "
                "spec; use a fresh --out directory"
            )
        if not resume:
            raise CampaignError(
                f"campaign already exists at {directory} (resume it, or "
                "pick a fresh --out directory)"
            )
    else:
        if spec is None:
            raise CampaignError(
                f"{directory} is not a campaign directory "
                f"(missing {MANIFEST_NAME})"
            )
        campaign = Campaign.create(directory, spec)
    return campaign.run(
        supervisor=supervisor,
        executor=executor,
        telemetry=telemetry,
        on_event=on_event,
    )


__all__ = [
    "CHECKPOINT_SCHEMA_VERSION",
    "Campaign",
    "CampaignError",
    "CampaignReport",
    "CampaignResultSource",
    "CampaignSpec",
    "CampaignStatus",
    "RetryPolicy",
    "run_campaign",
]
