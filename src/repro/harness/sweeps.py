"""Parameter-sweep utilities.

Thin, composable helpers for running grids of (application, machine)
configurations and collecting :class:`~repro.harness.runner.SimulationResult`
objects keyed by a readable label — the building block behind the
sensitivity benchmarks and the CLI's batch workflows.

Each helper declares its grid as an
:class:`~repro.harness.executor.ExperimentPlan` and executes it through an
:class:`~repro.harness.executor.Executor` (pass ``executor=`` to control
worker count and caching; defaults to the process-wide executor), so sweep
points run in parallel and repeated points are memo-cache hits.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Callable, Dict, Iterable, Optional, Sequence

from repro.coherence.backend import get_backend
from repro.config.presets import protocol_config, widir_config
from repro.config.system import SystemConfig
from repro.harness.executor import Executor, ExperimentPlan, default_executor
from repro.harness.runner import SimulationResult
from repro.wireless.mac import DEFAULT_MAC

#: Default protocol pair of the paper's evaluation; sweeps accept any
#: subset of :func:`repro.coherence.backend.backend_names`.
DEFAULT_PROTOCOLS = ("baseline", "widir")

#: Default (single-point) MAC dimension; sweeps accept any subset of
#: :func:`repro.wireless.mac.mac_names`.
DEFAULT_MACS = (DEFAULT_MAC,)


def _exe(executor: Optional[Executor]) -> Executor:
    return executor if executor is not None else default_executor()


def label_for(app: str, config: SystemConfig) -> str:
    """Canonical sweep label: app/protocol/cores[/tN][/mac].

    The threshold segment appears only for threshold-using protocols, the
    MAC segment only for wireless protocols running a non-default MAC —
    so every pre-MAC-zoo label (and therefore every recorded campaign
    journal and aggregate digest) is byte-identical.
    """
    backend = get_backend(config.protocol)
    parts = [app, config.protocol, f"{config.num_cores}c"]
    if backend.uses_sharer_threshold:
        parts.append(f"t{config.directory.max_wired_sharers}")
    if backend.uses_wireless and config.mac != DEFAULT_MAC:
        parts.append(config.mac)
    return "/".join(parts)


def mac_variants(
    config: SystemConfig, macs: Sequence[str] = DEFAULT_MACS
) -> Sequence[SystemConfig]:
    """Cross ``config`` with the MAC dimension.

    Wireless protocols get one config per requested MAC; wired protocols
    have no MAC to vary and always yield the single default-MAC config,
    so a ``macs=all`` sweep does not multiply baseline runs.
    """
    if not get_backend(config.protocol).uses_wireless:
        return (config,)
    return tuple(
        config if mac == config.mac else replace(config, mac=mac)
        for mac in macs
    )


def _run_labelled(
    grid: Sequence, executor: Optional[Executor], memops: Optional[int]
) -> Dict[str, SimulationResult]:
    """Execute (label, app, config) triples as one plan; label -> result.

    Graceful degradation: grid points the executor cannot serve (``None``
    from a partial :class:`~repro.harness.campaign.CampaignResultSource`)
    are *omitted* from the returned mapping instead of aborting the sweep;
    the campaign's provenance manifest records exactly which runs are
    missing and why. A plain :class:`Executor` always simulates, so direct
    sweeps never lose points.
    """
    plan = ExperimentPlan()
    indices = [
        (label, plan.add(app, config, memops)) for label, app, config in grid
    ]
    results = _exe(executor).map_runs(plan)
    return {
        label: results[index]
        for label, index in indices
        if results[index] is not None
    }


def sweep_protocols(
    apps: Iterable[str],
    num_cores: int = 64,
    memops: Optional[int] = None,
    seed: int = 42,
    progress: Optional[Callable[[str], None]] = None,
    executor: Optional[Executor] = None,
    protocols: Sequence[str] = DEFAULT_PROTOCOLS,
    macs: Sequence[str] = DEFAULT_MACS,
) -> Dict[str, SimulationResult]:
    """Run every app on every requested protocol; returns label -> result.

    ``macs`` crosses wireless protocols with MAC backends (wired
    protocols run once regardless). ``progress`` is invoked once per grid
    point as the plan is *declared* (dispatch order); with a parallel
    executor the underlying simulations may complete in any order.
    """
    grid = []
    for app in apps:
        for protocol in protocols:
            base = protocol_config(protocol, num_cores=num_cores, seed=seed)
            for config in mac_variants(base, macs):
                label = label_for(app, config)
                if progress is not None:
                    progress(label)
                grid.append((label, app, config))
    return _run_labelled(grid, executor, memops)


def sweep_core_counts(
    app: str,
    core_counts: Sequence[int],
    memops: Optional[int] = None,
    seed: int = 42,
    executor: Optional[Executor] = None,
    protocols: Sequence[str] = DEFAULT_PROTOCOLS,
    macs: Sequence[str] = DEFAULT_MACS,
) -> Dict[str, SimulationResult]:
    """One app across machine sizes, every requested protocol (x MACs)."""
    grid = [
        (label_for(app, config), app, config)
        for cores in core_counts
        for protocol in protocols
        for config in mac_variants(
            protocol_config(protocol, num_cores=cores, seed=seed), macs
        )
    ]
    return _run_labelled(grid, executor, memops)


def sweep_thresholds(
    app: str,
    thresholds: Sequence[int],
    num_cores: int = 64,
    memops: Optional[int] = None,
    seed: int = 42,
    executor: Optional[Executor] = None,
    macs: Sequence[str] = DEFAULT_MACS,
) -> Dict[str, SimulationResult]:
    """One app across MaxWiredSharers values (Table VI style), x MACs."""
    grid = []
    for threshold in thresholds:
        base = widir_config(
            num_cores=num_cores, max_wired_sharers=threshold, seed=seed
        )
        for config in mac_variants(base, macs):
            grid.append((label_for(app, config), app, config))
    return _run_labelled(grid, executor, memops)


def sweep_config_field(
    app: str,
    base_config: SystemConfig,
    field_path: str,
    values: Sequence,
    memops: Optional[int] = None,
    executor: Optional[Executor] = None,
) -> Dict[str, SimulationResult]:
    """Generic sweep over one (possibly nested) config field.

    ``field_path`` is dotted, e.g. ``"wireless.data_transfer_cycles"`` or
    ``"noc.cycles_per_hop"``. Each value produces one run labelled
    ``app/<field>=<value>``.
    """
    parts = field_path.split(".")
    grid = []
    for value in values:
        config = base_config
        if len(parts) == 1:
            config = replace(config, **{parts[0]: value})
        elif len(parts) == 2:
            inner = getattr(config, parts[0])
            config = replace(config, **{parts[0]: replace(inner, **{parts[1]: value})})
        else:
            raise ValueError(f"field path too deep: {field_path!r}")
        config.validate()
        grid.append((f"{app}/{field_path}={value}", app, config))
    return _run_labelled(grid, executor, memops)


def speedup_table(results: Dict[str, SimulationResult]) -> Dict[str, float]:
    """Pair up baseline/widir labels from :func:`sweep_protocols` and return
    app -> WiDir speedup."""
    speedups: Dict[str, float] = {}
    for label, result in results.items():
        if "/baseline/" not in label:
            continue
        widir_label = label.replace("/baseline/", "/widir/") + "/t3"
        partner = results.get(widir_label) or results.get(
            label.replace("/baseline/", "/widir/")
        )
        if partner is None:
            # Threshold suffix may differ; match on prefix.
            prefix = label.replace("/baseline/", "/widir/")
            candidates = [r for l, r in results.items() if l.startswith(prefix)]
            partner = candidates[0] if candidates else None
        if partner is not None:
            app = label.split("/")[0]
            speedups[app] = result.cycles / max(1, partner.cycles)
    return speedups
