"""Markdown report generation from saved sweep results.

Turns a dictionary of labelled :class:`~repro.harness.runner.SimulationResult`
objects (from :mod:`repro.harness.sweeps` or :mod:`repro.harness.results_io`)
into a self-contained Markdown report with the same sections EXPERIMENTS.md
uses: headline speedups, MPKI comparisons, wireless activity, and energy.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.harness.runner import SimulationResult


def _pairs(results: Dict[str, SimulationResult]) -> List[
    Tuple[str, SimulationResult, SimulationResult]
]:
    """Yield (app, baseline, widir) triples for every complete pair."""
    by_app: Dict[str, Dict[str, SimulationResult]] = {}
    for result in results.values():
        by_app.setdefault(result.app, {})[result.config.protocol] = result
    out = []
    for app in sorted(by_app):
        entry = by_app[app]
        if "baseline" in entry and "widir" in entry:
            out.append((app, entry["baseline"], entry["widir"]))
    return out


def _md_table(headers: List[str], rows: List[List[str]]) -> str:
    lines = [
        "| " + " | ".join(headers) + " |",
        "|" + "|".join("---" for _ in headers) + "|",
    ]
    lines.extend("| " + " | ".join(row) + " |" for row in rows)
    return "\n".join(lines)


def generate_report(
    results: Dict[str, SimulationResult], title: str = "WiDir sweep report"
) -> str:
    """Render a Markdown report for a protocol-comparison sweep."""
    pairs = _pairs(results)
    sections = [f"# {title}", ""]

    if pairs:
        machine = pairs[0][1].config
        sections.append(
            f"Machine: {machine.num_cores} cores, MaxWiredSharers="
            f"{pairs[0][2].config.directory.max_wired_sharers}, "
            f"seed {machine.seed}."
        )
        sections.append("")

        sections.append("## Execution time")
        rows = []
        for app, base, widir in pairs:
            rows.append(
                [
                    app,
                    f"{base.cycles:,}",
                    f"{widir.cycles:,}",
                    f"{base.cycles / max(1, widir.cycles):.3f}x",
                ]
            )
        sections.append(
            _md_table(["app", "Baseline cycles", "WiDir cycles", "speedup"], rows)
        )
        sections.append("")

        sections.append("## L1 misses per kilo-instruction")
        rows = []
        for app, base, widir in pairs:
            ratio = widir.mpki / base.mpki if base.mpki else 1.0
            rows.append(
                [app, f"{base.mpki:.2f}", f"{widir.mpki:.2f}", f"{ratio:.2f}"]
            )
        sections.append(
            _md_table(["app", "Baseline MPKI", "WiDir MPKI", "ratio"], rows)
        )
        sections.append("")

        sections.append("## Wireless activity (WiDir)")
        rows = []
        for app, _base, widir in pairs:
            counters = widir.stats_counters
            rows.append(
                [
                    app,
                    f"{widir.wireless_writes:,}",
                    f"{widir.collision_probability:.1%}",
                    str(counters.get("dir.total.s_to_w", 0)),
                    str(counters.get("dir.total.w_to_s", 0)),
                    str(counters.get("dir.total.w_joins", 0)),
                ]
            )
        sections.append(
            _md_table(
                ["app", "wireless writes", "collision p", "S→W", "W→S", "joins"],
                rows,
            )
        )
        sections.append("")

        sections.append("## Energy")
        rows = []
        for app, base, widir in pairs:
            ratio = widir.energy.total / base.energy.total if base.energy.total else 1.0
            share = (
                widir.energy.wnoc / widir.energy.total if widir.energy.total else 0.0
            )
            rows.append([app, f"{ratio:.3f}", f"{share:.1%}"])
        sections.append(
            _md_table(["app", "WiDir/Baseline energy", "WNoC share"], rows)
        )
        sections.append("")

    unpaired = len(results) - 2 * len(pairs)
    if unpaired:
        sections.append(f"_{unpaired} unpaired result(s) omitted._")
    return "\n".join(sections) + "\n"
