"""Post-mortem diagnostics for stuck simulations.

``dump_stuck_state`` prints everything needed to localize a protocol
deadlock: unfinished cores with their wait reasons, outstanding MSHRs and
eviction buffers, busy directory entries with their transaction context and
deferred queues, the wireless channel's pending frames and jam set, and any
in-flight ToneAck operations.

The report is built from the observability layer's state synthesizer and
rendered through :meth:`repro.obs.recorder.FlightRecorder.render_payload`,
the same path ``repro trace summarize`` and ``repro verify replay`` use —
one code path for "what was the machine doing". When the machine was
running with tracing enabled (``config.obs.enabled``), the report also
includes the flight recorder's recent-event tail: not just *where* the
machine is stuck but *how* it got there.
"""

from __future__ import annotations

from typing import Iterable, List

from repro.obs.recorder import FlightRecorder, state_payload

#: Recent-history events appended to the report when a flight recorder is
#: installed on the stuck machine.
HISTORY_TAIL = 64


def dump_stuck_state(machine, cores: Iterable = ()) -> List[str]:
    """Return (and print) a human-readable deadlock report."""
    lines: List[str] = [f"--- stuck state at cycle {machine.sim.now} ---"]
    lines.extend(FlightRecorder.render_payload(state_payload(machine, cores)))
    obs = getattr(machine, "obs", None)
    if obs is not None:
        lines.append(f"--- last {HISTORY_TAIL} recorded events ---")
        lines.extend(
            FlightRecorder.render_payload(obs.recorder.to_payload(last=HISTORY_TAIL))
        )
    report = "\n".join(lines)
    print(report)
    return lines
