"""Post-mortem diagnostics for stuck simulations.

``dump_stuck_state`` prints everything needed to localize a protocol
deadlock: unfinished cores with their wait reasons, outstanding MSHRs and
eviction buffers, busy directory entries with their transaction context and
deferred queues, the wireless channel's pending frames and jam set, and any
in-flight ToneAck operations.
"""

from __future__ import annotations

from typing import Iterable, List


def dump_stuck_state(machine, cores: Iterable = ()) -> List[str]:
    """Return (and print) a human-readable deadlock report."""
    lines: List[str] = [f"--- stuck state at cycle {machine.sim.now} ---"]
    for core in cores:
        if getattr(core, "finished", True):
            continue
        cache = machine.caches[core.node]
        lines.append(
            f"core {core.node}: wait={core._stall_bucket} "
            f"outstanding_loads={core._outstanding_loads} "
            f"write_buffer={core._wb_occupancy} "
            f"mshrs={[hex(l) for l in cache.mshrs.outstanding_lines()]} "
            f"evicting={[hex(l) for l in cache._evicting]} "
            f"pending_wireless={[hex(l) for l in cache._pending_wireless]} "
            f"rmw={[hex(l) for l in cache._rmw_watch]}"
        )
    for directory in machine.directories:
        for entry in directory.array.entries():
            if entry.busy:
                deferred = [(m.kind, m.src) for m in entry.deferred]
                lines.append(
                    f"dir {directory.node}: {entry} "
                    f"txn={entry.transaction} deferred={deferred}"
                )
    if machine.wireless is not None:
        channel = machine.wireless
        pending = [
            (r.frame.kind, r.frame.src, hex(r.frame.line), r.ready_time, r.failures)
            for r in channel._pending
        ]
        lines.append(
            f"wnoc: pending={pending} busy_until={channel._busy_until} "
            f"jammed={[hex(l) for l in channel._jammed_lines]}"
        )
    if machine.tone is not None:
        ops = {
            hex(key): sorted(op.remaining)
            for key, op in machine.tone._operations.items()
        }
        lines.append(f"tone ops: {ops}")
    report = "\n".join(lines)
    print(report)
    return lines
