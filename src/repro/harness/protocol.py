"""Length-prefixed JSON-RPC wire protocol for distributed campaigns.

The coordinator/worker protocol (:mod:`repro.harness.distributed`) is
deliberately tiny: every message is one UTF-8 JSON object prefixed by a
4-byte big-endian length. No TLS, no negotiation, no streaming bodies —
the payloads are canonical simulation results (a few KB) and the peers
are trusted harness processes.

Wire format::

    +----------------+----------------------------------+
    | length (u32be) | UTF-8 JSON, exactly length bytes |
    +----------------+----------------------------------+

Request / response shape (a strict subset of JSON-RPC)::

    -> {"id": 7, "method": "lease", "params": {"worker": "w0"}}
    <- {"id": 7, "result": {"kind": "run", ...}}
    <- {"id": 7, "error": {"code": 429, "message": "submission throttled"}}

Methods the coordinator serves (see docs/API.md for the full schemas):
``serve`` (worker registration), ``lease``, ``steal``, ``result``,
``fail``, ``heartbeat``, ``status``, ``submit``, ``bye``.

Two transports share the framing:

* :func:`send_frame` / :func:`recv_frame` — blocking sockets (workers,
  the CLI status/submit clients);
* :func:`read_frame_async` / :func:`write_frame_async` — asyncio streams
  (the coordinator).

A torn peer (connection dropped mid-frame) surfaces as ``None`` from the
receive side, never a partial object: the frame either arrives whole or
not at all, mirroring the torn-line tolerance of the on-disk journals.
"""

from __future__ import annotations

import json
import socket
import struct
from typing import Any, Dict, Optional, Tuple

#: Protocol schema version, carried in the ``serve`` handshake. Bump on
#: any incompatible change to method names or message shapes.
PROTOCOL_VERSION = 1

#: Hard cap on one frame; a peer announcing more is corrupt or hostile.
MAX_FRAME_BYTES = 32 * 1024 * 1024

_LENGTH = struct.Struct(">I")


class ProtocolError(RuntimeError):
    """Framing/shape violation (oversized frame, non-JSON body, ...)."""


class RpcError(RuntimeError):
    """A well-formed error response from the peer."""

    def __init__(self, code: int, message: str) -> None:
        super().__init__(f"[{code}] {message}")
        self.code = code
        self.message = message


#: Error codes the coordinator emits.
ERR_BAD_REQUEST = 400
ERR_UNKNOWN_METHOD = 404
ERR_THROTTLED = 429
ERR_INTERNAL = 500


# ----------------------------------------------------------------- framing


def encode_frame(payload: Dict[str, Any]) -> bytes:
    """One wire frame: 4-byte big-endian length + compact JSON body."""
    body = json.dumps(payload, sort_keys=True, separators=(",", ":")).encode(
        "utf-8"
    )
    if len(body) > MAX_FRAME_BYTES:
        raise ProtocolError(f"frame of {len(body)} bytes exceeds the cap")
    return _LENGTH.pack(len(body)) + body


def decode_body(body: bytes) -> Dict[str, Any]:
    try:
        payload = json.loads(body.decode("utf-8"))
    except (UnicodeDecodeError, ValueError) as exc:
        raise ProtocolError(f"frame body is not JSON: {exc}") from None
    if not isinstance(payload, dict):
        raise ProtocolError("frame body must be a JSON object")
    return payload


def _check_length(length: int) -> None:
    if length > MAX_FRAME_BYTES:
        raise ProtocolError(f"peer announced a {length}-byte frame")


# ------------------------------------------------------------ sync sockets


def _recv_exact(sock: socket.socket, count: int) -> Optional[bytes]:
    """Read exactly ``count`` bytes; ``None`` on clean EOF at a boundary."""
    chunks = []
    remaining = count
    while remaining:
        chunk = sock.recv(remaining)
        if not chunk:
            if remaining == count:
                return None  # clean EOF between frames
            raise ProtocolError("connection dropped mid-frame")
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def send_frame(sock: socket.socket, payload: Dict[str, Any]) -> None:
    sock.sendall(encode_frame(payload))


def recv_frame(sock: socket.socket) -> Optional[Dict[str, Any]]:
    """Receive one frame; ``None`` when the peer closed cleanly."""
    header = _recv_exact(sock, _LENGTH.size)
    if header is None:
        return None
    (length,) = _LENGTH.unpack(header)
    _check_length(length)
    body = _recv_exact(sock, length) if length else b""
    if body is None:
        raise ProtocolError("connection dropped between header and body")
    return decode_body(body)


class RpcClient:
    """Blocking request/response client over one TCP connection.

    Calls are strictly sequential per client (the worker's main loop is
    synchronous); concurrent callers must use separate clients — e.g. the
    worker heartbeat thread owns its own connection so beats never
    interleave with a lease in flight.
    """

    def __init__(
        self,
        host: str,
        port: int,
        timeout: Optional[float] = 30.0,
    ) -> None:
        self.host = host
        self.port = port
        self.timeout = timeout
        self._sock: Optional[socket.socket] = None
        self._next_id = 0

    # -- lifecycle -------------------------------------------------------

    def connect(self) -> "RpcClient":
        if self._sock is None:
            self._sock = socket.create_connection(
                (self.host, self.port), timeout=self.timeout
            )
            self._sock.setsockopt(
                socket.IPPROTO_TCP, socket.TCP_NODELAY, 1
            )
        return self

    def close(self) -> None:
        if self._sock is not None:
            try:
                self._sock.close()
            except OSError:
                pass
            self._sock = None

    def __enter__(self) -> "RpcClient":
        return self.connect()

    def __exit__(self, *_exc) -> None:
        self.close()

    # -- calls -----------------------------------------------------------

    def call(self, method: str, **params: Any) -> Dict[str, Any]:
        """Send one request, block for its response.

        Raises :class:`RpcError` for error responses, :class:`ProtocolError`
        for framing violations, ``OSError`` for transport failures.
        """
        if self._sock is None:
            self.connect()
        self._next_id += 1
        request_id = self._next_id
        send_frame(
            self._sock, {"id": request_id, "method": method, "params": params}
        )
        response = recv_frame(self._sock)
        if response is None:
            raise ProtocolError(f"peer closed during {method!r}")
        if response.get("id") != request_id:
            raise ProtocolError(
                f"response id {response.get('id')!r} does not match "
                f"request id {request_id}"
            )
        error = response.get("error")
        if error is not None:
            raise RpcError(
                int(error.get("code", ERR_INTERNAL)),
                str(error.get("message", "unknown error")),
            )
        result = response.get("result")
        if not isinstance(result, dict):
            raise ProtocolError("response carries no result object")
        return result


def parse_endpoint(raw: str) -> Tuple[str, int]:
    """Parse ``host:port`` (the CLI ``--connect`` format)."""
    host, _, port = raw.rpartition(":")
    if not host or not port.isdigit():
        raise ValueError(
            f"endpoint {raw!r} is not host:port (e.g. 127.0.0.1:7471)"
        )
    return host, int(port)


# ---------------------------------------------------------- asyncio streams


async def read_frame_async(reader) -> Optional[Dict[str, Any]]:
    """Read one frame from an ``asyncio.StreamReader``; ``None`` on EOF."""
    import asyncio

    try:
        header = await reader.readexactly(_LENGTH.size)
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None  # clean EOF between frames
        raise ProtocolError("connection dropped mid-header") from None
    (length,) = _LENGTH.unpack(header)
    _check_length(length)
    try:
        body = await reader.readexactly(length) if length else b""
    except asyncio.IncompleteReadError:
        raise ProtocolError("connection dropped mid-frame") from None
    return decode_body(body)


async def write_frame_async(writer, payload: Dict[str, Any]) -> None:
    writer.write(encode_frame(payload))
    await writer.drain()


def error_response(request_id: Any, code: int, message: str) -> Dict[str, Any]:
    return {"id": request_id, "error": {"code": code, "message": message}}


def result_response(request_id: Any, result: Dict[str, Any]) -> Dict[str, Any]:
    return {"id": request_id, "result": result}


__all__ = [
    "ERR_BAD_REQUEST",
    "ERR_INTERNAL",
    "ERR_THROTTLED",
    "ERR_UNKNOWN_METHOD",
    "MAX_FRAME_BYTES",
    "PROTOCOL_VERSION",
    "ProtocolError",
    "RpcClient",
    "RpcError",
    "decode_body",
    "encode_frame",
    "error_response",
    "parse_endpoint",
    "read_frame_async",
    "recv_frame",
    "result_response",
    "send_frame",
    "write_frame_async",
]
