"""System configuration.

:class:`SystemConfig` and its nested dataclasses mirror the paper's Table III
(architecture modeled). :mod:`repro.config.presets` provides the named
configurations used throughout the evaluation (64/32/16/8/4-core Baseline and
WiDir machines).
"""

from repro.config.system import (
    CacheConfig,
    CoreConfig,
    DirectoryConfig,
    MemoryConfig,
    NocConfig,
    SystemConfig,
    WirelessConfig,
)
from repro.config.presets import (
    baseline_config,
    paper_config,
    protocol_config,
    widir_config,
)

__all__ = [
    "CacheConfig",
    "CoreConfig",
    "DirectoryConfig",
    "MemoryConfig",
    "NocConfig",
    "SystemConfig",
    "WirelessConfig",
    "baseline_config",
    "paper_config",
    "protocol_config",
    "widir_config",
]
