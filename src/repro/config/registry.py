"""Generic named-plugin registry machinery.

Both plugin seams in the tree — coherence-protocol backends
(:mod:`repro.coherence.backend`) and wireless MAC backends
(:mod:`repro.wireless.mac`) — share the same registration contract:

* ``register`` is idempotent for re-adding the *same* object (so a module
  re-import under a different name never trips it) but raises for a
  conflicting registration under an existing name;
* lookups load the built-in plugin modules lazily, exactly once, so the
  registry module itself stays import-light;
* ``names`` is sorted for stable CLI/docs output, and unknown-name errors
  enumerate the known set.

:class:`Registry` captures that contract once; the public module-level
functions of each seam (``register_backend``/``get_backend``/... and
``register_mac``/``get_mac``/...) stay exactly as they were and delegate
here, so neither public surface nor any error message changed.
"""

from __future__ import annotations

from typing import Callable, Dict, Generic, Optional, Tuple, TypeVar

T = TypeVar("T")


class Registry(Generic[T]):
    """One named-plugin namespace with lazy built-in loading.

    Parameters
    ----------
    kind:
        Human-readable item description used verbatim in error messages
        (e.g. ``"protocol backend"``), so existing messages survive the
        refactor byte-for-byte.
    load_builtins:
        Optional callable importing the plugin modules that self-register
        the stock items; invoked at most once, before the first lookup.
    """

    def __init__(
        self, kind: str, load_builtins: Optional[Callable[[], None]] = None
    ) -> None:
        self.kind = kind
        self._items: Dict[str, T] = {}
        self._load_builtins = load_builtins
        self._builtins_loaded = False

    # ---------------------------------------------------------- mutation

    def register(self, name: str, item: T) -> T:
        """Add ``item`` under ``name`` (idempotent for identical re-adds)."""
        existing = self._items.get(name)
        if existing is not None and existing is not item:
            raise ValueError(f"{self.kind} already registered: {name!r}")
        self._items[name] = item
        return item

    # ----------------------------------------------------------- lookups

    def _ensure_builtins(self) -> None:
        if self._builtins_loaded:
            return
        self._builtins_loaded = True
        if self._load_builtins is not None:
            self._load_builtins()

    def get(self, name: str) -> T:
        """Look up an item; raises ``ValueError`` naming the known set."""
        self._ensure_builtins()
        try:
            return self._items[name]
        except KeyError:
            known = ", ".join(sorted(self._items))
            raise ValueError(
                f"unknown {self.kind} {name!r} (registered: {known})"
            ) from None

    def names(self) -> Tuple[str, ...]:
        """Registered names, sorted for stable CLI/docs output."""
        self._ensure_builtins()
        return tuple(sorted(self._items))

    def values(self) -> Tuple[T, ...]:
        """All registered items, sorted by name."""
        self._ensure_builtins()
        return tuple(self._items[name] for name in sorted(self._items))

    def __contains__(self, name: str) -> bool:
        self._ensure_builtins()
        return name in self._items
