"""Named machine configurations used by the evaluation.

``paper_config`` reproduces Table III exactly (modulo the documented
substitutions); the helpers derive Baseline / WiDir variants and scaled-down
machines for the 4-to-64-core scalability study (Figure 10).
"""

from __future__ import annotations

from dataclasses import replace

from repro.config.system import DirectoryConfig, SystemConfig


def paper_config(num_cores: int = 64, protocol: str = "widir", seed: int = 42) -> SystemConfig:
    """The paper's Table III machine at the given core count and protocol."""
    config = SystemConfig(num_cores=num_cores, protocol=protocol, seed=seed)
    config.validate()
    return config


def protocol_config(
    protocol: str,
    num_cores: int = 64,
    max_wired_sharers: int = None,
    seed: int = 42,
) -> SystemConfig:
    """Table III machine for any registered protocol backend.

    ``max_wired_sharers`` is the sharer-count threshold knob; it is only
    meaningful for backends with ``uses_sharer_threshold`` (WiDir's Table
    VI sensitivity axis, hybrid_update's mode-entry trigger) and is
    ignored when ``None`` or already the configured default.
    """
    config = paper_config(num_cores=num_cores, protocol=protocol, seed=seed)
    if (
        max_wired_sharers is not None
        and max_wired_sharers != config.directory.max_wired_sharers
    ):
        directory = DirectoryConfig(
            num_pointers=max(config.directory.num_pointers, max_wired_sharers),
            max_wired_sharers=max_wired_sharers,
            update_count_threshold=config.directory.update_count_threshold,
        )
        config = replace(config, directory=directory)
        config.validate()
    return config


def baseline_config(num_cores: int = 64, seed: int = 42) -> SystemConfig:
    """MESI Dir_3_B machine without wireless support."""
    return paper_config(num_cores=num_cores, protocol="baseline", seed=seed)


def widir_config(
    num_cores: int = 64, max_wired_sharers: int = 3, seed: int = 42
) -> SystemConfig:
    """WiDir machine; ``max_wired_sharers`` is the Table VI sensitivity knob."""
    return protocol_config(
        "widir",
        num_cores=num_cores,
        max_wired_sharers=max_wired_sharers,
        seed=seed,
    )
