"""Configuration dataclasses mirroring the paper's Table III.

Every timing, sizing, and protocol knob the simulator consumes lives here.
Defaults reproduce the paper's 64-core machine; tests and sensitivity
benchmarks override individual fields via :func:`dataclasses.replace`.
"""

from __future__ import annotations

import math
from dataclasses import asdict, dataclass, field
from typing import Any, Dict

from repro.engine.errors import ConfigurationError


def _require(condition: bool, message: str) -> None:
    if not condition:
        raise ConfigurationError(message)


def _is_power_of_two(value: int) -> bool:
    return value > 0 and (value & (value - 1)) == 0


@dataclass(frozen=True)
class CoreConfig:
    """Out-of-order core model parameters (Table III, General Parameters)."""

    issue_width: int = 4
    rob_entries: int = 180
    load_store_queue_entries: int = 64
    write_buffer_entries: int = 64
    #: Maximum overlapped outstanding L1 misses (memory-level parallelism).
    max_outstanding_misses: int = 8

    def validate(self) -> None:
        _require(self.issue_width >= 1, "issue_width must be >= 1")
        _require(self.rob_entries >= 1, "rob_entries must be >= 1")
        _require(self.load_store_queue_entries >= 1, "lsq must be >= 1 entry")
        _require(self.write_buffer_entries >= 1, "write buffer must be >= 1 entry")
        _require(self.max_outstanding_misses >= 1, "need >= 1 outstanding miss")


@dataclass(frozen=True)
class CacheConfig:
    """One cache level. Defaults describe the paper's private L1."""

    size_bytes: int = 64 * 1024
    associativity: int = 2
    line_bytes: int = 64
    round_trip_cycles: int = 2

    @property
    def num_sets(self) -> int:
        return self.size_bytes // (self.associativity * self.line_bytes)

    def validate(self, name: str = "cache") -> None:
        _require(self.size_bytes > 0, f"{name}: size must be positive")
        _require(self.associativity >= 1, f"{name}: associativity must be >= 1")
        _require(_is_power_of_two(self.line_bytes), f"{name}: line size must be 2^k")
        _require(
            self.size_bytes % (self.associativity * self.line_bytes) == 0,
            f"{name}: size must be a multiple of associativity * line size",
        )
        _require(_is_power_of_two(self.num_sets), f"{name}: set count must be 2^k")
        _require(self.round_trip_cycles >= 1, f"{name}: latency must be >= 1 cycle")


@dataclass(frozen=True)
class DirectoryConfig:
    """Limited-pointer directory scheme parameters.

    Two overflow schemes from the paper's Section III-A are supported:

    * ``"DirB"`` — Dir_i_B: on pointer overflow, set a broadcast bit;
      subsequent invalidations go to every core (the default, as evaluated
      in the paper).
    * ``"DirCV"`` — Dir_i_CV_r: on overflow, fall back to a coarse bit
      vector where each bit covers ``coarse_region_size`` cores;
      invalidations go to all cores of the marked regions only.
    """

    #: Number of sharer pointers per entry (the ``i`` in Dir_i_B).
    num_pointers: int = 3
    #: Overflow scheme: "DirB" (broadcast bit) or "DirCV" (coarse vector).
    scheme: str = "DirB"
    #: Cores per coarse-vector bit (the ``r`` in Dir_i_CV_r).
    coarse_region_size: int = 4
    #: Sharer count above which a WiDir line transitions S -> W. The paper
    #: constrains this to be no higher than ``num_pointers``; default 3.
    max_wired_sharers: int = 3
    #: UpdateCount saturation threshold: wireless updates received without a
    #: local access before a sharer self-invalidates. The paper suggests "a
    #: short counter (e.g., 2 bits)"; this implementation calibrates to a
    #: 3-bit counter (threshold 7) — with 2 bits, statistically spread
    #: updates age active sharers out so quickly that SharerCount hovers at
    #: MaxWiredSharers and lines oscillate W<->S (see the ablation bench).
    update_count_threshold: int = 7

    def validate(self) -> None:
        _require(self.num_pointers >= 1, "directory needs >= 1 sharer pointer")
        _require(
            self.scheme in ("DirB", "DirCV"),
            f"unknown directory scheme {self.scheme!r}; expected DirB or DirCV",
        )
        _require(self.coarse_region_size >= 1, "coarse regions must be >= 1 core")
        _require(self.max_wired_sharers >= 1, "max_wired_sharers must be >= 1")
        _require(
            self.max_wired_sharers <= self.num_pointers,
            "max_wired_sharers cannot exceed the directory pointer count "
            "(the W->S transition must fit the sharer IDs into the pointers)",
        )
        _require(self.update_count_threshold >= 1, "update threshold must be >= 1")


@dataclass(frozen=True)
class NocConfig:
    """Wired 2D-mesh network parameters."""

    cycles_per_hop: int = 1
    link_width_bits: int = 128
    #: Fixed router/NI overhead added to every message, in cycles.
    router_overhead_cycles: int = 1
    #: Model per-link serialization contention (queueing) when True.
    model_contention: bool = True

    def validate(self) -> None:
        _require(self.cycles_per_hop >= 1, "cycles_per_hop must be >= 1")
        _require(self.link_width_bits >= 8, "links must be at least a byte wide")
        _require(self.router_overhead_cycles >= 0, "router overhead must be >= 0")


@dataclass(frozen=True)
class WirelessConfig:
    """Wireless data + tone channel parameters (Table III, WiDir parameters)."""

    #: Payload cycles for one data-channel frame (64-bit word + address at
    #: 20 Gb/s and 1 GHz core clock = 4 cycles).
    data_transfer_cycles: int = 4
    #: Collision-detection slot after the preamble cycle.
    collision_detect_cycles: int = 1
    #: Preamble cycle in which contenders collide.
    preamble_cycles: int = 1
    #: Exponential backoff: window starts here ...
    backoff_base_cycles: int = 4
    #: ... and doubles per retry up to this cap. The deepest window (4<<7 =
    #: 512 cycles) must exceed contenders x frame time, or a machine-wide
    #: burst (64 cores leaving a barrier) melts the channel down with
    #: repeat collisions.
    backoff_max_exponent: int = 8
    #: Tone-channel transfer latency (Table III: 1 cycle).
    tone_cycles: int = 1
    #: p-persistent transmit probability per contention slot — consumed
    #: only by the ``csma_slotted`` MAC backend.
    csma_persistence: float = 0.5
    #: Static sub-channel count — consumed only by the ``fdma`` MAC
    #: backend (each sub-channel runs at 1/k aggregate bandwidth).
    fdma_channels: int = 4

    @property
    def frame_cycles(self) -> int:
        """Total cycles a successful frame occupies the medium."""
        return self.preamble_cycles + self.collision_detect_cycles + self.data_transfer_cycles

    def validate(self) -> None:
        _require(self.data_transfer_cycles >= 1, "data transfer must be >= 1 cycle")
        _require(self.collision_detect_cycles >= 1, "collision detect >= 1 cycle")
        _require(self.preamble_cycles >= 1, "preamble must be >= 1 cycle")
        _require(self.backoff_base_cycles >= 1, "backoff base must be >= 1 cycle")
        _require(self.backoff_max_exponent >= 0, "backoff exponent must be >= 0")
        _require(self.tone_cycles >= 1, "tone latency must be >= 1 cycle")
        _require(
            0.0 < self.csma_persistence <= 1.0,
            "csma_persistence must be in (0, 1]",
        )
        _require(self.fdma_channels >= 1, "fdma_channels must be >= 1")


@dataclass(frozen=True)
class ChannelErrorConfig:
    """Seeded wireless channel-error realism — **off by default**.

    Both probabilities default to 0.0, in which case
    :class:`~repro.system.Manycore` builds no error model at all: no RNG
    splits, no extra counters, and every pre-error-model golden digest is
    untouched. When enabled, draws come from one dedicated labelled split
    so they perturb no other subsystem's stream (see
    :mod:`repro.wireless.errors` for the liveness guarantees).
    """

    #: Probability a data-channel frame garbles in flight and is NACKed in
    #: the collision-detect slot (retransmit via the MAC's NACK policy).
    frame_corruption_prob: float = 0.0
    #: Probability a tone drop goes unheard and is re-signalled after
    #: ``tone_retry_cycles`` (delays, never loses, ToneAck completion).
    missed_tone_prob: float = 0.0
    #: Delay before a missed tone drop is re-signalled.
    tone_retry_cycles: int = 4

    @property
    def enabled(self) -> bool:
        """True when any error class has non-zero probability."""
        return self.frame_corruption_prob > 0.0 or self.missed_tone_prob > 0.0

    def validate(self) -> None:
        _require(
            0.0 <= self.frame_corruption_prob < 1.0,
            "frame_corruption_prob must be in [0, 1)",
        )
        _require(
            0.0 <= self.missed_tone_prob < 1.0,
            "missed_tone_prob must be in [0, 1)",
        )
        _require(self.tone_retry_cycles >= 1, "tone retry must be >= 1 cycle")


@dataclass(frozen=True)
class ObsConfig:
    """Observability (:mod:`repro.obs`) knobs — **off by default**.

    Tracing is behaviour-neutral by construction (the hooks only read and
    record; no RNG draws, no scheduled events), so golden digests are
    byte-identical at any setting; these knobs only trade memory/overhead
    against timeline detail.
    """

    #: Master switch: when True, :class:`~repro.system.Manycore` builds an
    #: :class:`~repro.obs.hooks.Observability` facade and installs its hooks.
    enabled: bool = False
    #: Flight-recorder ring depth per node (last-N protocol events).
    flight_recorder_depth: int = 256
    #: Minimum cycles between counter-track samples (activity-driven: a
    #: sample is taken by the next hook that fires past the interval, so no
    #: events are ever scheduled on the simulator).
    sample_interval: int = 4096

    def validate(self) -> None:
        _require(self.flight_recorder_depth >= 1, "recorder depth must be >= 1")
        _require(self.sample_interval >= 1, "sample interval must be >= 1 cycle")


@dataclass(frozen=True)
class MemoryConfig:
    """Off-chip memory parameters."""

    num_controllers: int = 4
    round_trip_cycles: int = 80

    def validate(self) -> None:
        _require(self.num_controllers >= 1, "need >= 1 memory controller")
        _require(self.round_trip_cycles >= 1, "memory latency must be >= 1 cycle")


@dataclass(frozen=True)
class SystemConfig:
    """Complete machine description.

    ``protocol`` selects between the Baseline MESI Dir_i_B machine and the
    WiDir machine; everything else is shared so comparisons are
    apples-to-apples.
    """

    num_cores: int = 64
    protocol: str = "widir"  # any name in coherence.backend.backend_names()
    #: Wireless MAC discipline — any name in wireless.mac.mac_names().
    #: Ignored by protocols that do not use the wireless plane.
    mac: str = "brs"
    core: CoreConfig = field(default_factory=CoreConfig)
    l1: CacheConfig = field(default_factory=CacheConfig)
    l2: CacheConfig = field(
        default_factory=lambda: CacheConfig(
            size_bytes=512 * 1024, associativity=8, round_trip_cycles=12
        )
    )
    directory: DirectoryConfig = field(default_factory=DirectoryConfig)
    noc: NocConfig = field(default_factory=NocConfig)
    wireless: WirelessConfig = field(default_factory=WirelessConfig)
    #: Seeded channel-error realism; disabled (all-zero) by default.
    channel_errors: ChannelErrorConfig = field(default_factory=ChannelErrorConfig)
    memory: MemoryConfig = field(default_factory=MemoryConfig)
    seed: int = 42
    #: Online invariant checking period in cycles (0 = off, the default).
    #: When positive, :class:`~repro.system.Manycore` attaches an
    #: :class:`~repro.coherence.checker.OnlineInvariantMonitor` that sweeps
    #: recently touched lines every ``check_interval`` cycles and raises
    #: :class:`~repro.engine.errors.ProtocolError` *at the offending cycle*
    #: instead of waiting for the end-of-run quiescent check. The monitor
    #: only observes (no RNG draws, no protocol messages), so enabling it
    #: never changes simulated behaviour — only when a violation is caught.
    check_interval: int = 0
    #: Observability subsystem knobs (:mod:`repro.obs`); disabled by default
    #: and behaviour-neutral when enabled (see :class:`ObsConfig`).
    obs: ObsConfig = field(default_factory=ObsConfig)

    @property
    def mesh_width(self) -> int:
        """Mesh columns: the most-square exact factorization (XY routing
        requires a full rectangle; 64 -> 8x8, 32 -> 8x4, 16 -> 4x4)."""
        best = 1
        for candidate in range(1, int(math.isqrt(self.num_cores)) + 1):
            if self.num_cores % candidate == 0:
                best = candidate
        return self.num_cores // best

    @property
    def mesh_height(self) -> int:
        return self.num_cores // self.mesh_width

    @property
    def uses_wireless(self) -> bool:
        """True when the selected protocol backend needs the wireless plane."""
        # Imported lazily: config is a leaf module the backend registry (and
        # the controllers it lazily constructs) depends on.
        from repro.coherence.backend import get_backend

        return get_backend(self.protocol).uses_wireless

    def validate(self) -> None:
        """Raise :class:`ConfigurationError` on any inconsistent field."""
        from repro.coherence.backend import backend_names

        from repro.wireless.mac import mac_names

        _require(self.num_cores >= 1, "need at least one core")
        _require(
            self.protocol in backend_names(),
            f"unknown protocol {self.protocol!r}; "
            f"expected one of {', '.join(backend_names())}",
        )
        _require(
            self.mac in mac_names(),
            f"unknown MAC {self.mac!r}; expected one of {', '.join(mac_names())}",
        )
        self.core.validate()
        self.l1.validate("l1")
        self.l2.validate("l2")
        self.directory.validate()
        self.noc.validate()
        self.wireless.validate()
        self.channel_errors.validate()
        self.memory.validate()
        self.obs.validate()
        _require(
            self.l1.line_bytes == self.l2.line_bytes,
            "L1 and L2 must use the same line size",
        )
        _require(self.check_interval >= 0, "check_interval must be >= 0 (0 = off)")

    # ------------------------------------------------------- serialization

    def to_dict(self) -> Dict[str, Any]:
        """Full-fidelity JSON-serializable description of the machine.

        Unlike the summary block embedded in legacy result files, this
        captures *every* field (nested sections included) so
        :meth:`from_dict` reconstructs an identical machine — the property
        the experiment executor's memoization key depends on.
        """
        return asdict(self)

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "SystemConfig":
        """Reconstruct a :class:`SystemConfig` saved by :meth:`to_dict`."""
        return cls(
            num_cores=payload["num_cores"],
            protocol=payload["protocol"],
            # Absent in payloads recorded before MAC backends were pluggable;
            # "brs" (the paper's discipline) reproduces their behaviour.
            mac=payload.get("mac", "brs"),
            core=CoreConfig(**payload["core"]),
            l1=CacheConfig(**payload["l1"]),
            l2=CacheConfig(**payload["l2"]),
            directory=DirectoryConfig(**payload["directory"]),
            noc=NocConfig(**payload["noc"]),
            wireless=WirelessConfig(**payload["wireless"]),
            # Absent before channel-error realism existed; all-zero (off)
            # reproduces the ideal channel exactly.
            channel_errors=(
                ChannelErrorConfig(**payload["channel_errors"])
                if "channel_errors" in payload
                else ChannelErrorConfig()
            ),
            memory=MemoryConfig(**payload["memory"]),
            seed=payload["seed"],
            # Absent in payloads recorded before the verification subsystem
            # existed; 0 (off) reproduces their behaviour exactly.
            check_interval=payload.get("check_interval", 0),
            # Absent in payloads recorded before the observability subsystem
            # existed; the default (disabled) reproduces their behaviour.
            obs=ObsConfig(**payload["obs"]) if "obs" in payload else ObsConfig(),
        )
