"""Wireless data-channel frame format.

A frame is small by construction: the 20 Gb/s channel moves a 64-bit word
plus its address in 4 cycles, so frames carry at most one word of data.
The coherence protocol uses four frame kinds:

========== =============================================================
WirUpd     fine-grained word update broadcast by a W-state sharer
BrWirUpgr  directory announces a line's transition to W
WirDwgr    directory announces a line's transition back to S
WirInv     directory invalidates a wirelessly shared line it is evicting
========== =============================================================

Like wired :class:`~repro.noc.message.Message` objects, frames store the
interned kind id for dispatch and precompute ``jammable``; the string
``kind`` stays available as a property for traces and tests. Frames are
broadcast — every tile's handler sees the same object — so the channel
recycles pooled frames only after the delivery fan-out completes
(:meth:`WirelessFrame.release`, called from the channel's finish step).
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from repro.coherence import messages as mk

_WIR_UPD_ID = mk.WIR_UPD_ID


class WirelessFrame:
    """One broadcast frame on the wireless data channel."""

    __slots__ = ("kind_id", "src", "line", "word", "value", "payload",
                 "jammable", "_pooled")

    #: Bounded freelist of recycled pooled frames.
    _free: List["WirelessFrame"] = []
    _FREELIST_CAP = 1024

    def __init__(
        self,
        kind,
        src: int,
        line: int,
        word: int = 0,
        value: int = 0,
        payload: Optional[Dict[str, Any]] = None,
    ) -> None:
        kid = kind if type(kind) is int else mk.intern_kind(kind)
        self.kind_id = kid
        self.src = src
        self.line = line
        self.word = word
        self.value = value
        self.payload = payload if payload is not None else {}
        # Selective jamming targets cores' data updates only. The
        # directory-originated transition frames (BrWirUpgr, WirDwgr,
        # WirInv) are sent exclusively by the line's home — the very node
        # doing the jamming — and must always pass. Exempting by *kind*
        # rather than by sender matters: the home tile's own L1 may be a
        # wireless sharer, and its WirUpd frames must still be jammed.
        self.jammable = kid == _WIR_UPD_ID
        self._pooled = False

    # ------------------------------------------------------------- pooling

    @classmethod
    def acquire(
        cls,
        kind,
        src: int,
        line: int,
        word: int = 0,
        value: int = 0,
    ) -> "WirelessFrame":
        """A pooled frame: recycled if the freelist has one, else fresh."""
        free = cls._free
        if free:
            frame = free.pop()
            kid = kind if type(kind) is int else mk.intern_kind(kind)
            frame.kind_id = kid
            frame.src = src
            frame.line = line
            frame.word = word
            frame.value = value
            frame.payload = {}
            frame.jammable = kid == _WIR_UPD_ID
            return frame
        frame = cls(kind, src, line, word, value)
        frame._pooled = True
        return frame

    @classmethod
    def release(cls, frame: "WirelessFrame") -> None:
        """Return a delivered frame to the freelist (if eligible)."""
        if frame._pooled and len(cls._free) < cls._FREELIST_CAP:
            frame.payload = None
            cls._free.append(frame)

    # --------------------------------------------------------------- views

    @property
    def kind(self) -> str:
        """Frame kind name (debug/trace layer)."""
        return mk.kind_name(self.kind_id)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"WirelessFrame({self.kind} from {self.src} line=0x{self.line:x})"
