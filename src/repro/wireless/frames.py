"""Wireless data-channel frame format.

A frame is small by construction: the 20 Gb/s channel moves a 64-bit word
plus its address in 4 cycles, so frames carry at most one word of data.
The coherence protocol uses four frame kinds:

========== =============================================================
WirUpd     fine-grained word update broadcast by a W-state sharer
BrWirUpgr  directory announces a line's transition to W
WirDwgr    directory announces a line's transition back to S
WirInv     directory invalidates a wirelessly shared line it is evicting
========== =============================================================
"""

from __future__ import annotations

from typing import Any, Dict, Optional


class WirelessFrame:
    """One broadcast frame on the wireless data channel."""

    __slots__ = ("kind", "src", "line", "word", "value", "payload")

    def __init__(
        self,
        kind: str,
        src: int,
        line: int,
        word: int = 0,
        value: int = 0,
        payload: Optional[Dict[str, Any]] = None,
    ) -> None:
        self.kind = kind
        self.src = src
        self.line = line
        self.word = word
        self.value = value
        self.payload = payload if payload is not None else {}

    @property
    def jammable(self) -> bool:
        """Selective jamming targets cores' data updates only.

        The directory-originated transition frames (BrWirUpgr, WirDwgr,
        WirInv) are sent exclusively by the line's home — the very node
        doing the jamming — and must always pass. Exempting by *kind* rather
        than by sender matters: the home tile's own L1 may be a wireless
        sharer, and its WirUpd frames must still be jammed.
        """
        return self.kind == "WirUpd"

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"WirelessFrame({self.kind} from {self.src} line=0x{self.line:x})"
