"""Round-robin token-passing MAC backend (``token``).

A single token circulates over the nodes in index order; only the holder
may start a preamble, so simultaneous preambles — and therefore
collisions — are impossible by construction (``collision_free=True``; the
differential harness asserts ``wnoc.collisions`` stays 0). Passing the
token costs one cycle per node skipped, which is the latency/fairness
trade the WNoC MAC design-space analysis (arXiv 1806.06294) maps against
random-access disciplines: no collision storms after barriers, but idle
token rotation taxes sparse traffic.

A jammed or corrupted frame is NACKed in the collision-detect slot like
any other MAC; the holder re-queues for its *next* rotation (no
randomised backoff — rotation order itself provides fairness) and the
token moves on.
"""

from __future__ import annotations

from typing import Dict, List

from repro.wireless.mac import MacBackend, MacState, register_mac

#: Cycles to hand the token one hop down the ring.
TOKEN_HOP_CYCLES = 1


class TokenMacState(MacState):
    """Per-channel token position plus rotation bookkeeping."""

    def __init__(self, channel) -> None:
        super().__init__(channel)
        #: The node the token currently sits at (next to be polled).
        self._next = 0
        #: Fault-injection hook (verify.mutations ``token_lost``): a lost
        #: token consumes contention slots forever without granting, which
        #: the fuzz liveness oracle must catch.
        self._lost = False
        self._passes = channel.stats.counter("wnoc.token_passes")

    def max_airtime(self) -> int:
        """Token rotation can delay transmission start after the grant."""
        num_nodes = self.channel.num_nodes
        return (
            self.channel.config.frame_cycles
            + (num_nodes - 1) * TOKEN_HOP_CYCLES
        )

    def arbitrate(self, now: int, contenders: List) -> None:
        channel = self.channel
        config = channel.config
        header = config.preamble_cycles + config.collision_detect_cycles
        if self._lost:
            # Seeded bug: the token vanished; the medium idles while
            # senders wait forever.
            channel._busy_until = now + header
            channel._schedule_arbitration(channel._busy_until)
            return
        num_nodes = channel.num_nodes
        by_node: Dict[int, object] = {}
        for request in contenders:
            node = request.frame.src % num_nodes
            if node not in by_node:
                by_node[node] = request
        winner = None
        hops = 0
        for offset in range(num_nodes):
            node = (self._next + offset) % num_nodes
            if node in by_node:
                winner = by_node[node]
                hops = offset
                break
        assert winner is not None  # contenders is non-empty
        hops *= TOKEN_HOP_CYCLES
        self._passes.add(hops)
        self._next = (winner.frame.src % num_nodes + 1) % num_nodes
        channel._attempts.add()
        if channel._nacked(winner):
            channel._busy_until = now + hops + header
            channel._busy_cycles.add(header)
            self.nack(winner, now + hops, header)
            channel._schedule_arbitration(channel._busy_until)
            return
        channel.grant(winner, now, hops, config.frame_cycles)

    def snapshot(self) -> Dict:
        return {"next": self._next}

    def restore(self, payload: Dict) -> None:
        self._next = int(payload["next"])


register_mac(
    MacBackend(
        name="token",
        description=(
            "Round-robin token passing: collision-free by construction, "
            "1 cycle per hop of token rotation."
        ),
        collision_free=True,
        uses_backoff=False,
        multi_channel=False,
        state_factory=TokenMacState,
    )
)
