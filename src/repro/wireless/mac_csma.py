"""p-persistent slotted CSMA MAC backend (``csma_slotted``).

Time is divided into contention slots of ``preamble + collision_detect``
cycles. At each slot boundary every ready contender independently
transmits with probability ``WirelessConfig.csma_persistence`` (drawn
from one dedicated labelled RNG split, in queue order, so both simulation
kernels draw identically). Zero transmitters waste the slot; exactly one
seizes the medium for the full frame; two or more collide and fall back
to the same per-node exponential :class:`~repro.wireless.mac.BackoffPolicy`
the BRS MAC uses (``uses_backoff=True`` — the fuzz backoff scrambler and
obs hooks see the familiar per-node policies).

The slot-alignment invariant — transmissions only ever *start* at
``now % slot == 0`` — is enforced structurally: arbitration at any other
phase defers to the next boundary before drawing anything, which is what
the property tests pin.
"""

from __future__ import annotations

from typing import Dict, List

from repro.wireless.mac import BackoffPolicy, MacBackend, MacState, register_mac


class CsmaSlottedMacState(MacState):
    """Per-channel persistence RNG plus per-node collision backoff."""

    def __init__(self, channel) -> None:
        super().__init__(channel)
        config = channel.config
        self._slot = config.preamble_cycles + config.collision_detect_cycles
        #: Fault-injection hook (verify.mutations ``csma_always_defer``):
        #: forcing this below 0 makes every persistence draw fail, so no
        #: node ever transmits and the fuzz liveness oracle must fire.
        self._persistence = config.csma_persistence
        self._rng = channel.rng.split("csma-persist")
        self.backoff_policies = tuple(
            BackoffPolicy(
                config.backoff_base_cycles,
                config.backoff_max_exponent,
                channel.rng.split(f"csma-backoff-{node}"),
                node=node,
            )
            for node in range(channel.num_nodes)
        )
        self._deferrals = channel.stats.counter("wnoc.slot_deferrals")

    def arbitrate(self, now: int, contenders: List) -> None:
        channel = self.channel
        slot = self._slot
        phase = now % slot
        if phase:
            # Mid-slot wake-up (frame lengths need not be slot multiples):
            # defer to the boundary before any persistence draw.
            channel._schedule_arbitration(now + slot - phase)
            return
        config = channel.config
        header = slot
        persistence = self._persistence
        rng = self._rng
        transmitters = [r for r in contenders if rng.random() < persistence]
        if not transmitters:
            self._deferrals.add(len(contenders))
            channel._schedule_arbitration(now + slot)
            return
        channel._attempts.add(len(transmitters))
        if len(transmitters) > 1:
            channel._collisions.add(len(transmitters))
            channel._busy_until = now + header
            channel._busy_cycles.add(header)
            obs = channel.obs
            for request in transmitters:
                if obs is not None:
                    obs.frame_phase(request, "collision")
                self.nack(request, now, header)
            channel._schedule_arbitration(channel._busy_until)
            return
        request = transmitters[0]
        if channel._nacked(request):
            channel._busy_until = now + header
            channel._busy_cycles.add(header)
            self.nack(request, now, header)
            channel._schedule_arbitration(channel._busy_until)
            return
        channel.grant(request, now, 0, config.frame_cycles)

    def nack(self, request, now: int, header: int) -> None:
        request.failures += 1
        channel = self.channel
        policy = self.backoff_policies[request.frame.src % channel.num_nodes]
        delay = policy.delay_for_attempt(request.failures)
        obs = channel.obs
        if obs is not None:
            obs.frame_phase(request, "backoff")
        request.ready_time = now + header + delay

    def snapshot(self) -> Dict:
        return {"persist_rng": self._rng._state}

    def restore(self, payload: Dict) -> None:
        self._rng._state = int(payload["persist_rng"])


register_mac(
    MacBackend(
        name="csma_slotted",
        description=(
            "p-persistent slotted CSMA: contention slots of header length, "
            "persistence draws per slot, BRS-style backoff on collision."
        ),
        collision_free=False,
        uses_backoff=True,
        multi_channel=False,
        state_factory=CsmaSlottedMacState,
    )
)
