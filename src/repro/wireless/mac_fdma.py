"""Static multi-channel FDMA MAC backend (``fdma``).

The medium is partitioned into ``WirelessConfig.fdma_channels``
sub-channels, each carrying 1/k of the aggregate bandwidth (a frame
occupies its sub-channel for ``frame_cycles * k``). A line address maps
to exactly one sub-channel via a fixed fold of its bits — the partition
is *total* and static, so two frames can only meet on the same
sub-channel, where strict FIFO service makes the discipline
collision-free (``wnoc.collisions`` stays 0; the differential harness
asserts it).

Sub-channels operate concurrently: one arbitration round may grant
several frames, and the busy-gating hooks are overridden so a free
sub-channel is never blocked behind a busy one. NACKs (jam/corruption)
occupy the sub-channel for the header and retry on the next round —
FIFO order itself provides fairness, so there is no randomised backoff
(``uses_backoff=False``).
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.wireless.mac import MacBackend, MacState, register_mac


class FdmaMacState(MacState):
    """Per-sub-channel busy horizon plus the static line partition."""

    def __init__(self, channel) -> None:
        super().__init__(channel)
        self._k = max(1, channel.config.fdma_channels)
        self._sub_busy = [0] * self._k
        self._grants = channel.stats.counter("wnoc.fdma_grants")

    def subchannel(self, line: int) -> int:
        """The sub-channel ``line`` is statically assigned to.

        Folding the tag bits onto the low bits keeps the partition total
        for both line-index and line-aligned-byte-address conventions
        (aligned addresses have constant low bits, which a plain modulo
        would collapse onto one sub-channel).
        """
        return ((line >> 6) ^ line) % self._k

    # -- busy gating: a free sub-channel is never blocked ----------------

    def busy_defer(self, now: int) -> Optional[int]:
        free_at = min(self._sub_busy)
        return free_at if now < free_at else None

    def clamp_arbitration(self, at: int) -> int:
        return at

    def max_airtime(self) -> int:
        """Each sub-channel runs at 1/k bandwidth: k x the airtime."""
        return self.channel.config.frame_cycles * self._k

    def arbitrate(self, now: int, contenders: List) -> None:
        channel = self.channel
        config = channel.config
        header = config.preamble_cycles + config.collision_detect_cycles
        duration = config.frame_cycles * self._k
        taken = set()
        busy_wakeups = []
        granted = False
        for request in contenders:
            sub = self.subchannel(request.frame.line)
            if sub in taken:
                continue  # FIFO: an earlier frame won this round
            if self._sub_busy[sub] > now:
                busy_wakeups.append(self._sub_busy[sub])
                continue
            taken.add(sub)
            channel._attempts.add()
            if channel._nacked(request):
                self._sub_busy[sub] = now + header
                channel._busy_until = max(channel._busy_until, now + header)
                channel._busy_cycles.add(header)
                self.nack(request, now, header)
                busy_wakeups.append(self._sub_busy[sub])
                continue
            self._sub_busy[sub] = now + duration
            self._grants.add()
            channel.grant(request, now, 0, duration)
            granted = True
        if channel._pending:
            # Skipped frames (busy or lost-FIFO sub-channel) and NACK
            # retries need a wake-up even when nothing was granted this
            # round (grants schedule their own at frame finish).
            wake = max(
                now + 1,
                min((r.ready_time for r in channel._pending), default=now),
            )
            if busy_wakeups:
                wake = min(wake, max(now + 1, min(busy_wakeups)))
            if not granted or busy_wakeups:
                channel._schedule_arbitration(wake)

    def snapshot(self) -> Dict:
        return {"sub_busy": list(self._sub_busy)}

    def restore(self, payload: Dict) -> None:
        self._sub_busy = [int(value) for value in payload["sub_busy"]]


register_mac(
    MacBackend(
        name="fdma",
        description=(
            "Static FDMA line partitioning: fdma_channels concurrent "
            "sub-channels at 1/k bandwidth each, collision-free FIFO."
        ),
        collision_free=True,
        uses_backoff=False,
        multi_channel=True,
        state_factory=FdmaMacState,
    )
)
