"""The shared wireless data channel with pluggable MAC and selective jamming.

Model
-----
The medium is a single broadcast resource (or, for multi-channel MACs, a
statically partitioned one). A node with a frame to send queues a
:class:`TransmitRequest`; *who* transmits when several nodes contend —
and what happens after a collision or a NACK — is decided by the MAC
backend named by ``config.mac`` (:mod:`repro.wireless.mac`). The default
``brs`` MAC reproduces the paper's discipline exactly: if exactly one
node starts transmitting in a given cycle, the frame occupies the medium
for ``preamble + collision_detect + payload`` cycles, at the end of which
every node on the chip receives it; if two or more start in the same
cycle, they discover the collision in the collision-detect slot, abort,
and retry after an exponential backoff
(:class:`~repro.wireless.mac.BackoffPolicy`).

*Selective jamming* (paper Section III-C1): a directory that is
mid-transition for a line registers that line address with the channel;
any frame for a jammed line is negative-acked in the collision-detect
slot exactly as if it had collided, so the sender retries under the
MAC's NACK policy. An optional partial-address mask models the paper's
"false positives" (only some address bits visible in the first cycle).
An optional seeded :class:`~repro.wireless.errors.ChannelErrorModel` adds
frame corruption through the same NACK path.

*Serialization point* (paper Section IV-C): the moment a frame survives
the collision-detect slot it is guaranteed to transmit. The channel
invokes the request's ``on_commit`` callback at that cycle — this is when
a wireless write may merge into the local cache — and delivers the
broadcast to all receivers when the payload finishes.

Requests are cancellable until their commit point, which the wireless-RMW
implementation relies on.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from repro.config.system import WirelessConfig
from repro.engine.rng import DeterministicRng
from repro.engine.simulator import Simulator
from repro.stats.collectors import StatsRegistry
from repro.wireless.errors import ChannelErrorModel
from repro.wireless.frames import WirelessFrame
from repro.wireless.mac import DEFAULT_MAC, MacBackend, get_mac


class TransmitRequest:
    """One node's attempt to broadcast one frame.

    Attributes
    ----------
    frame:
        The frame to send.
    on_commit:
        Called at the serialization point (frame guaranteed to transmit).
    on_delivered:
        Called when the payload completes, after all receivers were invoked.
    """

    __slots__ = (
        "frame",
        "on_commit",
        "on_delivered",
        "ready_time",
        "failures",
        "cancelled",
        "committed",
    )

    def __init__(
        self,
        frame: WirelessFrame,
        on_commit: Optional[Callable[[], None]],
        on_delivered: Optional[Callable[[], None]],
        ready_time: int,
    ) -> None:
        self.frame = frame
        self.on_commit = on_commit
        self.on_delivered = on_delivered
        self.ready_time = ready_time
        self.failures = 0
        self.cancelled = False
        self.committed = False

    def cancel(self) -> bool:
        """Withdraw the frame; returns False if it already committed."""
        if self.committed:
            return False
        self.cancelled = True
        return True


class WirelessDataChannel:
    """Shared 60 GHz broadcast medium with a pluggable MAC discipline."""

    def __init__(
        self,
        sim: Simulator,
        config: WirelessConfig,
        num_nodes: int,
        stats: StatsRegistry,
        rng: DeterministicRng,
        jam_address_bits: Optional[int] = None,
        mac: Optional[MacBackend] = None,
        errors: Optional[ChannelErrorModel] = None,
    ) -> None:
        self.sim = sim
        self.config = config
        self.num_nodes = num_nodes
        self.stats = stats
        #: The MAC's RNG root; every policy stream is a labelled split of
        #: this, so MAC construction never advances it.
        self.rng = rng
        #: Bits of the line address visible in the preamble for jam matching;
        #: None means exact matching (no false positives).
        self.jam_address_bits = jam_address_bits
        self._receivers: Dict[int, Callable[[WirelessFrame], None]] = {}
        self._pending: List[TransmitRequest] = []
        #: Lines whose data updates (jammable frames) are being NACKed,
        #: refcounted: ``jam``/``unjam`` nest, so a fault injector's jam
        #: storm overlapping a directory's own transition jam cannot lift
        #: the directory's jam early. Protocol use is always a matched
        #: non-nested pair per line, for which the behaviour is identical
        #: to the historical plain set.
        self._jammed_lines: Dict[int, int] = {}
        #: Arbitration winners currently occupying the medium (between
        #: their arbitration cycle and their finish event). Single-medium
        #: MACs keep at most one entry; multi-channel MACs may carry one
        #: per sub-channel.
        self._active: List[TransmitRequest] = []
        self._busy_until = 0
        self._arbitration_scheduled_at: Optional[int] = None
        #: Observability hook (set by Observability.install(); None — the
        #: default — costs one attribute test per channel operation and
        #: nothing else; see repro.obs.hooks).
        self.obs = None
        self._errors = errors
        self._attempts = stats.counter("wnoc.attempts")
        self._successes = stats.counter("wnoc.frames")
        self._collisions = stats.counter("wnoc.collisions")
        self._jams = stats.counter("wnoc.jams")
        self._cancellations = stats.counter("wnoc.cancellations")
        self._busy_cycles = stats.counter("wnoc.busy_cycles")
        #: The MAC discipline. Built last: the state factory receives the
        #: fully initialised channel (config, rng, stats, counters).
        self.mac_backend = mac if mac is not None else get_mac(DEFAULT_MAC)
        self._mac = self.mac_backend.state_factory(self)
        #: Per-node backoff policies for MACs that use them (``()``
        #: otherwise) — obs install, the fuzz backoff scrambler, and
        #: machine snapshots iterate this.
        self._backoff = self._mac.backoff_policies

    # ------------------------------------------------------------------ API

    def register_receiver(
        self, node: int, handler: Callable[[WirelessFrame], None]
    ) -> None:
        """Attach the tile-side receive callback for ``node``.

        Every successful frame is delivered to *every* registered node,
        including the sender's own tile (whose directory slice may need it).
        """
        self._receivers[node] = handler

    def transmit(
        self,
        frame: WirelessFrame,
        on_commit: Optional[Callable[[], None]] = None,
        on_delivered: Optional[Callable[[], None]] = None,
    ) -> TransmitRequest:
        """Queue ``frame`` for broadcast; returns a cancellable handle."""
        request = TransmitRequest(frame, on_commit, on_delivered, self.sim.now)
        obs = self.obs
        if obs is not None:
            obs.frame_queued(request)
        self._pending.append(request)
        self._schedule_arbitration(self.sim.now)
        return request

    def jam(self, line: int, owner: int = -1) -> None:
        """Begin jamming data updates addressed to ``line`` (directory busy).

        Only *jammable* frames (cores' WirUpd) are affected; the jamming
        directory's own transition broadcasts always pass. ``owner`` is
        accepted for API symmetry and diagnostics only. Jams nest: the line
        stays jammed until every :meth:`jam` has been matched by an
        :meth:`unjam`.
        """
        self._jammed_lines[line] = self._jammed_lines.get(line, 0) + 1

    def unjam(self, line: int) -> None:
        """Release one jam on ``line``; senders succeed on retry once the
        last overlapping jam is lifted. Unjamming an unjammed line is a
        harmless no-op (mirrors the historical ``set.discard``)."""
        count = self._jammed_lines.get(line, 0)
        if count <= 1:
            self._jammed_lines.pop(line, None)
        else:
            self._jammed_lines[line] = count - 1

    def is_jammed(self, line: int) -> bool:
        """Would a jammable frame for ``line`` be NACKed right now?"""
        if self.jam_address_bits is None:
            return line in self._jammed_lines
        mask = (1 << self.jam_address_bits) - 1
        return any((line & mask) == (jammed & mask) for jammed in self._jammed_lines)

    def line_in_flight(self, line: int) -> bool:
        """True while any non-cancelled frame for ``line`` is queued or on
        the medium — the window in which copies of the line may legally
        disagree (a committed WirUpd merged at the sender but not yet
        delivered). Used by the online invariant checker."""
        for active in self._active:
            if not active.cancelled and active.frame.line == line:
                return True
        return any(
            not r.cancelled and r.frame.line == line for r in self._pending
        )

    @property
    def _active_request(self) -> Optional[TransmitRequest]:
        """The sole occupant for single-medium MACs (compat accessor;
        observed by the online invariant checker and the snapshot
        quiescence gate)."""
        return self._active[0] if self._active else None

    @property
    def settle_cycles(self) -> int:
        """Worst-case cycles a granted frame may still be in the air.

        Protocol jam-settle windows and the consistency validator's
        write-visibility lag are sized from this, not from the raw
        ``frame_cycles`` — MACs that stretch airtime (FDMA) or delay the
        transmission start (token rotation) report a larger value.
        """
        return self._mac.max_airtime()

    @property
    def collision_probability(self) -> float:
        """Fraction of transmission attempts that ended in a collision."""
        attempts = self._attempts.value
        return self._collisions.value / attempts if attempts else 0.0

    @property
    def idle(self) -> bool:
        return self.sim.now >= self._busy_until and not self._pending

    # ----------------------------------------------------------- MAC seam

    def _nacked(self, request: TransmitRequest) -> bool:
        """Is ``request`` negative-acked in the collision-detect slot?

        Selective jamming first (the directory acts before the payload),
        then seeded frame corruption. A disabled error model draws
        nothing, keeping the default configuration digest-identical to
        the pre-error-model channel.
        """
        obs = self.obs
        if request.frame.jammable and self.is_jammed(request.frame.line):
            self._jams.add()
            if obs is not None:
                obs.frame_phase(request, "jammed")
            return True
        errors = self._errors
        if errors is not None and errors.corrupts_frame(request.failures):
            if obs is not None:
                obs.frame_phase(request, "corrupt")
            return True
        return False

    def grant(
        self,
        request: TransmitRequest,
        now: int,
        start_delay: int,
        duration: int,
    ) -> None:
        """Put ``request`` on the medium (called by the MAC's arbitrate).

        ``start_delay`` models pre-transmission latency the MAC charges
        (e.g. token rotation); ``duration`` is the airtime from
        transmission start to delivery. The commit (serialization point)
        fires after the header, the broadcast fan-out at the end.

        The request leaves the pending list *now* — a stale arbitration
        event firing at the end-of-frame cycle (before the finish event)
        must not see it as a contender and transmit it twice.
        """
        self._remove_pending(request)
        self._active.append(request)
        start = now + start_delay
        finish = start + duration
        self._busy_until = max(self._busy_until, finish)
        self._busy_cycles.add(duration)
        header = self.config.preamble_cycles + self.config.collision_detect_cycles
        self.sim.schedule_at(start + header, lambda: self._commit(request))
        self.sim.schedule_at(finish, lambda: self._finish(request))
        if self._pending:
            self._schedule_arbitration(finish)

    # ----------------------------------------------------------- internals

    def _schedule_arbitration(self, at: int) -> None:
        at = self._mac.clamp_arbitration(max(at, self.sim.now))
        if self._arbitration_scheduled_at is not None and (
            self._arbitration_scheduled_at <= at
        ):
            return
        self._arbitration_scheduled_at = at
        self.sim.schedule_at(at, self._arbitrate)

    def _arbitrate(self) -> None:
        self._arbitration_scheduled_at = None
        now = self.sim.now
        defer_until = self._mac.busy_defer(now)
        if defer_until is not None:
            self._schedule_arbitration(defer_until)
            return
        obs = self.obs
        if obs is None:
            self._pending = [r for r in self._pending if not r.cancelled]
        else:
            # Same filter, but every withdrawn request resolves its frame
            # span (orphan-span audit: cancelled frames must not dangle).
            kept: List[TransmitRequest] = []
            for request in self._pending:
                if request.cancelled:
                    obs.frame_cancelled(request, "withdrawn")
                else:
                    kept.append(request)
            self._pending = kept
        if not self._pending:
            return
        contenders = [r for r in self._pending if r.ready_time <= now]
        if not contenders:
            self._schedule_arbitration(min(r.ready_time for r in self._pending))
            return
        self._mac.arbitrate(now, contenders)

    def _commit(self, request: TransmitRequest) -> None:
        """Serialization point: the frame is now guaranteed to transmit."""
        obs = self.obs
        if request.cancelled:
            # Cancelled between arbitration and commit: the transmission is
            # squashed; the medium reservation stands (the slot is wasted).
            self._cancellations.add()
            if obs is not None:
                obs.frame_cancelled(request, "cancelled-before-commit")
            return
        request.committed = True
        if obs is not None:
            obs.frame_phase(request, "commit")
        if request.on_commit is not None:
            request.on_commit()

    def _finish(self, request: TransmitRequest) -> None:
        try:
            self._active.remove(request)
        except ValueError:
            pass
        if not request.committed:
            self._schedule_arbitration(self.sim.now)
            return
        self._successes.add()
        for handler in self._receivers.values():
            handler(request.frame)
        if request.on_delivered is not None:
            request.on_delivered()
        obs = self.obs
        if obs is not None:
            obs.frame_delivered(request)
        # The broadcast fan-out is complete and no receiver keeps frames
        # beyond its handler; recycle pooled frames through the freelist.
        # (Cancelled frames never reach here and simply fall to the GC.)
        WirelessFrame.release(request.frame)
        self._schedule_arbitration(self.sim.now)

    def _remove_pending(self, request: TransmitRequest) -> None:
        try:
            self._pending.remove(request)
        except ValueError:
            pass
