"""The shared wireless data channel with the BRS MAC and selective jamming.

Model
-----
The medium is a single broadcast resource. A node with a frame to send waits
until the medium is free. If exactly one node starts transmitting in a given
cycle, the frame occupies the medium for
``preamble + collision_detect + payload`` cycles, at the end of which every
node on the chip receives it. If two or more nodes start in the same cycle,
they discover the collision in the collision-detect slot, abort, and retry
after an exponential backoff (:class:`~repro.wireless.brs.BackoffPolicy`).

*Selective jamming* (paper Section III-C1): a directory that is mid-transition
for a line registers that line address with the channel; any frame for a
jammed line is negative-acked in the collision-detect slot exactly as if it
had collided, so the sender backs off and retries. An optional partial-address
mask models the paper's "false positives" (only some address bits visible in
the first cycle).

*Serialization point* (paper Section IV-C): the moment a frame survives the
collision-detect slot it is guaranteed to transmit. The channel invokes the
request's ``on_commit`` callback at that cycle — this is when a wireless
write may merge into the local cache — and delivers the broadcast to all
receivers when the payload finishes.

Requests are cancellable until their commit point, which the wireless-RMW
implementation relies on.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Set

from repro.config.system import WirelessConfig
from repro.engine.rng import DeterministicRng
from repro.engine.simulator import Simulator
from repro.stats.collectors import StatsRegistry
from repro.wireless.brs import BackoffPolicy
from repro.wireless.frames import WirelessFrame


class TransmitRequest:
    """One node's attempt to broadcast one frame.

    Attributes
    ----------
    frame:
        The frame to send.
    on_commit:
        Called at the serialization point (frame guaranteed to transmit).
    on_delivered:
        Called when the payload completes, after all receivers were invoked.
    """

    __slots__ = (
        "frame",
        "on_commit",
        "on_delivered",
        "ready_time",
        "failures",
        "cancelled",
        "committed",
    )

    def __init__(
        self,
        frame: WirelessFrame,
        on_commit: Optional[Callable[[], None]],
        on_delivered: Optional[Callable[[], None]],
        ready_time: int,
    ) -> None:
        self.frame = frame
        self.on_commit = on_commit
        self.on_delivered = on_delivered
        self.ready_time = ready_time
        self.failures = 0
        self.cancelled = False
        self.committed = False

    def cancel(self) -> bool:
        """Withdraw the frame; returns False if it already committed."""
        if self.committed:
            return False
        self.cancelled = True
        return True


class WirelessDataChannel:
    """Single shared 60 GHz broadcast medium with BRS arbitration."""

    def __init__(
        self,
        sim: Simulator,
        config: WirelessConfig,
        num_nodes: int,
        stats: StatsRegistry,
        rng: DeterministicRng,
        jam_address_bits: Optional[int] = None,
    ) -> None:
        self.sim = sim
        self.config = config
        self.num_nodes = num_nodes
        self.stats = stats
        #: Bits of the line address visible in the preamble for jam matching;
        #: None means exact matching (no false positives).
        self.jam_address_bits = jam_address_bits
        self._receivers: Dict[int, Callable[[WirelessFrame], None]] = {}
        self._pending: List[TransmitRequest] = []
        #: Lines whose data updates (jammable frames) are being NACKed,
        #: refcounted: ``jam``/``unjam`` nest, so a fault injector's jam
        #: storm overlapping a directory's own transition jam cannot lift
        #: the directory's jam early. Protocol use is always a matched
        #: non-nested pair per line, for which the behaviour is identical
        #: to the historical plain set.
        self._jammed_lines: Dict[int, int] = {}
        #: The sole arbitration winner currently occupying the medium
        #: (between its arbitration cycle and its finish event); observed
        #: by the online invariant checker's per-line quiescence predicate.
        self._active_request: Optional[TransmitRequest] = None
        self._busy_until = 0
        self._arbitration_scheduled_at: Optional[int] = None
        #: Observability hook (set by Observability.install(); None — the
        #: default — costs one attribute test per channel operation and
        #: nothing else; see repro.obs.hooks).
        self.obs = None
        self._backoff = [
            BackoffPolicy(
                config.backoff_base_cycles,
                config.backoff_max_exponent,
                rng.split(f"backoff-{node}"),
                node=node,
            )
            for node in range(num_nodes)
        ]
        self._attempts = stats.counter("wnoc.attempts")
        self._successes = stats.counter("wnoc.frames")
        self._collisions = stats.counter("wnoc.collisions")
        self._jams = stats.counter("wnoc.jams")
        self._cancellations = stats.counter("wnoc.cancellations")
        self._busy_cycles = stats.counter("wnoc.busy_cycles")

    # ------------------------------------------------------------------ API

    def register_receiver(
        self, node: int, handler: Callable[[WirelessFrame], None]
    ) -> None:
        """Attach the tile-side receive callback for ``node``.

        Every successful frame is delivered to *every* registered node,
        including the sender's own tile (whose directory slice may need it).
        """
        self._receivers[node] = handler

    def transmit(
        self,
        frame: WirelessFrame,
        on_commit: Optional[Callable[[], None]] = None,
        on_delivered: Optional[Callable[[], None]] = None,
    ) -> TransmitRequest:
        """Queue ``frame`` for broadcast; returns a cancellable handle."""
        request = TransmitRequest(frame, on_commit, on_delivered, self.sim.now)
        obs = self.obs
        if obs is not None:
            obs.frame_queued(request)
        self._pending.append(request)
        self._schedule_arbitration(self.sim.now)
        return request

    def jam(self, line: int, owner: int = -1) -> None:
        """Begin jamming data updates addressed to ``line`` (directory busy).

        Only *jammable* frames (cores' WirUpd) are affected; the jamming
        directory's own transition broadcasts always pass. ``owner`` is
        accepted for API symmetry and diagnostics only. Jams nest: the line
        stays jammed until every :meth:`jam` has been matched by an
        :meth:`unjam`.
        """
        self._jammed_lines[line] = self._jammed_lines.get(line, 0) + 1

    def unjam(self, line: int) -> None:
        """Release one jam on ``line``; senders succeed on retry once the
        last overlapping jam is lifted. Unjamming an unjammed line is a
        harmless no-op (mirrors the historical ``set.discard``)."""
        count = self._jammed_lines.get(line, 0)
        if count <= 1:
            self._jammed_lines.pop(line, None)
        else:
            self._jammed_lines[line] = count - 1

    def is_jammed(self, line: int) -> bool:
        """Would a jammable frame for ``line`` be NACKed right now?"""
        if self.jam_address_bits is None:
            return line in self._jammed_lines
        mask = (1 << self.jam_address_bits) - 1
        return any((line & mask) == (jammed & mask) for jammed in self._jammed_lines)

    def line_in_flight(self, line: int) -> bool:
        """True while any non-cancelled frame for ``line`` is queued or on
        the medium — the window in which copies of the line may legally
        disagree (a committed WirUpd merged at the sender but not yet
        delivered). Used by the online invariant checker."""
        active = self._active_request
        if active is not None and not active.cancelled and active.frame.line == line:
            return True
        return any(
            not r.cancelled and r.frame.line == line for r in self._pending
        )

    @property
    def collision_probability(self) -> float:
        """Fraction of transmission attempts that ended in a collision."""
        attempts = self._attempts.value
        return self._collisions.value / attempts if attempts else 0.0

    @property
    def idle(self) -> bool:
        return self.sim.now >= self._busy_until and not self._pending

    # ----------------------------------------------------------- internals

    def _schedule_arbitration(self, at: int) -> None:
        at = max(at, self._busy_until, self.sim.now)
        if self._arbitration_scheduled_at is not None and (
            self._arbitration_scheduled_at <= at
        ):
            return
        self._arbitration_scheduled_at = at
        self.sim.schedule_at(at, self._arbitrate)

    def _arbitrate(self) -> None:
        self._arbitration_scheduled_at = None
        now = self.sim.now
        if now < self._busy_until:
            self._schedule_arbitration(self._busy_until)
            return
        obs = self.obs
        if obs is None:
            self._pending = [r for r in self._pending if not r.cancelled]
        else:
            # Same filter, but every withdrawn request resolves its frame
            # span (orphan-span audit: cancelled frames must not dangle).
            kept: List[TransmitRequest] = []
            for request in self._pending:
                if request.cancelled:
                    obs.frame_cancelled(request, "withdrawn")
                else:
                    kept.append(request)
            self._pending = kept
        if not self._pending:
            return
        contenders = [r for r in self._pending if r.ready_time <= now]
        if not contenders:
            self._schedule_arbitration(min(r.ready_time for r in self._pending))
            return

        config = self.config
        header = config.preamble_cycles + config.collision_detect_cycles
        self._attempts.add(len(contenders))

        if len(contenders) > 1:
            # Simultaneous preambles: all discover the collision and back off.
            self._collisions.add(len(contenders))
            self._busy_until = now + header
            self._busy_cycles.add(header)
            self._back_off_cohort(contenders, header, obs)
            self._schedule_arbitration(self._busy_until)
            return

        request = contenders[0]
        if request.frame.jammable and self.is_jammed(request.frame.line):
            # The jamming directory NACKs in the collision-detect slot; the
            # sender cannot tell this from a real collision.
            self._jams.add()
            self._busy_until = now + header
            self._busy_cycles.add(header)
            if obs is not None:
                obs.frame_phase(request, "jammed")
            self._back_off(request)
            self._schedule_arbitration(self._busy_until)
            return

        # Sole uncontended transmitter: the frame will complete. Remove it
        # from the pending list *now* — a stale arbitration event firing at
        # the end-of-frame cycle (before the finish event) must not see it
        # as a contender and transmit it twice.
        self._remove_pending(request)
        self._active_request = request
        self._busy_until = now + config.frame_cycles
        self._busy_cycles.add(config.frame_cycles)
        self.sim.schedule_at(now + header, lambda: self._commit(request))
        self.sim.schedule_at(self._busy_until, lambda: self._finish(request))
        if self._pending:
            self._schedule_arbitration(self._busy_until)

    def _back_off_cohort(self, requests, header: int, obs) -> None:
        """Back off a whole collision cohort with batched bookkeeping.

        Per-request behaviour (failure bump, per-node RNG draw, obs events
        in collision→backoff order) is identical to calling
        :meth:`_back_off` on each request; the header constant, backoff
        table, and clock are fetched once for the cohort instead of per
        loser.
        """
        now = self.sim.now
        backoff = self._backoff
        num_nodes = self.num_nodes
        for request in requests:
            if obs is not None:
                obs.frame_phase(request, "collision")
            request.failures += 1
            policy = backoff[request.frame.src % num_nodes]
            delay = policy.delay_for_attempt(request.failures)
            if obs is not None:
                obs.frame_phase(request, "backoff")
            request.ready_time = now + header + delay

    def _back_off(self, request: TransmitRequest) -> None:
        request.failures += 1
        policy = self._backoff[request.frame.src % self.num_nodes]
        delay = policy.delay_for_attempt(request.failures)
        obs = self.obs
        if obs is not None:
            obs.frame_phase(request, "backoff")
        header = self.config.preamble_cycles + self.config.collision_detect_cycles
        request.ready_time = self.sim.now + header + delay

    def _commit(self, request: TransmitRequest) -> None:
        """Serialization point: the frame is now guaranteed to transmit."""
        obs = self.obs
        if request.cancelled:
            # Cancelled between arbitration and commit: the transmission is
            # squashed; the medium reservation stands (the slot is wasted).
            self._cancellations.add()
            if obs is not None:
                obs.frame_cancelled(request, "cancelled-before-commit")
            return
        request.committed = True
        if obs is not None:
            obs.frame_phase(request, "commit")
        if request.on_commit is not None:
            request.on_commit()

    def _finish(self, request: TransmitRequest) -> None:
        if self._active_request is request:
            self._active_request = None
        if not request.committed:
            self._schedule_arbitration(self.sim.now)
            return
        self._successes.add()
        for handler in self._receivers.values():
            handler(request.frame)
        if request.on_delivered is not None:
            request.on_delivered()
        obs = self.obs
        if obs is not None:
            obs.frame_delivered(request)
        # The broadcast fan-out is complete and no receiver keeps frames
        # beyond its handler; recycle pooled frames through the freelist.
        # (Cancelled frames never reach here and simply fall to the GC.)
        WirelessFrame.release(request.frame)
        self._schedule_arbitration(self.sim.now)

    def _remove_pending(self, request: TransmitRequest) -> None:
        try:
            self._pending.remove(request)
        except ValueError:
            pass
