"""The 90 GHz tone channel and the ToneAck primitive.

ToneAck (paper Section III-C2): when a directory broadcasts a frame that
requires a global acknowledgment, every *other* node raises a continuous tone
on the tone channel, performs its local task, and then drops its tone. The
initiator simply monitors the channel; silence means every node has finished.

The model keeps one :class:`ToneAckOperation` per outstanding global ack
(in practice the protocol allows one at a time per line, enforced by
jamming). A node's "raise then drop" collapses to decrementing a participant
count when its task completes; the operation fires its callback
``tone_cycles`` after the last participant drops (the latency to detect
silence, Table III: 1 cycle).
"""

from __future__ import annotations

from typing import Callable, Dict, Set

from repro.engine.simulator import Simulator
from repro.stats.collectors import StatsRegistry


class ToneAckOperation:
    """One in-flight global acknowledgment."""

    __slots__ = ("key", "remaining", "on_silent", "_channel")

    def __init__(
        self,
        key: int,
        participants: Set[int],
        on_silent: Callable[[], None],
        channel: "ToneChannel",
    ) -> None:
        self.key = key
        self.remaining = set(participants)
        self.on_silent = on_silent
        self._channel = channel

    def drop(self, node: int) -> None:
        """Node ``node`` finished its task and removes its tone."""
        self.remaining.discard(node)
        if not self.remaining:
            self._channel._complete(self)

    @property
    def silent(self) -> bool:
        return not self.remaining


class ToneChannel:
    """Bookkeeping for ToneAck operations on the 90 GHz channel."""

    def __init__(
        self,
        sim: Simulator,
        tone_cycles: int,
        stats: StatsRegistry,
        errors=None,
    ) -> None:
        self.sim = sim
        self.tone_cycles = tone_cycles
        #: Optional :class:`~repro.wireless.errors.ChannelErrorModel`; when
        #: set, a tone drop may go unheard once and be re-signalled after
        #: ``tone_retry_cycles`` (delayed, never lost).
        self._errors = errors
        self._operations: Dict[int, ToneAckOperation] = {}
        #: Observability hook (set by Observability.install(); None — the
        #: default — costs one attribute test per operation and nothing
        #: else; see repro.obs.hooks).
        self.obs = None
        self._started = stats.counter("tone.operations")
        self._drops = stats.counter("tone.drops")

    def begin(
        self, key: int, participants: Set[int], on_silent: Callable[[], None]
    ) -> ToneAckOperation:
        """Start a ToneAck keyed by ``key`` (the line address).

        ``participants`` is the set of nodes expected to raise a tone — in
        the paper, all nodes except the initiator. If it is empty, the
        channel is already silent and the callback fires after the detection
        latency.
        """
        if key in self._operations:
            raise KeyError(f"ToneAck already in flight for key 0x{key:x}")
        self._started.add()
        obs = self.obs
        if obs is not None:
            obs.tone_open(key, len(participants))
        operation = ToneAckOperation(key, participants, on_silent, self)
        self._operations[key] = operation
        if operation.silent:
            self._complete(operation)
        return operation

    def drop(self, key: int, node: int, _retry: bool = False) -> None:
        """Node ``node`` drops its tone for the operation keyed ``key``."""
        operation = self._operations.get(key)
        if operation is None:
            return  # late drop after completion: harmless, tone already off
        errors = self._errors
        if errors is not None and not _retry and errors.misses_tone():
            # The initiator missed this node's tone transition; the node
            # re-signals after a fixed delay. Exactly one retry — a second
            # miss is structurally impossible — so ToneAck completion is
            # delayed, never lost (the fuzz liveness oracle audits this).
            self.sim.schedule(
                errors.config.tone_retry_cycles,
                lambda: self.drop(key, node, _retry=True),
            )
            return
        self._drops.add()
        obs = self.obs
        if obs is not None:
            obs.tone_drop(key, node)
        operation.drop(node)

    def in_flight(self, key: int) -> bool:
        return key in self._operations

    def _complete(self, operation: ToneAckOperation) -> None:
        if self._operations.get(operation.key) is not operation:
            return
        del self._operations[operation.key]
        obs = self.obs
        if obs is not None:
            obs.tone_close(operation.key)
        self.sim.schedule(self.tone_cycles, operation.on_silent)
