"""Pluggable wireless MAC backend registry.

A *MAC backend* owns the medium-access discipline of the shared wireless
data channel: who may transmit when several nodes contend, what happens
after a collision or a NACK (jam / corrupted frame), and what per-channel
state that policy needs.  :class:`~repro.wireless.channel.WirelessDataChannel`
keeps everything MAC-independent — the pending queue, selective jamming,
the serialization-point commit, broadcast delivery — and delegates every
contention decision to the :class:`MacState` built from whatever backend
``config.mac`` names, so every harness (litmus, fuzz, figures, campaigns,
both simulation kernels) is generic over MACs exactly as it is over
coherence protocols (:mod:`repro.coherence.backend`, whose registry shape
this module mirrors via :class:`repro.config.registry.Registry`).

Registering a MAC is one call::

    register_mac(MacBackend(
        name="my_mac",
        description="...",
        collision_free=True,
        uses_backoff=False,
        multi_channel=False,
        state_factory=MyMacState,
    ))

Contract highlights (docs/MAC.md has the full version):

* ``state_factory(channel)`` builds one :class:`MacState` per channel.
  All RNG streams must come from labelled splits of ``channel.rng``
  (splitting never advances the parent stream, so adding a MAC cannot
  perturb any other backend's draws).
* :meth:`MacState.arbitrate` receives the ready, non-cancelled
  contenders in queue order and must either grant via
  ``channel.grant(...)`` or defer (bump ``ready_time`` /
  ``channel._busy_until``) and reschedule arbitration — never both for
  the same request, and never an unbounded defer while requests are
  pending (the fuzz liveness oracle audits exactly this).
* ``uses_backoff`` backends expose per-node :class:`BackoffPolicy`
  objects as ``state.backoff_policies`` — the observability installer,
  the fuzz backoff scrambler, and machine snapshots all iterate that
  (possibly empty) tuple.
* Extra MAC state beyond the backoff RNG streams must round-trip
  through :meth:`MacState.snapshot` / :meth:`MacState.restore` so trace
  replay snapshot/resume stays byte-identical.
* New counters must be registered lazily inside the state (only for the
  MACs that use them): the golden digests hash the *full* counter map,
  so an unconditionally registered zero counter would shift every
  baseline digest.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.config.registry import Registry
from repro.engine.rng import DeterministicRng


class BackoffPolicy:
    """Per-node deterministic exponential backoff state (BRS MAC).

    After a collision (or a NACK, which a transmitter cannot distinguish
    from a collision), a node waits a uniformly random number of cycles
    drawn from a window that doubles with each consecutive failure, up
    to a cap.
    """

    __slots__ = ("base", "max_exponent", "node", "obs", "_rng")

    def __init__(
        self,
        base: int,
        max_exponent: int,
        rng: DeterministicRng,
        node: int = -1,
    ) -> None:
        self.base = base
        self.max_exponent = max_exponent
        #: The node whose transceiver this policy models (diagnostics only).
        self.node = node
        #: Observability hook (set by Observability.install(); None — the
        #: default — costs one attribute test per drawn delay and nothing
        #: else; see repro.obs.hooks). The hook observes the drawn delay
        #: *after* the RNG draw, so tracing never perturbs the stream.
        self.obs = None
        self._rng = rng

    def delay_for_attempt(self, failures: int) -> int:
        """Backoff delay after the ``failures``-th consecutive failure (>=1).

        The delay is uniform in ``[1, base * 2**(exponent-1)]`` where the
        exponent grows with the failure count up to ``max_exponent``, so the
        result is always bounded by ``base * 2**max_exponent`` and fully
        determined by the policy's RNG stream. ``max_exponent == 0`` (legal
        per :class:`~repro.config.system.WirelessConfig`) degenerates to a
        fixed window of ``base`` cycles instead of shifting by -1.
        """
        exponent = min(max(failures, 1), max(self.max_exponent, 1))
        window = self.base << (exponent - 1)
        delay = 1 + self._rng.randint(0, window - 1)
        obs = self.obs
        if obs is not None:
            obs.brs_backoff(self.node, failures, delay)
        return delay


# ------------------------------------------------------------- the backend


@dataclass(frozen=True)
class MacBackend:
    """Everything the channel needs to instantiate one MAC discipline."""

    name: str
    description: str
    #: True when the discipline can never produce simultaneous preambles
    #: (``wnoc.collisions`` provably stays 0 — the differential harness
    #: asserts it).
    collision_free: bool
    #: True when the state exposes per-node :class:`BackoffPolicy` objects
    #: (obs hooks, the fuzz backoff scrambler, and snapshots consume them).
    uses_backoff: bool
    #: True when the medium is statically partitioned into sub-channels
    #: that can carry frames concurrently (FDMA-style).
    multi_channel: bool
    #: ``(channel) -> MacState``; receives the fully initialised
    #: :class:`~repro.wireless.channel.WirelessDataChannel`.
    state_factory: Callable = field(repr=False, default=None)


def _load_builtins() -> None:
    """Import the plugin modules that self-register the stock MACs."""
    # Imported for their registration side effects; the classic BRS MAC
    # is declared below in this module.
    from repro.wireless import mac_csma  # noqa: F401
    from repro.wireless import mac_fdma  # noqa: F401
    from repro.wireless import mac_token  # noqa: F401


_REGISTRY: Registry = Registry("MAC backend", _load_builtins)

#: The MAC every config defaults to — the paper's BRS discipline. Sweep
#: labels and campaign manifests only mention a MAC when it differs from
#: this, which is what keeps every pre-MAC-zoo label and digest stable.
DEFAULT_MAC = "brs"


def register_mac(backend: MacBackend) -> MacBackend:
    """Add ``backend`` to the registry (idempotent for identical re-adds)."""
    return _REGISTRY.register(backend.name, backend)


def get_mac(name: str) -> MacBackend:
    """Look up a MAC backend; raises ``ValueError`` naming the known set."""
    return _REGISTRY.get(name)


def mac_names() -> Tuple[str, ...]:
    """Registered MAC names, sorted for stable CLI/docs output."""
    return _REGISTRY.names()


def registered_macs() -> Tuple[MacBackend, ...]:
    """All registered MAC backends, sorted by name."""
    return _REGISTRY.values()


# --------------------------------------------------------------- the state


class MacState:
    """Base class for per-channel MAC discipline state.

    The default hook implementations reproduce the single-medium gating
    the channel historically hardcoded; subclasses override
    :meth:`arbitrate` (mandatory) and, for multi-channel media, the two
    busy-gating hooks.
    """

    #: Per-node :class:`BackoffPolicy` objects, or ``()`` for MACs
    #: without one (token, FDMA). Obs install, the fuzz scrambler, and
    #: snapshots iterate this.
    backoff_policies: Tuple[BackoffPolicy, ...] = ()

    def __init__(self, channel) -> None:
        self.channel = channel

    # -- busy gating ----------------------------------------------------

    def busy_defer(self, now: int) -> Optional[int]:
        """Cycle to defer arbitration to, or None to arbitrate now."""
        busy_until = self.channel._busy_until
        return busy_until if now < busy_until else None

    def clamp_arbitration(self, at: int) -> int:
        """Earliest useful arbitration cycle for a request ready at ``at``."""
        return max(at, self.channel._busy_until)

    # -- the discipline -------------------------------------------------

    def max_airtime(self) -> int:
        """Worst-case cycles from a grant to the frame's delivery.

        The coherence protocol sizes its jam-settle windows from this (a
        frame past its collision-detect slot still delivers up to this many
        cycles later even though new frames are already being NACKed), and
        the consistency validator uses it as the write-visibility lag —
        a MAC that stretches airtime (FDMA's 1/k sub-channels) or delays
        transmission start after the grant (token rotation) MUST override
        it or new sharers can snapshot a line while a committed update is
        still in the air.
        """
        return self.channel.config.frame_cycles

    def arbitrate(self, now: int, contenders: List) -> None:
        """Resolve one contention round (``contenders`` is non-empty)."""
        raise NotImplementedError

    def nack(self, request, now: int, header: int) -> None:
        """Retry policy after a NACK (jam or corrupted frame).

        Default: retry one cycle after the NACK slot — MACs whose
        fairness comes from the grant order itself (token rotation, FDMA
        FIFO) need no randomised backoff.
        """
        request.failures += 1
        request.ready_time = now + header + 1

    # -- snapshot / replay ----------------------------------------------

    def snapshot(self) -> Dict:
        """Extra MAC state beyond the backoff RNG streams (JSON-safe)."""
        return {}

    def restore(self, payload: Dict) -> None:
        """Inverse of :meth:`snapshot`."""


class BrsMacState(MacState):
    """The paper's BRS MAC: collide in the preamble, back off exponentially.

    Behaviour (event schedule, RNG draw order, counter updates, obs event
    order) is bit-identical to the pre-refactor hardcoded channel — the
    golden digests pin this.
    """

    def __init__(self, channel) -> None:
        super().__init__(channel)
        config = channel.config
        self.backoff_policies = tuple(
            BackoffPolicy(
                config.backoff_base_cycles,
                config.backoff_max_exponent,
                channel.rng.split(f"backoff-{node}"),
                node=node,
            )
            for node in range(channel.num_nodes)
        )

    def arbitrate(self, now: int, contenders: List) -> None:
        channel = self.channel
        obs = channel.obs
        config = channel.config
        header = config.preamble_cycles + config.collision_detect_cycles
        channel._attempts.add(len(contenders))

        if len(contenders) > 1:
            # Simultaneous preambles: all discover the collision, back off.
            channel._collisions.add(len(contenders))
            channel._busy_until = now + header
            channel._busy_cycles.add(header)
            self._back_off_cohort(contenders, header, obs)
            channel._schedule_arbitration(channel._busy_until)
            return

        request = contenders[0]
        if channel._nacked(request):
            # Jam or corrupted preamble: NACKed in the collision-detect
            # slot; the sender cannot tell this from a real collision.
            channel._busy_until = now + header
            channel._busy_cycles.add(header)
            self.nack(request, now, header)
            channel._schedule_arbitration(channel._busy_until)
            return

        channel.grant(request, now, 0, config.frame_cycles)

    def nack(self, request, now: int, header: int) -> None:
        request.failures += 1
        channel = self.channel
        policy = self.backoff_policies[request.frame.src % channel.num_nodes]
        delay = policy.delay_for_attempt(request.failures)
        obs = channel.obs
        if obs is not None:
            obs.frame_phase(request, "backoff")
        request.ready_time = now + header + delay

    def _back_off_cohort(self, requests, header: int, obs) -> None:
        """Back off a whole collision cohort with batched bookkeeping.

        Per-request behaviour (failure bump, per-node RNG draw, obs events
        in collision→backoff order) is identical to calling :meth:`nack`
        on each request; the header constant, backoff table, and clock are
        fetched once for the cohort instead of per loser — the form both
        simulation kernels share, so the heap and batched kernels stay
        digest-identical.
        """
        channel = self.channel
        now = channel.sim.now
        backoff = self.backoff_policies
        num_nodes = channel.num_nodes
        for request in requests:
            if obs is not None:
                obs.frame_phase(request, "collision")
            request.failures += 1
            policy = backoff[request.frame.src % num_nodes]
            delay = policy.delay_for_attempt(request.failures)
            if obs is not None:
                obs.frame_phase(request, "backoff")
            request.ready_time = now + header + delay


register_mac(
    MacBackend(
        name="brs",
        description=(
            "BRS: collision detection in the preamble slot plus per-node "
            "exponential backoff (the source paper's MAC)."
        ),
        collision_free=False,
        uses_backoff=True,
        multi_channel=False,
        state_factory=BrsMacState,
    )
)
