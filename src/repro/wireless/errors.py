"""Seeded wireless channel-error model.

Models the two loss classes of a real mm-wave link that the ideal channel
abstracts away, as *seeded, deterministic* perturbations:

* **Frame corruption** — with probability ``frame_corruption_prob`` a
  frame's preamble/payload arrives garbled and is NACKed in the
  collision-detect slot. The sender cannot distinguish this from a
  collision or a jam, so the retransmit path is the MAC's ordinary NACK
  policy — the exact machinery the fuzz liveness oracles already audit.
* **Missed tone** — with probability ``missed_tone_prob`` a node's
  tone-drop goes unheard by the initiator and is re-signalled
  ``tone_retry_cycles`` later. The retry is unconditional (one miss per
  drop, never a permanent loss), so ToneAck completion is delayed but
  guaranteed.

Determinism and digest policy: all draws come from one dedicated labelled
RNG split (``channel-errors``), created only when the model is enabled —
a disabled model performs **zero** draws and registers **zero** counters,
so every pre-error-model golden digest is untouched. Corruption is
additionally capped after :data:`MAX_CORRUPTIONS` failures of the same
request, making liveness a structural property rather than a
probabilistic one.
"""

from __future__ import annotations

from repro.config.system import ChannelErrorConfig
from repro.engine.rng import DeterministicRng
from repro.stats.collectors import StatsRegistry

#: A request that has already failed this many times is never corrupted
#: again — retransmit liveness must not depend on RNG luck.
MAX_CORRUPTIONS = 4


class ChannelErrorModel:
    """Shared error source for the data channel and the tone channel."""

    __slots__ = ("config", "_rng", "_corrupted", "_missed")

    def __init__(
        self,
        config: ChannelErrorConfig,
        rng: DeterministicRng,
        stats: StatsRegistry,
    ) -> None:
        self.config = config
        self._rng = rng
        self._corrupted = stats.counter("wnoc.corrupted")
        self._missed = stats.counter("tone.missed")

    def corrupts_frame(self, failures: int) -> bool:
        """Draw whether the frame garbles in flight (NACK in CD slot)."""
        probability = self.config.frame_corruption_prob
        if probability <= 0.0 or failures >= MAX_CORRUPTIONS:
            return False
        if self._rng.random() < probability:
            self._corrupted.add()
            return True
        return False

    def misses_tone(self) -> bool:
        """Draw whether a tone drop goes unheard (re-signalled later)."""
        probability = self.config.missed_tone_prob
        if probability <= 0.0:
            return False
        if self._rng.random() < probability:
            self._missed.add()
            return True
        return False
