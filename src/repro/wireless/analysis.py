"""Analytical models of the wireless channel.

Closed-form first-order estimates that complement the simulator: channel
capacity, offered load, slotted-contention collision probability, and the
expected cost of a wireless write under load. The test suite cross-checks
these against the event-driven channel, and the harness uses them to sanity
check measured collision probabilities (a measured value wildly off the
analytical curve indicates a workload or MAC modelling bug).

The contention model is the classic slotted-ALOHA-style approximation: with
``n`` nodes each attempting a frame in a slot with probability ``p``, a
given attempt succeeds when no other node attempts in the same slot.
BRS's collision-detect slot makes collisions cheap (2 cycles), which the
expected-cost model accounts for.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.config.system import WirelessConfig


@dataclass(frozen=True)
class ChannelLoadEstimate:
    """Outputs of :func:`estimate_channel`. Rates are per cycle."""

    offered_load: float          # frames requested per cycle (all nodes)
    capacity: float              # max successful frames per cycle
    utilization: float           # offered / capacity
    collision_probability: float  # P(an attempt collides)
    expected_write_cycles: float  # mean cycles from request to commit


def channel_capacity(config: WirelessConfig) -> float:
    """Successful frames per cycle when exactly one node ever transmits."""
    return 1.0 / config.frame_cycles


def collision_probability(num_contenders: float) -> float:
    """P(attempt collides) with ``num_contenders`` average ready senders.

    Poisson approximation of the slotted medium: an attempt succeeds iff no
    other sender is ready in the same arbitration slot.
    """
    others = max(0.0, num_contenders - 1.0)
    return 1.0 - math.exp(-others)


def expected_write_cycles(
    config: WirelessConfig, num_contenders: float, max_rounds: int = 12
) -> float:
    """Mean cycles from transmit request to the commit point.

    Models repeated rounds of (attempt, maybe collide, back off) with the
    configured exponential backoff, truncated at ``max_rounds``.
    """
    header = config.preamble_cycles + config.collision_detect_cycles
    p_collide = collision_probability(num_contenders)
    total = 0.0
    survive = 1.0
    for round_index in range(max_rounds):
        # Cost of a failed round: the header slot plus the mean backoff.
        exponent = min(round_index + 1, config.backoff_max_exponent)
        window = config.backoff_base_cycles << (exponent - 1)
        mean_backoff = 1 + (window - 1) / 2.0
        success_here = survive * (1.0 - p_collide)
        total += success_here * (round_index * (header + mean_backoff) + header)
        survive *= p_collide
    # Truncation mass: charge the final round's cost.
    total += survive * max_rounds * (header + config.backoff_base_cycles)
    return total


def estimate_channel(
    config: WirelessConfig,
    writes_per_cycle: float,
) -> ChannelLoadEstimate:
    """First-order channel state for a machine-wide wireless write rate."""
    capacity = channel_capacity(config)
    utilization = writes_per_cycle / capacity if capacity else float("inf")
    # Average ready contenders in an arbitration slot grows with queueing:
    # below saturation it is roughly the offered load per slot; beyond it,
    # queues build without bound and we report the saturated value.
    contenders = writes_per_cycle * config.frame_cycles
    if utilization >= 1.0:
        contenders = max(contenders, 2.0)
    p_collide = collision_probability(1.0 + contenders)
    return ChannelLoadEstimate(
        offered_load=writes_per_cycle,
        capacity=capacity,
        utilization=utilization,
        collision_probability=p_collide,
        expected_write_cycles=expected_write_cycles(config, 1.0 + contenders),
    )


def tone_ack_latency(num_nodes: int, config: WirelessConfig, slowest_task: int) -> int:
    """Lower bound on a ToneAck's completion time.

    The tone is silent once the slowest participant finishes its task; the
    initiator then needs ``tone_cycles`` to detect silence. Node count does
    not appear: that is the primitive's whole point (paper III-C2).
    """
    del num_nodes  # documented: ToneAck cost is independent of node count
    return slowest_task + config.tone_cycles
