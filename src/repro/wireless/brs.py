"""Exponential backoff policy of the BRS MAC protocol.

After a collision (or a jam, which a transmitter cannot distinguish from a
collision), a node waits a uniformly random number of cycles drawn from a
window that doubles with each consecutive failure, up to a cap.
"""

from __future__ import annotations

from repro.engine.rng import DeterministicRng


class BackoffPolicy:
    """Per-node deterministic exponential backoff state."""

    __slots__ = ("base", "max_exponent", "node", "obs", "_rng")

    def __init__(
        self,
        base: int,
        max_exponent: int,
        rng: DeterministicRng,
        node: int = -1,
    ) -> None:
        self.base = base
        self.max_exponent = max_exponent
        #: The node whose transceiver this policy models (diagnostics only).
        self.node = node
        #: Observability hook (set by Observability.install(); None — the
        #: default — costs one attribute test per drawn delay and nothing
        #: else; see repro.obs.hooks). The hook observes the drawn delay
        #: *after* the RNG draw, so tracing never perturbs the stream.
        self.obs = None
        self._rng = rng

    def delay_for_attempt(self, failures: int) -> int:
        """Backoff delay after the ``failures``-th consecutive failure (>=1).

        The delay is uniform in ``[1, base * 2**(exponent-1)]`` where the
        exponent grows with the failure count up to ``max_exponent``, so the
        result is always bounded by ``base * 2**max_exponent`` and fully
        determined by the policy's RNG stream. ``max_exponent == 0`` (legal
        per :class:`~repro.config.system.WirelessConfig`) degenerates to a
        fixed window of ``base`` cycles instead of shifting by -1.
        """
        exponent = min(max(failures, 1), max(self.max_exponent, 1))
        window = self.base << (exponent - 1)
        delay = 1 + self._rng.randint(0, window - 1)
        obs = self.obs
        if obs is not None:
            obs.brs_backoff(self.node, failures, delay)
        return delay
