"""Deprecated shim: BRS MAC internals moved to :mod:`repro.wireless.mac`.

The BRS discipline is now one pluggable MAC backend among several
(``token``, ``csma_slotted``, ``fdma`` — see docs/MAC.md), and its
:class:`~repro.wireless.mac.BackoffPolicy` lives with the registry. This
module re-exports the moved names with a :class:`DeprecationWarning` (PEP
562) so direct ``from repro.wireless.brs import BackoffPolicy`` imports
keep working for one deprecation cycle.
"""

from __future__ import annotations

import warnings

_MOVED = ("BackoffPolicy",)


def __getattr__(name: str):
    if name in _MOVED:
        warnings.warn(
            f"repro.wireless.brs.{name} moved to repro.wireless.mac.{name}; "
            "the repro.wireless.brs shim will be removed",
            DeprecationWarning,
            stacklevel=2,
        )
        from repro.wireless import mac

        return getattr(mac, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


def __dir__():
    return sorted(list(globals()) + list(_MOVED))
