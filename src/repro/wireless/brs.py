"""Exponential backoff policy of the BRS MAC protocol.

After a collision (or a jam, which a transmitter cannot distinguish from a
collision), a node waits a uniformly random number of cycles drawn from a
window that doubles with each consecutive failure, up to a cap.
"""

from __future__ import annotations

from repro.engine.rng import DeterministicRng


class BackoffPolicy:
    """Per-node deterministic exponential backoff state."""

    __slots__ = ("base", "max_exponent", "_rng")

    def __init__(self, base: int, max_exponent: int, rng: DeterministicRng) -> None:
        self.base = base
        self.max_exponent = max_exponent
        self._rng = rng

    def delay_for_attempt(self, failures: int) -> int:
        """Backoff delay after the ``failures``-th consecutive failure (>=1)."""
        exponent = min(max(failures, 1), self.max_exponent)
        window = self.base << (exponent - 1)
        return 1 + self._rng.randint(0, window - 1)
