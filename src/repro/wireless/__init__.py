"""Wireless network on chip.

Two channels, exactly as in the paper (Section III-A):

* the **data channel** (:class:`~repro.wireless.channel.WirelessDataChannel`)
  — a single shared broadcast medium whose medium-access discipline is a
  pluggable MAC backend (:mod:`repro.wireless.mac`; the default ``brs``
  reproduces the paper's protocol: 1-cycle preamble, 1-cycle collision
  detect, 4-cycle payload, exponential backoff on collision) — extended
  with the paper's *Selective Data-Channel Jamming* primitive and an
  optional seeded channel-error model (:mod:`repro.wireless.errors`); and
* the **tone channel** (:class:`~repro.wireless.tone.ToneChannel`) — the
  special-purpose acknowledgment channel behind the *ToneAck* primitive.
"""

from repro.wireless.channel import TransmitRequest, WirelessDataChannel
from repro.wireless.errors import ChannelErrorModel
from repro.wireless.frames import WirelessFrame
from repro.wireless.mac import (
    BackoffPolicy,
    MacBackend,
    get_mac,
    mac_names,
    register_mac,
    registered_macs,
)
from repro.wireless.tone import ToneAckOperation, ToneChannel

__all__ = [
    "BackoffPolicy",
    "ChannelErrorModel",
    "MacBackend",
    "ToneAckOperation",
    "ToneChannel",
    "TransmitRequest",
    "WirelessDataChannel",
    "WirelessFrame",
    "get_mac",
    "mac_names",
    "register_mac",
    "registered_macs",
]
