"""Wireless network on chip.

Two channels, exactly as in the paper (Section III-A):

* the **data channel** (:class:`~repro.wireless.channel.WirelessDataChannel`)
  — a single shared broadcast medium running the BRS MAC protocol: 1-cycle
  preamble, 1-cycle collision detect, 4-cycle payload, exponential backoff on
  collision — extended with the paper's *Selective Data-Channel Jamming*
  primitive; and
* the **tone channel** (:class:`~repro.wireless.tone.ToneChannel`) — the
  special-purpose acknowledgment channel behind the *ToneAck* primitive.
"""

from repro.wireless.brs import BackoffPolicy
from repro.wireless.channel import TransmitRequest, WirelessDataChannel
from repro.wireless.frames import WirelessFrame
from repro.wireless.tone import ToneAckOperation, ToneChannel

__all__ = [
    "BackoffPolicy",
    "ToneAckOperation",
    "ToneChannel",
    "TransmitRequest",
    "WirelessDataChannel",
    "WirelessFrame",
]
