"""Plain-text table rendering for the benchmark harness.

The paper's figures are bar charts over applications; the harness prints the
same data as aligned text tables so `pytest benchmarks/ --benchmark-only`
output is directly comparable against the figures.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Union

from repro.stats.collectors import Histogram

Number = Union[int, float]

#: Percentiles reported for latency distributions (median, tail, deep tail).
LATENCY_PERCENTILES = (50.0, 95.0, 99.0)


def percentile_summary(hist: Histogram) -> Dict[str, float]:
    """p50/p95/p99 (plus mean/min/max) for a bucketed :class:`Histogram`.

    Returns an empty dict when nothing was recorded so callers can skip the
    row instead of printing zeros that look like measurements.
    """
    if hist.count == 0:
        return {}
    out: Dict[str, float] = {
        "count": float(hist.count),
        "mean": hist.mean,
        "min": float(hist.min or 0),
        "max": float(hist.max or 0),
    }
    for p in LATENCY_PERCENTILES:
        out[f"p{p:g}"] = hist.percentile(p)
    return out


def format_percentile_table(
    named_hists: Dict[str, Histogram], title: str = "latency percentiles"
) -> str:
    """Render one row per histogram: count, mean, p50/p95/p99, min, max."""
    headers = ["name", "count", "mean", "p50", "p95", "p99", "min", "max"]
    rows: List[Sequence[Union[str, Number]]] = []
    for name, hist in named_hists.items():
        summary = percentile_summary(hist)
        if not summary:
            continue
        rows.append(
            [
                name,
                int(summary["count"]),
                summary["mean"],
                summary["p50"],
                summary["p95"],
                summary["p99"],
                int(summary["min"]),
                int(summary["max"]),
            ]
        )
    return format_table(headers, rows, title=title, precision=1)


def normalize(values: Dict[str, Number], reference: Dict[str, Number]) -> Dict[str, float]:
    """Normalize ``values`` per-key against ``reference`` (paper-style bars).

    Keys with a zero or missing reference normalize to 0.0 rather than
    raising, since empty categories occur in tiny test runs.
    """
    out: Dict[str, float] = {}
    for key, value in values.items():
        ref = reference.get(key, 0)
        out[key] = value / ref if ref else 0.0
    return out


def _format_cell(value, precision: int) -> str:
    if isinstance(value, float):
        return f"{value:.{precision}f}"
    return str(value)


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[Union[str, Number]]],
    title: str = "",
    precision: int = 3,
) -> str:
    """Render an aligned monospace table.

    Parameters
    ----------
    headers:
        Column names.
    rows:
        Row cell values; floats are rendered with ``precision`` decimals.
    title:
        Optional heading printed above the table.
    """
    text_rows: List[List[str]] = [
        [_format_cell(cell, precision) for cell in row] for row in rows
    ]
    widths = [len(h) for h in headers]
    for row in text_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def fmt_line(cells: Sequence[str]) -> str:
        return "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(cells)).rstrip()

    lines = []
    if title:
        lines.append(title)
        lines.append("=" * len(title))
    lines.append(fmt_line(headers))
    lines.append(fmt_line(["-" * w for w in widths]))
    lines.extend(fmt_line(row) for row in text_rows)
    return "\n".join(lines)
