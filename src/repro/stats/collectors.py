"""Low-overhead statistic collectors.

These are deliberately plain classes with integer/float fields rather than
numpy arrays: each simulated event touches at most a handful of them, and
attribute increments are faster than array indexing at this scale.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple


class Counter:
    """A named monotonically increasing event count."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def add(self, amount: int = 1) -> None:
        self.value += amount

    def reset(self) -> None:
        self.value = 0

    def merge(self, other: "Counter") -> None:
        """Fold another counter into this one (for cross-core totals)."""
        self.value += other.value

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Counter({self.name}={self.value})"


class LatencyStat:
    """Accumulates a latency distribution: count, sum, min, max.

    The paper reports *total* memory latency (Figure 7), so the sum is the
    primary output; mean/min/max come along for diagnostics.
    """

    __slots__ = ("name", "count", "total", "min", "max")

    def __init__(self, name: str) -> None:
        self.name = name
        self.count = 0
        self.total = 0
        self.min: Optional[int] = None
        self.max: Optional[int] = None

    def record(self, value: int) -> None:
        self.count += 1
        self.total += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def merge(self, other: "LatencyStat") -> None:
        """Fold another accumulator into this one (for cross-core totals)."""
        self.count += other.count
        self.total += other.total
        if other.min is not None and (self.min is None or other.min < self.min):
            self.min = other.min
        if other.max is not None and (self.max is None or other.max > self.max):
            self.max = other.max


class Histogram:
    """Power-of-two bucketed histogram with percentile estimates.

    :class:`LatencyStat` keeps only count/sum/min/max, which is enough for
    the paper's Figure 7 (total memory latency) but says nothing about the
    *shape* of the distribution — a protocol change that helps the median
    while wrecking the tail looks identical. This collector buckets each
    value by its bit length (bucket ``i`` holds values in
    ``[2**(i-1), 2**i - 1]``, bucket 0 holds 0), so recording is two integer
    ops and the memory footprint is ~64 ints regardless of sample count.

    Percentiles are estimated from the bucket geometry: within the bucket
    containing the requested rank the value is linearly interpolated, which
    bounds the relative error by the bucket width (a factor of 2 worst case,
    far less in practice for smooth latency distributions).
    """

    __slots__ = ("name", "buckets", "count", "total", "min", "max")

    #: Enough buckets for values up to 2**63 (cycle counts never exceed it).
    NUM_BUCKETS = 64

    def __init__(self, name: str) -> None:
        self.name = name
        self.buckets: List[int] = [0] * self.NUM_BUCKETS
        self.count = 0
        self.total = 0
        self.min: Optional[int] = None
        self.max: Optional[int] = None

    def record(self, value: int) -> None:
        if value < 0:
            value = 0
        self.buckets[value.bit_length()] += 1
        self.count += 1
        self.total += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def percentile(self, p: float) -> float:
        """Estimated value at percentile ``p`` (0-100).

        Exact at the recorded min/max endpoints; linearly interpolated
        within the power-of-two bucket containing the target rank.
        """
        if self.count == 0:
            return 0.0
        if p <= 0:
            return float(self.min or 0)
        if p >= 100:
            return float(self.max or 0)
        # 1-based rank of the requested percentile (nearest-rank method,
        # then interpolate within the bucket).
        rank = p / 100.0 * self.count
        seen = 0
        for i, bucket_count in enumerate(self.buckets):
            if bucket_count == 0:
                continue
            if seen + bucket_count >= rank:
                low = 0 if i == 0 else 1 << (i - 1)
                high = 0 if i == 0 else (1 << i) - 1
                # Clamp the bucket to the observed range so small sample
                # sets do not report values never seen.
                if self.min is not None:
                    low = max(low, self.min)
                if self.max is not None:
                    high = min(high, self.max)
                if high <= low or bucket_count == 1:
                    return float(low)
                frac = (rank - seen) / bucket_count
                return low + frac * (high - low)
            seen += bucket_count
        return float(self.max or 0)  # pragma: no cover - counts always sum

    def merge(self, other: "Histogram") -> None:
        """Fold another histogram into this one (for cross-core totals)."""
        for i, bucket_count in enumerate(other.buckets):
            if bucket_count:
                self.buckets[i] += bucket_count
        self.count += other.count
        self.total += other.total
        if other.min is not None and (self.min is None or other.min < self.min):
            self.min = other.min
        if other.max is not None and (self.max is None or other.max > self.max):
            self.max = other.max

    def to_dict(self) -> Dict[str, object]:
        """JSON-safe snapshot (sparse buckets; stable under schema checks)."""
        return {
            "name": self.name,
            "count": self.count,
            "total": self.total,
            "min": self.min,
            "max": self.max,
            "buckets": {
                str(i): c for i, c in enumerate(self.buckets) if c
            },
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "Histogram":
        hist = cls(str(payload["name"]))
        hist.count = int(payload["count"])  # type: ignore[arg-type]
        hist.total = int(payload["total"])  # type: ignore[arg-type]
        hist.min = payload["min"]  # type: ignore[assignment]
        hist.max = payload["max"]  # type: ignore[assignment]
        for key, value in payload.get("buckets", {}).items():  # type: ignore[union-attr]
            hist.buckets[int(key)] = int(value)
        return hist


class BinnedHistogram:
    """Histogram over fixed inclusive bins, e.g. Figure 5's sharer-count bins.

    Parameters
    ----------
    name:
        Display name.
    bin_edges:
        Sequence of (low, high) inclusive bounds. ``high`` may be ``None``
        for an open-ended final bin ("50+").
    """

    def __init__(
        self, name: str, bin_edges: Sequence[Tuple[int, Optional[int]]]
    ) -> None:
        self.name = name
        self.bins: List[Tuple[int, Optional[int]]] = list(bin_edges)
        self.counts: List[int] = [0] * len(self.bins)
        self.overflow = 0  # values below the first bin or between gaps

    def record(self, value: int, weight: int = 1) -> None:
        for i, (low, high) in enumerate(self.bins):
            if value >= low and (high is None or value <= high):
                self.counts[i] += weight
                return
        self.overflow += weight

    @property
    def total(self) -> int:
        return sum(self.counts) + self.overflow

    def fractions(self) -> List[float]:
        """Per-bin fraction of all recorded values (overflow excluded)."""
        recorded = sum(self.counts)
        if recorded == 0:
            return [0.0] * len(self.bins)
        return [c / recorded for c in self.counts]

    def labels(self) -> List[str]:
        out = []
        for low, high in self.bins:
            if high is None:
                out.append(f"{low}+")
            elif low == high:
                out.append(str(low))
            else:
                out.append(f"{low}-{high}")
        return out

    def merge(self, other: "BinnedHistogram") -> None:
        """Fold another histogram (same bin edges) into this one."""
        if other.bins != self.bins:
            raise ValueError(
                f"cannot merge {other.name!r} into {self.name!r}: bin edges differ"
            )
        for i, count in enumerate(other.counts):
            self.counts[i] += count
        self.overflow += other.overflow


class ExactHistogram:
    """Exact value -> count map, for distributions whose support is unknown."""

    def __init__(self, name: str) -> None:
        self.name = name
        self.counts: Dict[int, int] = {}

    def record(self, value: int, weight: int = 1) -> None:
        self.counts[value] = self.counts.get(value, 0) + weight

    @property
    def total(self) -> int:
        return sum(self.counts.values())

    def mean(self) -> float:
        total = self.total
        if total == 0:
            return 0.0
        return sum(v * c for v, c in self.counts.items()) / total

    def items(self) -> Iterable[Tuple[int, int]]:
        return sorted(self.counts.items())

    def merge(self, other: "ExactHistogram") -> None:
        """Fold another exact histogram into this one."""
        counts = self.counts
        for value, count in other.counts.items():
            counts[value] = counts.get(value, 0) + count


class StatsRegistry:
    """A named group of collectors, one per component instance.

    Components call :meth:`counter` / :meth:`latency` / :meth:`histogram`
    once at construction; the same object is returned on repeat calls so the
    harness can look stats up by name after a run.
    """

    def __init__(self, name: str = "stats") -> None:
        self.name = name
        self._counters: Dict[str, Counter] = {}
        self._latencies: Dict[str, LatencyStat] = {}
        self._binned: Dict[str, BinnedHistogram] = {}
        self._exact: Dict[str, ExactHistogram] = {}

    def counter(self, name: str) -> Counter:
        if name not in self._counters:
            self._counters[name] = Counter(name)
        return self._counters[name]

    def adder(self, name: str):
        """The counter's bound ``add`` method — the hot-path fast path.

        Components that bump a counter per simulated event store this bound
        method once at construction and call it directly, skipping the
        per-event attribute walk (``self._counter.add`` resolves a slot
        descriptor and builds a bound method on every call; the stored
        bound method does neither).
        """
        return self.counter(name).add

    def latency(self, name: str) -> LatencyStat:
        if name not in self._latencies:
            self._latencies[name] = LatencyStat(name)
        return self._latencies[name]

    def histogram(
        self, name: str, bins: Sequence[Tuple[int, Optional[int]]]
    ) -> BinnedHistogram:
        if name not in self._binned:
            self._binned[name] = BinnedHistogram(name, bins)
        return self._binned[name]

    def exact_histogram(self, name: str) -> ExactHistogram:
        if name not in self._exact:
            self._exact[name] = ExactHistogram(name)
        return self._exact[name]

    def counters(self) -> Dict[str, int]:
        """Snapshot of all counter values (for assertions and reports)."""
        return {n: c.value for n, c in self._counters.items()}

    def get_counter(self, name: str) -> int:
        """Value of a counter, 0 if it was never created."""
        counter = self._counters.get(name)
        return counter.value if counter else 0
