"""Statistics collection and report formatting.

Every measurable quantity in the simulator flows through one of the small
collector classes here (:class:`Counter`, :class:`BinnedHistogram`,
:class:`LatencyStat`), which are grouped per component in a
:class:`StatsRegistry`. The harness then renders registries into the same
rows/series the paper's tables and figures report, via :mod:`repro.stats.report`.
"""

from repro.stats.collectors import (
    BinnedHistogram,
    Counter,
    ExactHistogram,
    LatencyStat,
    StatsRegistry,
)
from repro.stats.report import format_table, normalize

__all__ = [
    "BinnedHistogram",
    "Counter",
    "ExactHistogram",
    "LatencyStat",
    "StatsRegistry",
    "format_table",
    "normalize",
]
