"""Seeded protocol mutations for validating the verification subsystem.

A mutation re-introduces a *known-wrong* behaviour into a freshly built
:class:`~repro.system.Manycore` by monkeypatching instance attributes —
the source is never touched, and an unmutated machine is bit-identical to
production. The test suite (and ``repro verify --mutate``) uses these to
prove the campaigns detect real bugs: a bounded campaign that passes under
every mutation would be a campaign that cannot catch anything.

All patches are deterministic (no RNG, no wall clock), so a mutated
campaign is exactly as reproducible as a clean one.
"""

from __future__ import annotations

from typing import Callable, Dict

from repro.system import Manycore


def _no_jam_nack(machine: Manycore) -> None:
    """Disable selective jamming: the channel never NACKs a jammed line.

    This removes the paper's Section III-C1 protection — WirUpd frames for
    lines whose directory entry is mid-transition sail through, so sharers
    merge updates against stale snapshots. Detected by the value-agreement
    invariant (online or final) or the load-provenance oracle.
    """
    if machine.wireless is None:
        raise ValueError("no_jam_nack needs a WiDir machine")
    machine.wireless.is_jammed = lambda line: False  # type: ignore[method-assign]


def _lost_tone_drop(machine: Manycore) -> None:
    """Silently lose every third ToneAck drop.

    The initiating directory keeps hearing a tone that was in fact
    dropped, so the S->W / W->S transition never completes and the entry
    stays busy forever. Detected as a deadlock (unfinished programs or an
    exceeded event budget).
    """
    if machine.tone is None:
        raise ValueError("lost_tone_drop needs a WiDir machine")
    tone = machine.tone
    original_drop = tone.drop
    state = {"count": 0}

    def lossy_drop(key: int, node: int) -> None:
        state["count"] += 1
        if state["count"] % 3 == 0:
            return  # the drop vanishes into the ether
        original_drop(key, node)

    tone.drop = lossy_drop  # type: ignore[method-assign]


def _no_home_wirupd_merge(machine: Manycore) -> None:
    """The home directory stops merging WirUpd frames into the LLC copy.

    The LLC image of a W line goes stale, so later joins/downgrades hand
    out old data. Detected by value agreement (LLC vs sharers) or load
    provenance after a W->S fallback.
    """
    if machine.wireless is None:
        raise ValueError("no_home_wirupd_merge needs a WiDir machine")
    for directory in machine.directories:
        directory.handle_frame = lambda frame: None  # type: ignore[method-assign]


#: name -> patcher. Names are part of the CLI surface (``--mutate``).
MUTATIONS: Dict[str, Callable[[Manycore], None]] = {
    "no_jam_nack": _no_jam_nack,
    "lost_tone_drop": _lost_tone_drop,
    "no_home_wirupd_merge": _no_home_wirupd_merge,
}


def apply_mutation(machine: Manycore, name: str) -> None:
    """Apply the named mutation to ``machine`` (raises KeyError if unknown)."""
    try:
        patcher = MUTATIONS[name]
    except KeyError:
        raise KeyError(
            f"unknown mutation {name!r}; available: {sorted(MUTATIONS)}"
        ) from None
    patcher(machine)
