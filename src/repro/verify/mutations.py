"""Seeded protocol mutations for validating the verification subsystem.

A mutation re-introduces a *known-wrong* behaviour into a freshly built
:class:`~repro.system.Manycore` by monkeypatching instance attributes —
the source is never touched, and an unmutated machine is bit-identical to
production. The test suite (and ``repro verify --mutate``) uses these to
prove the campaigns detect real bugs: a bounded campaign that passes under
every mutation would be a campaign that cannot catch anything.

All patches are deterministic (no RNG, no wall clock), so a mutated
campaign is exactly as reproducible as a clean one.
"""

from __future__ import annotations

from typing import Callable, Dict, Tuple

from repro.system import Manycore


def _no_jam_nack(machine: Manycore) -> None:
    """Disable selective jamming: the channel never NACKs a jammed line.

    This removes the paper's Section III-C1 protection — WirUpd frames for
    lines whose directory entry is mid-transition sail through, so sharers
    merge updates against stale snapshots. Detected by the value-agreement
    invariant (online or final) or the load-provenance oracle.
    """
    if machine.wireless is None:
        raise ValueError("no_jam_nack needs a WiDir machine")
    machine.wireless.is_jammed = lambda line: False  # type: ignore[method-assign]


def _lost_tone_drop(machine: Manycore) -> None:
    """Silently lose every third ToneAck drop.

    The initiating directory keeps hearing a tone that was in fact
    dropped, so the S->W / W->S transition never completes and the entry
    stays busy forever. Detected as a deadlock (unfinished programs or an
    exceeded event budget).
    """
    if machine.tone is None:
        raise ValueError("lost_tone_drop needs a WiDir machine")
    tone = machine.tone
    original_drop = tone.drop
    state = {"count": 0}

    def lossy_drop(key: int, node: int, _retry: bool = False) -> None:
        state["count"] += 1
        if state["count"] % 3 == 0:
            return  # the drop vanishes into the ether
        original_drop(key, node, _retry=_retry)

    tone.drop = lossy_drop  # type: ignore[method-assign]


def _no_home_wirupd_merge(machine: Manycore) -> None:
    """The home directory stops merging WirUpd frames into the LLC copy.

    The LLC image of a W line goes stale, so later joins/downgrades hand
    out old data. Detected by value agreement (LLC vs sharers) or load
    provenance after a W->S fallback.
    """
    if machine.wireless is None:
        raise ValueError("no_home_wirupd_merge needs a WiDir machine")
    for directory in machine.directories:
        directory.handle_frame = lambda frame: None  # type: ignore[method-assign]


def _pp_drop_deferred(machine: Manycore) -> None:
    """Phase-priority service leaks every third deferred message.

    The priority selector returns one message but a second one silently
    falls off the queue, so the dropped requester's MSHR never completes.
    Detected as a deadlock (unfinished programs or an exceeded event
    budget).
    """
    from repro.coherence.phase_priority import PhasePriorityDirectoryController

    if not isinstance(machine.directories[0], PhasePriorityDirectoryController):
        raise ValueError("pp_drop_deferred needs a phase_priority machine")
    state = {"count": 0}
    for directory in machine.directories:
        original = directory._pop_deferred

        def leaky(entry, _original=original):
            message = _original(entry)
            state["count"] += 1
            if state["count"] % 3 == 0 and entry.deferred:
                entry.deferred.popleft()  # a queued message vanishes
            return message

        directory._pop_deferred = leaky  # type: ignore[method-assign]


def _hyb_lost_upd_ack(machine: Manycore) -> None:
    """Every third HybUpd delivery is swallowed whole: no apply, no ack.

    The home's locked-write transaction waits for an HybUpdAck that never
    arrives, so the entry stays busy forever. Detected as a deadlock.
    """
    from repro.coherence.hybrid_update import HYB_UPD_ID, HybridCacheController

    if not isinstance(machine.caches[0], HybridCacheController):
        raise ValueError("hyb_lost_upd_ack needs a hybrid_update machine")
    state = {"count": 0}
    for cache in machine.caches:
        # Wired handling dispatches through the class-level kind table, so
        # the patch intercepts handle_message (resolved per delivery).
        original = cache.handle_message

        def lossy(msg, _original=original):
            if msg.kind_id == HYB_UPD_ID:
                state["count"] += 1
                if state["count"] % 3 == 0:
                    return  # the update (and its ack) vanish into the ether
            _original(msg)

        cache.handle_message = lossy  # type: ignore[method-assign]


def _hyb_stale_update(machine: Manycore) -> None:
    """Sharers apply a skewed value for every HybUpd (but still ack).

    The home's LLC merge keeps the true value while every locked sharer
    installs value+1, so sharer copies diverge from the LLC (and from the
    writer's completion value). Detected by the value-agreement invariant
    or the load-provenance oracle.
    """
    from repro.coherence.hybrid_update import HYB_UPD_ID, HybridCacheController

    if not isinstance(machine.caches[0], HybridCacheController):
        raise ValueError("hyb_stale_update needs a hybrid_update machine")
    for cache in machine.caches:
        original = cache.handle_message

        def skewed(msg, _original=original):
            if (
                msg.kind_id == HYB_UPD_ID
                and msg.payload
                and "value" in msg.payload
            ):
                msg.payload = dict(msg.payload, value=msg.payload["value"] + 1)
            _original(msg)

        cache.handle_message = skewed  # type: ignore[method-assign]


def _token_lost(machine: Manycore) -> None:
    """The token MAC loses its token: nobody is ever polled again.

    Contention slots tick forever without a grant, so every wireless store
    stalls at the channel. Detected as a deadlock (unfinished programs or
    an exceeded event budget).
    """
    from repro.wireless.mac_token import TokenMacState

    if machine.wireless is None or not isinstance(
        machine.wireless._mac, TokenMacState
    ):
        raise ValueError("token_lost needs a WiDir machine on the token MAC")
    machine.wireless._mac._lost = True


def _csma_always_defer(machine: Manycore) -> None:
    """The CSMA persistence gate jams shut: every slot draw fails.

    No node ever transmits, so the channel idles from slot to slot while
    wireless stores queue forever. Detected as a deadlock.
    """
    from repro.wireless.mac_csma import CsmaSlottedMacState

    if machine.wireless is None or not isinstance(
        machine.wireless._mac, CsmaSlottedMacState
    ):
        raise ValueError(
            "csma_always_defer needs a WiDir machine on the csma_slotted MAC"
        )
    machine.wireless._mac._persistence = -1.0


#: name -> patcher. Names are part of the CLI surface (``--mutate``).
MUTATIONS: Dict[str, Callable[[Manycore], None]] = {
    "no_jam_nack": _no_jam_nack,
    "lost_tone_drop": _lost_tone_drop,
    "no_home_wirupd_merge": _no_home_wirupd_merge,
    "pp_drop_deferred": _pp_drop_deferred,
    "hyb_lost_upd_ack": _hyb_lost_upd_ack,
    "hyb_stale_update": _hyb_stale_update,
    "token_lost": _token_lost,
    "csma_always_defer": _csma_always_defer,
}

#: name -> protocols the mutation is meaningful for. Fuzz campaigns apply
#: a mutation only to trials whose machine runs a listed backend; other
#: trials stay clean references.
MUTATION_PROTOCOLS: Dict[str, Tuple[str, ...]] = {
    "no_jam_nack": ("widir",),
    "lost_tone_drop": ("widir",),
    "no_home_wirupd_merge": ("widir",),
    "pp_drop_deferred": ("phase_priority",),
    "hyb_lost_upd_ack": ("hybrid_update",),
    "hyb_stale_update": ("hybrid_update",),
    "token_lost": ("widir",),
    "csma_always_defer": ("widir",),
}

#: name -> MAC backends the mutation targets. Empty/absent means the
#: mutation is MAC-agnostic; fuzz campaigns apply MAC-scoped mutations
#: only to trials whose machine runs a listed MAC.
MUTATION_MACS: Dict[str, Tuple[str, ...]] = {
    "token_lost": ("token",),
    "csma_always_defer": ("csma_slotted",),
}


def mutation_protocols(name: str) -> Tuple[str, ...]:
    """Protocols the named mutation applies to (KeyError when unknown)."""
    if name not in MUTATIONS:
        raise KeyError(
            f"unknown mutation {name!r}; available: {sorted(MUTATIONS)}"
        )
    return MUTATION_PROTOCOLS.get(name, ("widir",))


def mutation_macs(name: str) -> Tuple[str, ...]:
    """MAC backends the named mutation targets; empty means any MAC."""
    if name not in MUTATIONS:
        raise KeyError(
            f"unknown mutation {name!r}; available: {sorted(MUTATIONS)}"
        )
    return MUTATION_MACS.get(name, ())


def apply_mutation(machine: Manycore, name: str) -> None:
    """Apply the named mutation to ``machine`` (raises KeyError if unknown)."""
    try:
        patcher = MUTATIONS[name]
    except KeyError:
        raise KeyError(
            f"unknown mutation {name!r}; available: {sorted(MUTATIONS)}"
        ) from None
    patcher(machine)
