"""Protocol verification subsystem.

Three pillars (see docs/TESTING.md):

* :mod:`repro.verify.litmus` — declarative litmus tests (SB, MP, CoRR,
  IRIW, 2+2W, atomicity) compiled onto :class:`~repro.system.Manycore`,
  run against Baseline MESI and WiDir machines including variants that
  cross the ``MaxWiredSharers`` threshold mid-test.
* :mod:`repro.verify.fuzz` — fault-injecting fuzz campaigns: seeded random
  multi-core programs plus perturbation knobs (jam storms, tone-hold
  jitter, mesh-latency jitter, backoff re-seeding) with online invariant
  checking and end-of-run oracles.
* :mod:`repro.verify.artifacts` — replayable failure artifacts: a failing
  (program, config, seeds) bundle serialized to JSON, shrunk by a
  delta-debugging pass, and replayed via ``repro verify replay``.

:mod:`repro.verify.mutations` holds seeded protocol mutations used to
validate that campaigns actually catch bugs (mutation smoke testing).
"""

from repro.verify.litmus import LitmusTest, litmus_suite, run_litmus
from repro.verify.fuzz import FuzzCampaign, TrialSpec, run_campaign
from repro.verify.artifacts import FailureArtifact, shrink_trial

__all__ = [
    "LitmusTest",
    "litmus_suite",
    "run_litmus",
    "FuzzCampaign",
    "TrialSpec",
    "run_campaign",
    "FailureArtifact",
    "shrink_trial",
]
