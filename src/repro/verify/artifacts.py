"""Replayable failure artifacts and delta-debugging shrink.

When a fuzz trial fails, the campaign driver captures the *entire* trial —
config, programs, every injector seed — as a :class:`FailureArtifact`,
runs a bounded delta-debugging pass (:func:`shrink_trial`) to cut the
reproducer down, and serializes the result to JSON. ``repro verify replay
<artifact.json>`` rebuilds the machine from the bundle and re-executes it;
because the whole stack is deterministic, the replay reproduces the
original failure bit-for-bit.

The shrinker is ddmin-flavoured but protocol-aware:

1. drop whole cores' programs,
2. halve each surviving program, then drop individual ops,
3. strip injectors (jam storm, tone jitter, mesh jitter, backoff
   scramble) that are not needed to reproduce.

Every candidate is validated by re-executing it (``check``), so the
shrunk artifact is failing *by construction*, and the pass is bounded by
``max_checks`` re-executions.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, List, Optional

from repro.verify.fuzz import TrialSpec, execute_trial

#: Schema tag so future formats can migrate old artifacts.
ARTIFACT_VERSION = 1


def default_check(spec: TrialSpec) -> Optional[str]:
    """Re-execute ``spec``; return the failure reason or None if it passes.

    Shrink candidates skip trace capture: the hooks are digest-neutral, so
    pass/fail is identical either way, and ddmin re-executes up to
    ``max_checks`` times.
    """
    result = execute_trial(spec, capture_trace=False)
    return None if result.ok else result.failure


@dataclass
class FailureArtifact:
    """A self-contained, replayable description of one failing trial."""

    campaign: str
    seed: int
    trial_index: int
    failure: str
    spec: TrialSpec
    shrunk: bool = False
    original_ops: int = 0
    shrunk_ops: int = 0
    notes: List[str] = field(default_factory=list)
    #: Flight-recorder window of the *original* failing run
    #: (``FlightRecorder.to_payload``-shaped; carries its own schema tag).
    #: Optional: absent on artifacts written before tracing existed.
    trace: Optional[Dict] = None

    # -------------------------------------------------------- serialization

    def to_dict(self) -> Dict:
        return {
            "version": ARTIFACT_VERSION,
            "campaign": self.campaign,
            "seed": self.seed,
            "trial_index": self.trial_index,
            "failure": self.failure,
            "spec": self.spec.to_dict(),
            "shrunk": self.shrunk,
            "original_ops": self.original_ops,
            "shrunk_ops": self.shrunk_ops,
            "notes": self.notes,
            "trace": self.trace,
        }

    @classmethod
    def from_dict(cls, payload: Dict) -> "FailureArtifact":
        return cls(
            campaign=payload["campaign"],
            seed=payload["seed"],
            trial_index=payload["trial_index"],
            failure=payload["failure"],
            spec=TrialSpec.from_dict(payload["spec"]),
            shrunk=payload.get("shrunk", False),
            original_ops=payload.get("original_ops", 0),
            shrunk_ops=payload.get("shrunk_ops", 0),
            notes=payload.get("notes", []),
            trace=payload.get("trace"),
        )

    def save(self, path) -> Path:
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(self.to_dict(), indent=2, sort_keys=True))
        return path

    @classmethod
    def load(cls, path) -> "FailureArtifact":
        return cls.from_dict(json.loads(Path(path).read_text()))


# -------------------------------------------------------------------- shrink


def _clone(spec: TrialSpec, **overrides) -> TrialSpec:
    payload = spec.to_dict()
    clone = TrialSpec.from_dict(payload)
    for key, value in overrides.items():
        setattr(clone, key, value)
    return clone


def shrink_trial(
    spec: TrialSpec,
    check: Callable[[TrialSpec], Optional[str]] = default_check,
    max_checks: int = 120,
) -> TrialSpec:
    """Minimize ``spec`` while ``check`` still reports a failure.

    ``check`` returns the failure reason (any reason — the minimal
    reproducer may fail differently than the original, which is standard
    ddmin behaviour) or None when the candidate passes.
    """
    budget = {"left": max_checks}

    def still_fails(candidate: TrialSpec) -> bool:
        if budget["left"] <= 0:
            return False
        budget["left"] -= 1
        return check(candidate) is not None

    best = spec

    # Pass 1: drop whole cores' programs (keep list length = core count so
    # node numbering, and thus homes and seeds, stay stable).
    for node in range(len(best.programs)):
        if not best.programs[node]:
            continue
        programs = [list(p) for p in best.programs]
        programs[node] = []
        candidate = _clone(best, programs=programs)
        if still_fails(candidate):
            best = candidate

    # Pass 2: binary-chop each surviving program, then single ops.
    for node in range(len(best.programs)):
        chunk = max(1, len(best.programs[node]) // 2)
        while chunk >= 1 and budget["left"] > 0:
            start = 0
            while start < len(best.programs[node]) and budget["left"] > 0:
                program = best.programs[node]
                candidate_program = program[:start] + program[start + chunk:]
                programs = [list(p) for p in best.programs]
                programs[node] = candidate_program
                candidate = _clone(best, programs=programs)
                if still_fails(candidate):
                    best = candidate  # retry same offset: list shifted left
                else:
                    start += chunk
            chunk //= 2

    # Pass 3: strip injectors one at a time.
    for overrides in (
        {"jam_storm": []},
        {"tone_jitter": 0},
        {"mesh_jitter": 0},
        {"backoff_seed": None},
        {"jitter_window": 0},
    ):
        key = next(iter(overrides))
        if getattr(best, key) == overrides[key]:
            continue
        candidate = _clone(best, **overrides)
        if still_fails(candidate):
            best = candidate

    return best
