"""Fault-injecting coherence fuzzing.

A *trial* is a fully explicit, serializable description of one adversarial
run — machine config, per-core random programs, and every perturbation
knob with its seed (:class:`TrialSpec`). The campaign driver generates
trials from a root seed, executes each on a fresh
:class:`~repro.system.Manycore`, and applies four oracles:

* **liveness** — every program finishes within the event budget;
* **load provenance** — a load only ever observes 0 or a value some core
  actually stored to that variable (the RMW counter is bounded instead);
* **RMW atomicity** — the counter's final value equals the total number of
  fetch-and-increments, with no duplicate old values;
* **coherence** — the online invariant monitor during the run (cycle-level
  blame) plus the quiescent :meth:`~repro.system.Manycore.check_coherence`
  at the end.

Perturbation knobs (all deterministic, all liveness-preserving for a
*correct* machine):

* **jam storms** — balanced ``jam``/``unjam`` pairs on the test lines,
  stressing the selective-jamming NACK path and backoff recovery;
* **tone-hold jitter** — ToneAck drops are delayed (never lost, never
  early), stretching the silence-detection window;
* **mesh jitter** — every wired message picks up a bounded extra delay,
  perturbing race resolution without reordering same-pair FIFO traffic
  (the mesh's ``_pair_order`` clamp still applies);
* **backoff scramble** — the per-node BRS backoff RNG streams are
  re-seeded, exploring different collision-resolution interleavings.

Failures are shrunk and archived by :mod:`repro.verify.artifacts`; seeded
protocol *mutations* (:mod:`repro.verify.mutations`) let the test suite
prove the campaign actually catches bugs.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.config.system import SystemConfig
from repro.engine.errors import ProtocolError, SimulationError
from repro.engine.rng import DeterministicRng
from repro.system import Manycore
from repro.verify.litmus import (
    LitmusOp,
    _ProgramDriver,
    variable_addresses,
)

#: Shared race variables the generator draws from (plus the RMW counter).
_RACE_VARS = ("v0", "v1", "v2", "v3")
_COUNTER_VAR = "c"


# --------------------------------------------------------------- trial spec


@dataclass
class TrialSpec:
    """One fully reproducible fuzz trial (the unit of replay/shrinking)."""

    config: Dict  #: SystemConfig.to_dict() payload.
    programs: List[List[LitmusOp]]
    machine_seed: int
    jitter_seed: int
    jitter_window: int = 30
    #: (start_cycle, variable_index, hold_cycles) balanced jam/unjam pairs.
    jam_storm: List[Tuple[int, int, int]] = field(default_factory=list)
    #: Max extra cycles a ToneAck drop is held (0 = injector off).
    tone_jitter: int = 0
    tone_jitter_seed: int = 0
    #: Max extra cycles added to each wired message (0 = injector off).
    mesh_jitter: int = 0
    mesh_jitter_seed: int = 0
    #: Re-seed the per-node BRS backoff streams (None = leave machine's).
    backoff_seed: Optional[int] = None
    max_events: int = 4_000_000
    #: Seeded protocol mutation applied before the run (mutation testing).
    mutation: Optional[str] = None

    # -------------------------------------------------------- serialization

    def to_dict(self) -> Dict:
        return {
            "config": self.config,
            "programs": [[op.to_dict() for op in p] for p in self.programs],
            "machine_seed": self.machine_seed,
            "jitter_seed": self.jitter_seed,
            "jitter_window": self.jitter_window,
            "jam_storm": [list(entry) for entry in self.jam_storm],
            "tone_jitter": self.tone_jitter,
            "tone_jitter_seed": self.tone_jitter_seed,
            "mesh_jitter": self.mesh_jitter,
            "mesh_jitter_seed": self.mesh_jitter_seed,
            "backoff_seed": self.backoff_seed,
            "max_events": self.max_events,
            "mutation": self.mutation,
        }

    @classmethod
    def from_dict(cls, payload: Dict) -> "TrialSpec":
        return cls(
            config=payload["config"],
            programs=[
                [LitmusOp.from_dict(op) for op in program]
                for program in payload["programs"]
            ],
            machine_seed=payload["machine_seed"],
            jitter_seed=payload["jitter_seed"],
            jitter_window=payload.get("jitter_window", 30),
            jam_storm=[tuple(e) for e in payload.get("jam_storm", [])],
            tone_jitter=payload.get("tone_jitter", 0),
            tone_jitter_seed=payload.get("tone_jitter_seed", 0),
            mesh_jitter=payload.get("mesh_jitter", 0),
            mesh_jitter_seed=payload.get("mesh_jitter_seed", 0),
            backoff_seed=payload.get("backoff_seed"),
            max_events=payload.get("max_events", 4_000_000),
            mutation=payload.get("mutation"),
        )

    @property
    def variables(self) -> List[str]:
        names: Set[str] = set()
        for program in self.programs:
            for op in program:
                if op.var is not None:
                    names.add(op.var)
        return sorted(names)

    @property
    def total_ops(self) -> int:
        return sum(len(p) for p in self.programs)


# ---------------------------------------------------------------- injectors


def _install_jam_storm(
    machine: Manycore, spec: TrialSpec, lines: List[int]
) -> None:
    """Schedule balanced jam/unjam pairs (the channel refcounts jams, so an
    injected jam overlapping the directory's own transition jam can never
    lift the protocol's jam early)."""
    wireless = machine.wireless
    if wireless is None or not lines:
        return
    for start, var_index, hold in spec.jam_storm:
        line = lines[var_index % len(lines)]
        machine.sim.schedule_at(start, lambda l=line: wireless.jam(l))
        machine.sim.schedule_at(start + hold, lambda l=line: wireless.unjam(l))


def _install_tone_jitter(machine: Manycore, spec: TrialSpec) -> None:
    """Delay every ToneAck drop by a bounded random hold (never early,
    never lost — a correct protocol must tolerate slow local tasks)."""
    tone = machine.tone
    if tone is None or spec.tone_jitter <= 0:
        return
    rng = DeterministicRng(spec.tone_jitter_seed).split("tone-jitter")
    original_drop = tone.drop
    sim = machine.sim

    def jittered_drop(key: int, node: int, _retry: bool = False) -> None:
        # ``_retry`` marks the channel-error model's re-delivery; forward
        # it so a jittered retry is not mistaken for a fresh drop.
        hold = rng.randint(0, spec.tone_jitter)
        if hold == 0:
            original_drop(key, node, _retry=_retry)
        else:
            sim.schedule(hold, lambda: original_drop(key, node, _retry=_retry))

    tone.drop = jittered_drop  # type: ignore[method-assign]


def _install_mesh_jitter(machine: Manycore, spec: TrialSpec) -> None:
    """Add bounded extra latency to every wired message. Same-pair FIFO is
    preserved by the mesh's ``_pair_order`` clamp, so protocol-required
    ordering survives; only cross-pair races move."""
    if spec.mesh_jitter <= 0:
        return
    rng = DeterministicRng(spec.mesh_jitter_seed).split("mesh-jitter")
    mesh = machine.mesh
    original_send = mesh.send

    def jittered_send(message, extra_delay: int = 0) -> None:
        original_send(
            message, extra_delay=extra_delay + rng.randint(0, spec.mesh_jitter)
        )

    mesh.send = jittered_send  # type: ignore[method-assign]


def _install_backoff_scramble(machine: Manycore, spec: TrialSpec) -> None:
    """Re-seed every node's BRS backoff stream from the trial's seed."""
    if spec.backoff_seed is None or machine.wireless is None:
        return
    root = DeterministicRng(spec.backoff_seed).split("backoff-scramble")
    for node, policy in enumerate(machine.wireless._backoff):
        policy._rng = root.split(f"node-{node}")


def install_injectors(machine: Manycore, spec: TrialSpec, lines: List[int]) -> None:
    """Apply every enabled perturbation knob of ``spec`` to ``machine``."""
    _install_jam_storm(machine, spec, lines)
    _install_tone_jitter(machine, spec)
    _install_mesh_jitter(machine, spec)
    _install_backoff_scramble(machine, spec)


# ---------------------------------------------------------------- generator


def generate_trial(
    seed: int,
    index: int,
    num_cores: int = 8,
    ops_per_core: int = 40,
    protocol: str = "widir",
    check_interval: int = 150,
    max_wired_sharers: Optional[int] = None,
    mac: str = "brs",
    channel_errors: bool = False,
) -> TrialSpec:
    """Derive trial ``index`` of a campaign rooted at ``seed``.

    The program mix is store/load-heavy on a handful of shared variables
    (maximum contention) with a sprinkle of RMWs on a dedicated counter and
    think-time delays. Stores write globally unique values so the
    provenance oracle can attribute every observed load.

    ``mac`` selects the wireless MAC backend (ignored on wired machines);
    ``channel_errors`` turns on seeded frame-corruption and missed-tone
    injection, exercising the retransmit paths under every oracle. Both
    knobs are config-only — they draw nothing from the trial RNG, so the
    default trials are bit-identical to the pre-MAC-zoo campaigns.
    """
    from repro.coherence.backend import get_backend

    backend = get_backend(protocol)
    rng = DeterministicRng(seed).split(f"trial-{index}")
    config = SystemConfig(
        num_cores=num_cores,
        protocol=protocol,
        seed=rng.randint(0, 2**31 - 1),
        check_interval=check_interval,
        mac=mac if backend.uses_wireless else "brs",
    )
    if channel_errors and backend.uses_wireless:
        from dataclasses import replace as _replace

        from repro.config.system import ChannelErrorConfig

        config = _replace(
            config,
            channel_errors=ChannelErrorConfig(
                frame_corruption_prob=0.05, missed_tone_prob=0.05
            ),
        )
    if max_wired_sharers is not None:
        from dataclasses import replace

        pointers = max(1, max_wired_sharers)
        if backend.uses_sharer_threshold and not backend.uses_wireless:
            # Wired threshold protocols (hybrid_update) gate mode entry on
            # a *precise* sharer vector: with too few pointers the entry
            # goes imprecise and the threshold never fires. Give the
            # directory full pointers so the knob under test decides.
            pointers = max(num_cores, max_wired_sharers)
        config = replace(
            config,
            directory=replace(
                config.directory,
                num_pointers=pointers,
                max_wired_sharers=max_wired_sharers,
            ),
        )

    programs: List[List[LitmusOp]] = []
    for core in range(num_cores):
        ops: List[LitmusOp] = []
        for op_index in range(ops_per_core):
            roll = rng.randint(0, 99)
            var = _RACE_VARS[rng.randint(0, len(_RACE_VARS) - 1)]
            if roll < 40:
                ops.append(LitmusOp("load", var))
            elif roll < 75:
                value = core * 4096 + op_index + 1  # globally unique
                ops.append(LitmusOp("store", var, value))
            elif roll < 85:
                ops.append(LitmusOp("rmw", _COUNTER_VAR))
            elif roll < 95:
                ops.append(LitmusOp("delay", cycles=rng.randint(1, 25)))
            else:
                ops.append(LitmusOp("load", _COUNTER_VAR))
        programs.append(ops)

    wireless = backend.uses_wireless
    storm: List[Tuple[int, int, int]] = []
    if wireless and rng.randint(0, 3) != 0:
        for _ in range(rng.randint(2, 8)):
            storm.append(
                (
                    rng.randint(10, 2500),
                    rng.randint(0, len(_RACE_VARS) - 1),
                    rng.randint(5, 120),
                )
            )

    return TrialSpec(
        config=config.to_dict(),
        programs=programs,
        machine_seed=config.seed,
        jitter_seed=rng.randint(0, 2**31 - 1),
        jitter_window=rng.randint(5, 40),
        jam_storm=storm,
        tone_jitter=rng.randint(0, 6) if wireless else 0,
        tone_jitter_seed=rng.randint(0, 2**31 - 1),
        mesh_jitter=rng.randint(0, 4),
        mesh_jitter_seed=rng.randint(0, 2**31 - 1),
        backoff_seed=rng.randint(0, 2**31 - 1) if wireless else None,
        max_events=max(1_000_000, 4_000 * ops_per_core * num_cores),
    )


# ---------------------------------------------------------------- execution


#: Recorder events kept in a failing trial's trace window (the "what was
#: the machine doing just before it failed" tail).
TRACE_TAIL = 64


@dataclass
class TrialResult:
    """Outcome of one executed trial."""

    ok: bool
    failure: Optional[str]
    cycles: int
    events: int
    digest: str  #: sha256 over observations + finals (determinism witness).
    #: Flight-recorder window (``FlightRecorder.to_payload``-shaped, schema-
    #: versioned) captured when the trial failed; None on success or when
    #: tracing was off. Excluded from the determinism digest.
    trace: Optional[Dict] = None


def execute_trial(
    spec: TrialSpec,
    mutation: Optional[str] = None,
    capture_trace: bool = True,
) -> TrialResult:
    """Build the machine, apply injectors (and mutation), run, judge.

    ``capture_trace`` installs the observability layer on the trial machine
    so a failing trial carries its flight-recorder window (the last
    ``TRACE_TAIL`` protocol events) in :attr:`TrialResult.trace`. Tracing
    is digest-neutral — the hooks read simulation state but never draw
    RNG, schedule events, or touch stats — so trial digests and campaign
    digests are identical with it on or off.
    """
    config = SystemConfig.from_dict(spec.config)
    machine = Manycore(config)
    obs = None
    if capture_trace:
        from repro.config.system import ObsConfig
        from repro.obs.hooks import Observability

        obs = Observability(machine, ObsConfig(enabled=True))
        obs.install()
        machine.obs = obs
    mutation_name = mutation or spec.mutation
    if mutation_name:
        from repro.verify.mutations import apply_mutation

        apply_mutation(machine, mutation_name)

    variables = spec.variables
    addresses = variable_addresses(variables, config.l1.line_bytes)
    race_lines = [
        addresses[v] // config.l1.line_bytes for v in variables if v != _COUNTER_VAR
    ]
    install_injectors(machine, spec, race_lines)

    jitter_root = DeterministicRng(spec.jitter_seed).split("schedule")
    finished = {"count": 0}

    def on_finish(_driver: _ProgramDriver) -> None:
        finished["count"] += 1

    drivers = [
        _ProgramDriver(
            machine,
            node,
            ops,
            addresses,
            jitter_root.split(f"core-{node}"),
            spec.jitter_window,
            on_finish,
        )
        for node, ops in enumerate(spec.programs)
    ]
    for driver in drivers:
        driver.start()

    def fail(reason: str) -> TrialResult:
        return TrialResult(
            ok=False,
            failure=reason,
            cycles=machine.sim.now,
            events=machine.sim.events_executed,
            digest="",
            trace=(
                obs.recorder.to_payload(last=TRACE_TAIL)
                if obs is not None
                else None
            ),
        )

    try:
        machine.run(max_events=spec.max_events)
    except (SimulationError, ProtocolError) as exc:
        return fail(f"{type(exc).__name__}: {exc}")

    # Every driver reports on_finish (an empty program finishes at start).
    if finished["count"] != len(drivers):
        stuck = [d.node for d in drivers if not d.finished]
        return fail(
            f"deadlock: cores {stuck} unfinished at cycle {machine.sim.now}"
        )

    # ---- oracles on the observations -----------------------------------
    written: Dict[str, Set[int]] = {v: set() for v in variables}
    total_rmws = 0
    for program in spec.programs:
        for op in program:
            if op.kind == "store":
                written[op.var].add(op.value)
            elif op.kind == "rmw":
                total_rmws += 1

    for driver in drivers:
        values = iter(driver.observations)
        for op in driver.ops:
            if op.kind == "load":
                value = next(values)
                if op.var == _COUNTER_VAR:
                    if not 0 <= value <= total_rmws:
                        return fail(
                            f"core {driver.node} read counter {value} "
                            f"outside [0, {total_rmws}]"
                        )
                elif value != 0 and value not in written[op.var]:
                    return fail(
                        f"core {driver.node} loaded {value} from {op.var}, "
                        f"a value no core ever stored"
                    )
            elif op.kind == "rmw":
                next(values)

    rmw_olds = [v for d in drivers for v in d.rmw_observations]
    if len(rmw_olds) != len(set(rmw_olds)):
        return fail(f"duplicate RMW old values: {sorted(rmw_olds)}")

    finals: Dict[str, int] = {}
    if total_rmws:
        state = {"value": None}

        def record(value: int) -> None:
            state["value"] = value

        machine.caches[0].load(addresses[_COUNTER_VAR], record)
        try:
            machine.run(max_events=spec.max_events)
        except (SimulationError, ProtocolError) as exc:
            return fail(f"final counter read: {type(exc).__name__}: {exc}")
        if state["value"] != total_rmws:
            return fail(
                f"RMW counter ended at {state['value']}, expected {total_rmws}"
            )
        finals[_COUNTER_VAR] = state["value"]

    try:
        machine.check_coherence()
    except (SimulationError, ProtocolError) as exc:
        return fail(f"final coherence check: {type(exc).__name__}: {exc}")

    witness = {
        "observations": [list(d.observations) for d in drivers],
        "finals": finals,
        "cycles": machine.sim.now,
    }
    digest = hashlib.sha256(
        json.dumps(witness, sort_keys=True).encode()
    ).hexdigest()[:16]
    return TrialResult(
        ok=True,
        failure=None,
        cycles=machine.sim.now,
        events=machine.sim.events_executed,
        digest=digest,
    )


# ----------------------------------------------------------------- campaign


@dataclass(frozen=True)
class FuzzCampaign:
    """A named, bounded fuzz configuration."""

    name: str
    trials: int
    num_cores: int
    ops_per_core: int
    #: Machine mix cycled across trials. Entries are
    #: ``(protocol, max_wired_sharers or None[, mac[, channel_errors]])``;
    #: the first six rows predate the MAC zoo and keep their positions so
    #: low trial counts reproduce the historical mix.
    machines: Tuple[Tuple, ...] = (
        ("widir", None),
        ("widir", 1),
        ("baseline", None),
        ("phase_priority", None),
        ("hybrid_update", None),
        ("hybrid_update", 1),
        ("widir", None, "token"),
        ("widir", 1, "csma_slotted"),
        ("widir", None, "fdma"),
        ("widir", 1, "token", True),
        ("widir", None, "csma_slotted", True),
        ("widir", None, "brs", True),
    )
    check_interval: int = 150


CAMPAIGNS: Dict[str, FuzzCampaign] = {
    "smoke": FuzzCampaign("smoke", trials=12, num_cores=8, ops_per_core=30),
    "deep": FuzzCampaign("deep", trials=60, num_cores=16, ops_per_core=90),
}


@dataclass
class CampaignResult:
    """Aggregate outcome of a campaign run."""

    campaign: str
    seed: int
    trials: List[TrialResult] = field(default_factory=list)
    failures: List[Tuple[int, str]] = field(default_factory=list)  # (index, why)

    @property
    def ok(self) -> bool:
        return not self.failures

    @property
    def digest(self) -> str:
        """Order-sensitive digest over every trial — two runs of the same
        (campaign, seed) must produce the identical value."""
        payload = "|".join(
            f"{r.digest}:{r.cycles}:{r.failure or ''}" for r in self.trials
        )
        return hashlib.sha256(payload.encode()).hexdigest()[:16]


def run_campaign(
    campaign: str = "smoke",
    seed: int = 0,
    trials: Optional[int] = None,
    mutation: Optional[str] = None,
    on_trial=None,
) -> CampaignResult:
    """Run a named campaign; returns per-trial results and failures.

    ``mutation`` applies a seeded protocol bug to every trial's machine
    (mutation smoke testing). ``on_trial(index, spec, result)`` is invoked
    after each trial (progress reporting / artifact capture).
    """
    from repro.verify.mutations import mutation_macs, mutation_protocols

    plan = CAMPAIGNS[campaign]
    count = trials if trials is not None else plan.trials
    result = CampaignResult(campaign=campaign, seed=seed)
    machines = plan.machines
    for index in range(count):
        entry = machines[index % len(machines)]
        protocol, mws = entry[0], entry[1]
        mac = entry[2] if len(entry) > 2 else "brs"
        channel_errors = bool(entry[3]) if len(entry) > 3 else False
        spec = generate_trial(
            seed,
            index,
            num_cores=plan.num_cores,
            ops_per_core=plan.ops_per_core,
            protocol=protocol,
            check_interval=plan.check_interval,
            max_wired_sharers=mws,
            mac=mac,
            channel_errors=channel_errors,
        )
        macs = mutation_macs(mutation) if mutation else ()
        if (
            mutation
            and protocol in mutation_protocols(mutation)
            and (not macs or mac in macs)
        ):
            # Record the mutation on the spec so any captured artifact
            # replays it. (Each mutation targets one backend's machinery;
            # other protocols' trials stay unmutated so they remain
            # meaningful clean references.)
            spec.mutation = mutation
        trial = execute_trial(spec)
        result.trials.append(trial)
        if not trial.ok:
            result.failures.append((index, trial.failure or "unknown"))
        if on_trial is not None:
            on_trial(index, spec, trial)
    return result
